#![forbid(unsafe_code)]

//! # bf-rpc — the API-remoting transport substrate
//!
//! BlastFunction remotes the OpenCL host API over gRPC for control and
//! either gRPC or POSIX shared memory for bulk data. This crate is the
//! from-scratch stand-in for that plumbing:
//!
//! * [`codec`] — a protobuf-like binary wire format ([`WireEncode`] /
//!   [`WireDecode`]); every message really is encoded to bytes so encoded
//!   sizes drive the serialization cost model;
//! * the protocol module — the Device Manager service messages: tagged
//!   [`RequestEnvelope`] / [`ResponseEnvelope`] pairs covering every
//!   remoted OpenCL call, with the paper's split between synchronous
//!   *context & information methods* and asynchronous *command-queue
//!   methods*;
//! * [`ShmSegment`] — the shared-memory data path (single retained copy);
//! * [`duplex`] — an in-process connection whose response stream is the
//!   Remote Library's completion queue (Fig. 2). Both directions are
//!   bounded ([`duplex_with_depth`]): a full queue yields
//!   [`TransportError::Backpressure`] on the non-blocking path;
//! * [`Poller`] — a readiness selector over connection streams, letting a
//!   single dispatcher thread multiplex N clients with round-robin
//!   fairness (the Device Manager event loop and the Remote Library
//!   reactor are both built on it).
//!
//! ```
//! use bf_model::VirtualTime;
//! use bf_rpc::{duplex, ClientId, Request, RequestEnvelope};
//!
//! # fn main() -> Result<(), bf_rpc::TransportError> {
//! let (client, server) = duplex();
//! client.send(&RequestEnvelope {
//!     tag: 1,
//!     client: ClientId(7),
//!     sent_at: VirtualTime::ZERO,
//!     body: Request::GetDeviceInfo,
//! })?;
//! let seen = server.recv()?;
//! assert_eq!(seen.body, Request::GetDeviceInfo);
//! # Ok(())
//! # }
//! ```

pub mod codec;
mod costs;
mod payload;
mod poller;
mod proto;
mod shm;
mod transport;

/// The bf-sync facade (re-exported from `bf-race`): every lock, condvar,
/// atomic and monotonic deadline in this crate goes through it, so the
/// whole transport can run under the deterministic model scheduler
/// (`bf-race` with `--features model`) without code changes.
pub use bf_race::sync;

pub use codec::{CodecError, WireDecode, WireEncode};
pub use costs::PathCosts;
pub use payload::Payload;
pub use poller::{PollEvent, Poller, PollerStats, Token, Waker};
pub use proto::{
    ClientId, DataRef, ErrorCode, Request, RequestEnvelope, Response, ResponseEnvelope, WireArg,
};
pub use shm::{ShmError, ShmSegment};
pub use transport::{
    duplex, duplex_with_depth, ClientChannel, FrameRx, ServerChannel, TransportError, DEFAULT_DEPTH,
};

#[cfg(test)]
mod proptests {
    use bf_model::VirtualTime;
    use proptest::prelude::*;

    use super::*;
    use crate::codec::{WireDecode, WireEncode};

    /// Payload lengths spanning empty, tiny, and well past any inline/shm
    /// threshold, without the cost of generating every byte independently.
    fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
        let len = prop_oneof![
            Just(0usize),
            Just(1usize),
            Just(63usize),
            Just(4096usize),
            Just(70_000usize),
        ];
        (len, any::<u8>()).prop_map(|(len, fill)| vec![fill; len])
    }

    fn arb_dataref() -> impl Strategy<Value = DataRef> {
        prop_oneof![
            arb_payload().prop_map(|v| DataRef::Inline(v.into())),
            (any::<u64>(), any::<u64>()).prop_map(|(offset, len)| DataRef::Shm { offset, len }),
            any::<u64>().prop_map(DataRef::Synthetic),
            // Full-width 128-bit digests, composed from two u64 draws.
            (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(hi, lo, len)| {
                DataRef::Digest {
                    digest: (u128::from(hi) << 64) | u128::from(lo),
                    len,
                }
            }),
        ]
    }

    /// Finite-only f32s: the wire format round-trips NaN bit patterns, but
    /// `PartialEq` cannot compare them.
    fn arb_wirearg() -> impl Strategy<Value = WireArg> {
        prop_oneof![
            any::<u64>().prop_map(WireArg::Buffer),
            any::<u32>().prop_map(WireArg::U32),
            any::<i32>().prop_map(WireArg::I32),
            any::<u64>().prop_map(WireArg::U64),
            any::<i16>().prop_map(|v| WireArg::F32(f32::from(v))),
        ]
    }

    /// Every `Request` variant, weighted uniformly.
    fn arb_request() -> impl Strategy<Value = Request> {
        prop_oneof![
            (".*", any::<bool>())
                .prop_map(|(client_name, shm)| Request::Hello { client_name, shm }),
            Just(Request::GetDeviceInfo),
            Just(Request::CreateContext),
            ".*".prop_map(|bitstream| Request::BuildProgram { bitstream }),
            (any::<u64>(), ".*")
                .prop_map(|(program, name)| Request::CreateKernel { program, name }),
            (any::<u64>(), any::<u32>(), arb_wirearg())
                .prop_map(|(kernel, index, arg)| Request::SetKernelArg { kernel, index, arg }),
            (any::<u64>(), any::<u64>())
                .prop_map(|(context, len)| Request::CreateBuffer { context, len }),
            any::<u64>().prop_map(|buffer| Request::ReleaseBuffer { buffer }),
            any::<u64>().prop_map(|context| Request::CreateQueue { context }),
            (any::<u64>(), any::<u64>(), any::<u64>(), arb_dataref()).prop_map(
                |(queue, buffer, offset, data)| Request::EnqueueWrite {
                    queue,
                    buffer,
                    offset,
                    data
                }
            ),
            (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
                |(queue, buffer, offset, len)| Request::EnqueueRead {
                    queue,
                    buffer,
                    offset,
                    len
                }
            ),
            (any::<u64>(), any::<u64>(), any::<[u64; 3]>()).prop_map(|(queue, kernel, work)| {
                Request::EnqueueKernel {
                    queue,
                    kernel,
                    work,
                }
            }),
            (
                any::<u64>(),
                any::<u64>(),
                any::<u64>(),
                any::<u64>(),
                any::<u64>(),
                any::<u64>()
            )
                .prop_map(|(queue, src, dst, src_offset, dst_offset, len)| {
                    Request::EnqueueCopy {
                        queue,
                        src,
                        dst,
                        src_offset,
                        dst_offset,
                        len,
                    }
                }),
            any::<u64>().prop_map(|queue| Request::Flush { queue }),
            any::<u64>().prop_map(|queue| Request::Finish { queue }),
            ".*".prop_map(|bitstream| Request::Reconfigure { bitstream }),
            Just(Request::Disconnect),
        ]
    }

    fn arb_option<T: std::fmt::Debug + Clone + 'static>(
        inner: impl Strategy<Value = T> + 'static,
    ) -> impl Strategy<Value = Option<T>> {
        prop_oneof![Just(None), inner.prop_map(Some)]
    }

    fn arb_error_code() -> impl Strategy<Value = ErrorCode> {
        prop_oneof![
            Just(ErrorCode::InvalidHandle),
            Just(ErrorCode::AccessDenied),
            Just(ErrorCode::OutOfResources),
            Just(ErrorCode::OutOfBounds),
            Just(ErrorCode::BuildFailure),
            Just(ErrorCode::InvalidLaunch),
            Just(ErrorCode::ReconfigurationRefused),
            Just(ErrorCode::Internal),
            Just(ErrorCode::CacheMiss),
        ]
    }

    /// Every `Response` variant.
    fn arb_response() -> impl Strategy<Value = Response> {
        prop_oneof![
            Just(Response::Ack),
            any::<u64>().prop_map(|id| Response::Handle { id }),
            (".*", ".*", ".*", any::<u64>(), ".*", arb_option(".*")).prop_map(
                |(name, vendor, platform, memory_bytes, node, bitstream)| Response::DeviceInfo {
                    name,
                    vendor,
                    platform,
                    memory_bytes,
                    node,
                    bitstream,
                }
            ),
            Just(Response::Enqueued),
            (any::<u64>(), any::<u64>(), arb_option(arb_dataref())).prop_map(
                |(started_at, ended_at, data)| Response::Completed {
                    started_at: VirtualTime::from_nanos(started_at),
                    ended_at: VirtualTime::from_nanos(ended_at),
                    data,
                }
            ),
            (arb_error_code(), ".*").prop_map(|(code, message)| Response::Error { code, message }),
        ]
    }

    proptest! {
        /// Every request envelope decodes back to itself.
        #[test]
        fn request_envelopes_round_trip(
            tag in any::<u64>(),
            client in any::<u64>(),
            at in any::<u64>(),
            body in arb_request(),
        ) {
            let env = RequestEnvelope {
                tag,
                client: ClientId(client),
                sent_at: VirtualTime::from_nanos(at),
                body,
            };
            let decoded = RequestEnvelope::from_bytes(env.to_bytes()).expect("decode");
            prop_assert_eq!(decoded, env);
        }

        /// Every response envelope decodes back to itself.
        #[test]
        fn response_envelopes_round_trip(
            tag in any::<u64>(),
            at in any::<u64>(),
            body in arb_response(),
        ) {
            let env = ResponseEnvelope {
                tag,
                sent_at: VirtualTime::from_nanos(at),
                body,
            };
            let decoded = ResponseEnvelope::from_bytes(env.to_bytes()).expect("decode");
            prop_assert_eq!(decoded, env);
        }

        /// The refcounted `Payload` wire format is byte-identical to the
        /// legacy owned-`Vec<u8>` path: same frames on the wire, same
        /// values decoded back, for every payload shape.
        #[test]
        fn payload_wire_encoding_matches_the_vec_path(
            data in proptest::collection::vec(any::<u8>(), 0..2048),
        ) {
            let legacy = data.to_bytes();
            let frame = Payload::from(data.clone()).to_bytes();
            prop_assert_eq!(&frame, &legacy);
            let via_vec = Vec::<u8>::from_bytes(frame.clone()).expect("vec decode");
            let via_payload = Payload::from_bytes(frame).expect("payload decode");
            prop_assert_eq!(&via_vec, &data);
            prop_assert_eq!(via_payload, data);
        }

        /// Inline `DataRef` frames carry the exact bytes the pre-refcount
        /// encoding produced: discriminant 0 followed by the Vec encoding.
        #[test]
        fn inline_dataref_matches_the_legacy_frame_layout(
            data in proptest::collection::vec(any::<u8>(), 0..1024),
        ) {
            use bytes::BufMut;
            let mut legacy = bytes::BytesMut::new();
            legacy.put_u8(0);
            data.encode(&mut legacy);
            let frame = DataRef::Inline(data.into()).to_bytes();
            prop_assert_eq!(frame, legacy.freeze());
        }

        /// The `DataRef::Digest` wire extension is purely additive: every
        /// pre-extension `DataRef` form still encodes to the exact frame
        /// bytes the pre-cache codec produced (discriminants 0/1/2 with
        /// unchanged field layouts), so old frames decode byte-identically.
        #[test]
        fn pre_digest_dataref_frames_are_byte_identical(
            data in proptest::collection::vec(any::<u8>(), 0..512),
            offset in any::<u64>(),
            len in any::<u64>(),
        ) {
            use bytes::BufMut;
            use crate::codec::put_varint;
            let mut legacy_inline = bytes::BytesMut::new();
            legacy_inline.put_u8(0);
            data.encode(&mut legacy_inline);
            prop_assert_eq!(
                DataRef::Inline(data.into()).to_bytes(),
                legacy_inline.freeze()
            );
            let mut legacy_shm = bytes::BytesMut::new();
            legacy_shm.put_u8(1);
            put_varint(&mut legacy_shm, offset);
            put_varint(&mut legacy_shm, len);
            prop_assert_eq!(
                DataRef::Shm { offset, len }.to_bytes(),
                legacy_shm.freeze()
            );
            let mut legacy_synth = bytes::BytesMut::new();
            legacy_synth.put_u8(2);
            put_varint(&mut legacy_synth, len);
            prop_assert_eq!(DataRef::Synthetic(len).to_bytes(), legacy_synth.freeze());
        }

        /// Decoding arbitrary garbage never panics.
        #[test]
        fn decoder_is_total(garbage in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = RequestEnvelope::from_bytes(bytes::Bytes::from(garbage.clone()));
            let _ = ResponseEnvelope::from_bytes(bytes::Bytes::from(garbage));
        }

        /// Shm allocation never hands out overlapping regions.
        #[test]
        fn shm_regions_never_overlap(sizes in proptest::collection::vec(1u64..512, 1..32)) {
            let shm = ShmSegment::new(1 << 16);
            let mut regions: Vec<(u64, u64)> = Vec::new();
            for len in sizes {
                if let Ok(offset) = shm.alloc(len) {
                    for (o, l) in &regions {
                        let disjoint = offset + len <= *o || o + l <= offset;
                        prop_assert!(disjoint, "[{offset},+{len}) overlaps [{o},+{l})");
                    }
                    regions.push((offset, len));
                }
            }
        }
    }
}
