//! The in-process duplex channel standing in for one gRPC connection.
//!
//! Every message is *actually encoded* to bytes on send and decoded on
//! receive, so the codec is exercised on every hop and message sizes feed
//! the serialization cost model. The response stream doubles as the Remote
//! Library's **completion queue** (paper Fig. 2, steps 4–5): the manager
//! pushes tagged responses, the client's reactor pulls them and dispatches
//! on the tag.
//!
//! Both directions are **bounded** (configurable via [`duplex_with_depth`]):
//! a full queue makes [`ClientChannel::try_send`]/[`ServerChannel::try_send`]
//! surface [`TransportError::Backpressure`] while the blocking `send`
//! variants park the caller until the peer drains — explicit flow control
//! instead of unbounded buffering behind a slow peer. Each receive
//! direction can additionally be tapped through a [`FrameRx`] and plugged
//! into a [`crate::Poller`], which is how one dispatcher thread multiplexes
//! many connections.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;

use crate::codec::{CodecError, WireDecode, WireEncode};
use crate::poller::NotifyHub;
use crate::proto::{RequestEnvelope, ResponseEnvelope};
use crate::sync::{Condvar, MonoTime, Mutex};

/// Default per-direction frame depth of [`duplex`].
pub const DEFAULT_DEPTH: usize = 256;

/// Transport failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The peer hung up.
    Closed,
    /// A frame failed to decode.
    Codec(CodecError),
    /// A blocking receive timed out.
    Timeout,
    /// The bounded queue is full: the peer is not draining fast enough.
    /// Retry after the peer reads, or use the blocking `send`.
    Backpressure,
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Closed => write!(f, "connection closed by peer"),
            TransportError::Codec(e) => write!(f, "frame decode failure: {e}"),
            TransportError::Timeout => write!(f, "receive timed out"),
            TransportError::Backpressure => write!(f, "bounded channel full (backpressure)"),
        }
    }
}

impl Error for TransportError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TransportError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for TransportError {
    fn from(e: CodecError) -> Self {
        TransportError::Codec(e)
    }
}

/// Mutable state of one direction, guarded by [`FrameQueue::frames`].
#[derive(Debug)]
struct QueueState {
    items: VecDeque<Bytes>,
    senders: usize,
    receivers: usize,
    /// Poller notification hook: bumped on push and on sender close,
    /// carrying the queue's slot index within its poller.
    watch: Option<(Arc<NotifyHub>, usize)>,
}

/// One bounded direction of a duplex connection, built directly on
/// `parking_lot` primitives so readiness hooks live inside the queue (the
/// vendored channel substrate has no selector).
#[derive(Debug)]
pub(crate) struct FrameQueue {
    cap: usize,
    frames: Mutex<QueueState>,
    readable: Condvar,
    writable: Condvar,
}

impl FrameQueue {
    fn new(depth: usize) -> Arc<FrameQueue> {
        Arc::new(FrameQueue {
            cap: depth.max(1),
            frames: Mutex::new(QueueState {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
                watch: None,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
        })
    }

    fn push(&self, frame: Bytes, block: bool) -> Result<(), TransportError> {
        let mut q = self.frames.lock();
        loop {
            if q.receivers == 0 {
                return Err(TransportError::Closed);
            }
            if q.items.len() < self.cap {
                break;
            }
            if !block {
                return Err(TransportError::Backpressure);
            }
            self.writable.wait(&mut q);
        }
        q.items.push_back(frame);
        let watch = q.watch.clone();
        drop(q);
        self.readable.notify_one();
        if let Some((hub, idx)) = watch {
            hub.bump(idx);
        }
        Ok(())
    }

    fn pop(&self) -> Result<Bytes, TransportError> {
        let mut q = self.frames.lock();
        loop {
            if let Some(frame) = q.items.pop_front() {
                drop(q);
                self.writable.notify_one();
                return Ok(frame);
            }
            if q.senders == 0 {
                return Err(TransportError::Closed);
            }
            self.readable.wait(&mut q);
        }
    }

    fn pop_timeout(&self, timeout: Duration) -> Result<Bytes, TransportError> {
        let deadline = MonoTime::after(timeout);
        let mut q = self.frames.lock();
        loop {
            if let Some(frame) = q.items.pop_front() {
                drop(q);
                self.writable.notify_one();
                return Ok(frame);
            }
            if q.senders == 0 {
                return Err(TransportError::Closed);
            }
            if deadline.has_passed() {
                return Err(TransportError::Timeout);
            }
            let _ = self.readable.wait_for(&mut q, deadline.remaining());
        }
    }

    fn try_pop(&self) -> Result<Option<Bytes>, TransportError> {
        let mut q = self.frames.lock();
        match q.items.pop_front() {
            Some(frame) => {
                drop(q);
                self.writable.notify_one();
                Ok(Some(frame))
            }
            None if q.senders == 0 => Err(TransportError::Closed),
            None => Ok(None),
        }
    }

    /// Receive-readiness: a pending frame, or a closed sender side (so a
    /// poller consumer observes `Closed` instead of blocking forever).
    fn ready(&self) -> bool {
        let q = self.frames.lock();
        !q.items.is_empty() || q.senders == 0
    }

    fn set_watch(&self, hub: Arc<NotifyHub>, idx: usize) {
        self.frames.lock().watch = Some((hub, idx));
    }

    fn clear_watch(&self) {
        self.frames.lock().watch = None;
    }

    fn drain(&self) {
        let mut q = self.frames.lock();
        q.items.clear();
        drop(q);
        self.writable.notify_all();
    }

    fn len(&self) -> usize {
        self.frames.lock().items.len()
    }
}

/// Owning sender half of one direction; closing the last one wakes the
/// receiver (and any watching poller) with `Closed`.
#[derive(Debug)]
pub(crate) struct TxHalf {
    q: Arc<FrameQueue>,
}

impl TxHalf {
    pub(crate) fn push(&self, frame: Bytes) -> Result<(), TransportError> {
        self.q.push(frame, true)
    }

    pub(crate) fn try_push(&self, frame: Bytes) -> Result<(), TransportError> {
        // bf-flow: allow(hot_alloc): FrameQueue is a depth-bounded ring —
        // a full queue returns Backpressure instead of growing
        self.q.push(frame, false)
    }
}

impl Clone for TxHalf {
    fn clone(&self) -> Self {
        self.q.frames.lock().senders += 1;
        TxHalf { q: self.q.clone() }
    }
}

impl Drop for TxHalf {
    fn drop(&mut self) {
        let mut q = self.q.frames.lock();
        q.senders -= 1;
        let closed = q.senders == 0;
        let watch = if closed { q.watch.clone() } else { None };
        drop(q);
        if closed {
            self.q.readable.notify_all();
            if let Some((hub, idx)) = watch {
                hub.bump(idx);
            }
        }
    }
}

/// Owning receiver half of one direction; closing the last one fails
/// subsequent sends with `Closed`.
#[derive(Debug)]
struct RxHalf {
    q: Arc<FrameQueue>,
}

impl Clone for RxHalf {
    fn clone(&self) -> Self {
        self.q.frames.lock().receivers += 1;
        RxHalf { q: self.q.clone() }
    }
}

impl Drop for RxHalf {
    fn drop(&mut self) {
        let mut q = self.q.frames.lock();
        q.receivers -= 1;
        let closed = q.receivers == 0;
        drop(q);
        if closed {
            // Blocked senders must observe the hang-up.
            self.q.writable.notify_all();
        }
    }
}

/// A non-owning tap on one receive direction, registerable with a
/// [`crate::Poller`]. Unlike the channel halves it carries no open/closed
/// ownership: dropping it never closes the connection.
#[derive(Debug, Clone)]
pub struct FrameRx {
    q: Arc<FrameQueue>,
}

impl FrameRx {
    /// Non-blocking raw-frame receive. `Ok(None)` means no frame pending.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Closed`] once the queue is drained and
    /// every sender is gone.
    pub fn try_recv_frame(&self) -> Result<Option<Bytes>, TransportError> {
        self.q.try_pop()
    }

    pub(crate) fn ready(&self) -> bool {
        self.q.ready()
    }

    pub(crate) fn set_watch(&self, hub: Arc<NotifyHub>, idx: usize) {
        self.q.set_watch(hub, idx);
    }

    pub(crate) fn clear_watch(&self) {
        self.q.clear_watch();
    }

    pub(crate) fn drain(&self) {
        self.q.drain();
    }
}

/// Builds the depth-1 nudge queue behind a [`crate::Waker`].
pub(crate) fn waker_channel() -> (TxHalf, FrameRx) {
    let q = FrameQueue::new(1);
    (TxHalf { q: q.clone() }, FrameRx { q })
}

/// Client side of a connection: sends requests, receives tagged responses.
#[derive(Debug, Clone)]
pub struct ClientChannel {
    req: TxHalf,
    resp: RxHalf,
}

/// Server side of a connection: receives requests, pushes tagged responses.
#[derive(Debug, Clone)]
pub struct ServerChannel {
    req: RxHalf,
    resp: TxHalf,
}

/// Creates a connected client/server channel pair with the default
/// per-direction depth ([`DEFAULT_DEPTH`]).
pub fn duplex() -> (ClientChannel, ServerChannel) {
    duplex_with_depth(DEFAULT_DEPTH)
}

/// Creates a connected client/server channel pair whose directions each
/// hold at most `depth` frames (minimum 1).
pub fn duplex_with_depth(depth: usize) -> (ClientChannel, ServerChannel) {
    let req = FrameQueue::new(depth);
    let resp = FrameQueue::new(depth);
    (
        ClientChannel {
            req: TxHalf { q: req.clone() },
            resp: RxHalf { q: resp.clone() },
        },
        ServerChannel {
            req: RxHalf { q: req },
            resp: TxHalf { q: resp },
        },
    )
}

impl ClientChannel {
    /// Encodes and sends one request, blocking while the request queue is
    /// full (flow control against a busy manager).
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Closed`] if the manager hung up.
    pub fn send(&self, req: &RequestEnvelope) -> Result<(), TransportError> {
        self.req.push(req.to_bytes())
    }

    /// Non-blocking send.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Backpressure`] when the request queue is
    /// full, or [`TransportError::Closed`] if the manager hung up.
    pub fn try_send(&self, req: &RequestEnvelope) -> Result<(), TransportError> {
        self.req.try_push(req.to_bytes())
    }

    /// Blocks for the next tagged response from the completion stream.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Closed`] or a codec failure.
    pub fn recv(&self) -> Result<ResponseEnvelope, TransportError> {
        Ok(ResponseEnvelope::from_bytes(self.resp.q.pop()?)?)
    }

    /// Like [`ClientChannel::recv`] with a wall-clock timeout (used by
    /// blocking callers to notice shutdown).
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Timeout`], [`TransportError::Closed`] or a
    /// codec failure.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<ResponseEnvelope, TransportError> {
        Ok(ResponseEnvelope::from_bytes(
            self.resp.q.pop_timeout(timeout)?,
        )?)
    }

    /// Non-blocking poll of the completion stream. `Ok(None)` means no
    /// response is pending.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Closed`] or a codec failure.
    pub fn try_recv(&self) -> Result<Option<ResponseEnvelope>, TransportError> {
        match self.resp.q.try_pop()? {
            Some(frame) => Ok(Some(ResponseEnvelope::from_bytes(frame)?)),
            None => Ok(None),
        }
    }

    /// A poller-registerable tap on the completion stream.
    pub fn completions(&self) -> FrameRx {
        FrameRx {
            q: self.resp.q.clone(),
        }
    }

    /// Per-direction frame capacity.
    pub fn depth(&self) -> usize {
        self.req.q.cap
    }

    /// Responses currently queued and not yet received.
    pub fn pending_responses(&self) -> usize {
        self.resp.q.len()
    }
}

impl ServerChannel {
    /// Blocks for the next request.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Closed`] or a codec failure.
    pub fn recv(&self) -> Result<RequestEnvelope, TransportError> {
        Ok(RequestEnvelope::from_bytes(self.req.q.pop()?)?)
    }

    /// Like [`ServerChannel::recv`] with a wall-clock timeout.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Timeout`], [`TransportError::Closed`] or a
    /// codec failure.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<RequestEnvelope, TransportError> {
        Ok(RequestEnvelope::from_bytes(
            self.req.q.pop_timeout(timeout)?,
        )?)
    }

    /// Non-blocking poll of the request stream. `Ok(None)` means no request
    /// is pending.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Closed`] or a codec failure.
    pub fn try_recv(&self) -> Result<Option<RequestEnvelope>, TransportError> {
        match self.req.q.try_pop()? {
            Some(frame) => Ok(Some(RequestEnvelope::from_bytes(frame)?)),
            None => Ok(None),
        }
    }

    /// Pushes one tagged response onto the client's completion stream,
    /// blocking while the stream is full.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Closed`] if the client hung up.
    pub fn send(&self, resp: &ResponseEnvelope) -> Result<(), TransportError> {
        self.resp.push(resp.to_bytes())
    }

    /// Non-blocking response push.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Backpressure`] when the completion stream
    /// is full, or [`TransportError::Closed`] if the client hung up.
    pub fn try_send(&self, resp: &ResponseEnvelope) -> Result<(), TransportError> {
        self.resp.try_push(resp.to_bytes())
    }

    /// A poller-registerable tap on the request stream.
    pub fn requests(&self) -> FrameRx {
        FrameRx {
            q: self.req.q.clone(),
        }
    }

    /// Per-direction frame capacity.
    pub fn depth(&self) -> usize {
        self.resp.q.cap
    }
}

#[cfg(test)]
mod tests {
    use bf_model::VirtualTime;

    use super::*;
    use crate::proto::{ClientId, Request, Response};

    fn req(tag: u64) -> RequestEnvelope {
        RequestEnvelope {
            tag,
            client: ClientId(1),
            sent_at: VirtualTime::from_nanos(10),
            body: Request::CreateContext,
        }
    }

    fn resp(tag: u64) -> ResponseEnvelope {
        ResponseEnvelope {
            tag,
            sent_at: VirtualTime::ZERO,
            body: Response::Ack,
        }
    }

    #[test]
    fn request_response_round_trip() {
        let (client, server) = duplex();
        client.send(&req(1)).expect("send");
        let got = server.recv().expect("recv");
        assert_eq!(got.tag, 1);
        assert_eq!(got.body, Request::CreateContext);
        server
            .send(&ResponseEnvelope {
                tag: 1,
                sent_at: VirtualTime::from_nanos(20),
                body: Response::Handle { id: 5 },
            })
            .expect("send resp");
        let resp = client.recv().expect("recv resp");
        assert_eq!(resp.body, Response::Handle { id: 5 });
    }

    #[test]
    fn closed_peer_is_detected() {
        let (client, server) = duplex();
        drop(server);
        assert_eq!(client.send(&req(1)), Err(TransportError::Closed));
        assert_eq!(client.recv().expect_err("closed"), TransportError::Closed);
    }

    #[test]
    fn try_recv_is_non_blocking() {
        let (client, server) = duplex();
        assert_eq!(client.try_recv().expect("empty"), None);
        server.send(&resp(9)).expect("send");
        assert!(client.try_recv().expect("one frame").is_some());
    }

    #[test]
    fn timeout_fires_when_idle() {
        let (client, _server) = duplex();
        let err = client
            .recv_timeout(Duration::from_millis(5))
            .expect_err("should time out");
        assert_eq!(err, TransportError::Timeout);
    }

    #[test]
    fn responses_preserve_order_per_connection() {
        let (client, server) = duplex();
        for tag in 0..10u64 {
            server
                .send(&ResponseEnvelope {
                    tag,
                    sent_at: VirtualTime::ZERO,
                    body: Response::Enqueued,
                })
                .expect("send");
        }
        for tag in 0..10u64 {
            assert_eq!(client.recv().expect("recv").tag, tag);
        }
    }

    #[test]
    fn full_queue_surfaces_backpressure_then_drains() {
        let (client, server) = duplex_with_depth(4);
        for tag in 0..4 {
            client.try_send(&req(tag)).expect("below capacity");
        }
        assert_eq!(client.try_send(&req(4)), Err(TransportError::Backpressure));
        // One read frees one slot.
        assert_eq!(server.recv().expect("recv").tag, 0);
        client.try_send(&req(4)).expect("slot freed");
        // Same in the response direction.
        for tag in 0..4 {
            server.try_send(&resp(tag)).expect("below capacity");
        }
        assert_eq!(server.try_send(&resp(4)), Err(TransportError::Backpressure));
        assert_eq!(client.recv().expect("recv").tag, 0);
        server.try_send(&resp(4)).expect("slot freed");
    }

    #[test]
    fn blocking_send_waits_for_the_reader() {
        let (client, server) = duplex_with_depth(2);
        let producer = std::thread::spawn(move || {
            for tag in 0..32 {
                client.send(&req(tag)).expect("send");
            }
        });
        for tag in 0..32 {
            assert_eq!(server.recv().expect("recv").tag, tag);
        }
        producer.join().expect("producer");
    }

    #[test]
    fn depth_is_clamped_to_at_least_one() {
        let (client, server) = duplex_with_depth(0);
        client.try_send(&req(1)).expect("one slot");
        assert_eq!(client.try_send(&req(2)), Err(TransportError::Backpressure));
        assert_eq!(server.recv().expect("recv").tag, 1);
    }

    #[test]
    fn closed_is_reported_only_after_the_queue_drains() {
        let (client, server) = duplex();
        server.send(&resp(7)).expect("send");
        drop(server);
        // The buffered frame is still delivered before Closed.
        assert_eq!(client.recv().expect("buffered").tag, 7);
        assert_eq!(client.recv().expect_err("drained"), TransportError::Closed);
    }
}
