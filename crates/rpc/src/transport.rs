//! The in-process duplex channel standing in for one gRPC connection.
//!
//! Every message is *actually encoded* to bytes on send and decoded on
//! receive, so the codec is exercised on every hop and message sizes feed
//! the serialization cost model. The response stream doubles as the Remote
//! Library's **completion queue** (paper Fig. 2, steps 4–5): the manager
//! pushes tagged responses, the client's connection thread pulls them and
//! dispatches on the tag.

use std::error::Error;
use std::fmt;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use crate::codec::{CodecError, WireDecode, WireEncode};
use crate::proto::{RequestEnvelope, ResponseEnvelope};

/// Transport failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The peer hung up.
    Closed,
    /// A frame failed to decode.
    Codec(CodecError),
    /// A blocking receive timed out.
    Timeout,
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Closed => write!(f, "connection closed by peer"),
            TransportError::Codec(e) => write!(f, "frame decode failure: {e}"),
            TransportError::Timeout => write!(f, "receive timed out"),
        }
    }
}

impl Error for TransportError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TransportError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for TransportError {
    fn from(e: CodecError) -> Self {
        TransportError::Codec(e)
    }
}

/// Client side of a connection: sends requests, receives tagged responses.
#[derive(Debug, Clone)]
pub struct ClientChannel {
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
}

/// Server side of a connection: receives requests, pushes tagged responses.
#[derive(Debug, Clone)]
pub struct ServerChannel {
    rx: Receiver<Bytes>,
    tx: Sender<Bytes>,
}

/// Creates a connected client/server channel pair.
pub fn duplex() -> (ClientChannel, ServerChannel) {
    let (req_tx, req_rx) = unbounded();
    let (resp_tx, resp_rx) = unbounded();
    (
        ClientChannel {
            tx: req_tx,
            rx: resp_rx,
        },
        ServerChannel {
            rx: req_rx,
            tx: resp_tx,
        },
    )
}

impl ClientChannel {
    /// Encodes and sends one request.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Closed`] if the manager hung up.
    pub fn send(&self, req: &RequestEnvelope) -> Result<(), TransportError> {
        self.tx
            .send(req.to_bytes())
            .map_err(|_| TransportError::Closed)
    }

    /// Blocks for the next tagged response from the completion stream.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Closed`] or a codec failure.
    pub fn recv(&self) -> Result<ResponseEnvelope, TransportError> {
        let frame = self.rx.recv().map_err(|_| TransportError::Closed)?;
        Ok(ResponseEnvelope::from_bytes(frame)?)
    }

    /// Like [`ClientChannel::recv`] with a wall-clock timeout (used by the
    /// connection thread to notice shutdown).
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Timeout`], [`TransportError::Closed`] or a
    /// codec failure.
    pub fn recv_timeout(
        &self,
        timeout: std::time::Duration,
    ) -> Result<ResponseEnvelope, TransportError> {
        let frame = self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => TransportError::Timeout,
            RecvTimeoutError::Disconnected => TransportError::Closed,
        })?;
        Ok(ResponseEnvelope::from_bytes(frame)?)
    }

    /// Non-blocking poll of the completion stream. `Ok(None)` means no
    /// response is pending.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Closed`] or a codec failure.
    pub fn try_recv(&self) -> Result<Option<ResponseEnvelope>, TransportError> {
        match self.rx.try_recv() {
            Ok(frame) => Ok(Some(ResponseEnvelope::from_bytes(frame)?)),
            Err(crossbeam::channel::TryRecvError::Empty) => Ok(None),
            Err(crossbeam::channel::TryRecvError::Disconnected) => Err(TransportError::Closed),
        }
    }
}

impl ServerChannel {
    /// Blocks for the next request.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Closed`] or a codec failure.
    pub fn recv(&self) -> Result<RequestEnvelope, TransportError> {
        let frame = self.rx.recv().map_err(|_| TransportError::Closed)?;
        Ok(RequestEnvelope::from_bytes(frame)?)
    }

    /// Like [`ServerChannel::recv`] with a wall-clock timeout.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Timeout`], [`TransportError::Closed`] or a
    /// codec failure.
    pub fn recv_timeout(
        &self,
        timeout: std::time::Duration,
    ) -> Result<RequestEnvelope, TransportError> {
        let frame = self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => TransportError::Timeout,
            RecvTimeoutError::Disconnected => TransportError::Closed,
        })?;
        Ok(RequestEnvelope::from_bytes(frame)?)
    }

    /// Pushes one tagged response onto the client's completion stream.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Closed`] if the client hung up.
    pub fn send(&self, resp: &ResponseEnvelope) -> Result<(), TransportError> {
        self.tx
            .send(resp.to_bytes())
            .map_err(|_| TransportError::Closed)
    }
}

#[cfg(test)]
mod tests {
    use bf_model::VirtualTime;

    use super::*;
    use crate::proto::{ClientId, Request, Response};

    fn req(tag: u64) -> RequestEnvelope {
        RequestEnvelope {
            tag,
            client: ClientId(1),
            sent_at: VirtualTime::from_nanos(10),
            body: Request::CreateContext,
        }
    }

    #[test]
    fn request_response_round_trip() {
        let (client, server) = duplex();
        client.send(&req(1)).expect("send");
        let got = server.recv().expect("recv");
        assert_eq!(got.tag, 1);
        assert_eq!(got.body, Request::CreateContext);
        server
            .send(&ResponseEnvelope {
                tag: 1,
                sent_at: VirtualTime::from_nanos(20),
                body: Response::Handle { id: 5 },
            })
            .expect("send resp");
        let resp = client.recv().expect("recv resp");
        assert_eq!(resp.body, Response::Handle { id: 5 });
    }

    #[test]
    fn closed_peer_is_detected() {
        let (client, server) = duplex();
        drop(server);
        assert_eq!(client.send(&req(1)), Err(TransportError::Closed));
        assert_eq!(client.recv().expect_err("closed"), TransportError::Closed);
    }

    #[test]
    fn try_recv_is_non_blocking() {
        let (client, server) = duplex();
        assert_eq!(client.try_recv().expect("empty"), None);
        server
            .send(&ResponseEnvelope {
                tag: 9,
                sent_at: VirtualTime::ZERO,
                body: Response::Ack,
            })
            .expect("send");
        assert!(client.try_recv().expect("one frame").is_some());
    }

    #[test]
    fn timeout_fires_when_idle() {
        let (client, _server) = duplex();
        let err = client
            .recv_timeout(std::time::Duration::from_millis(5))
            .expect_err("should time out");
        assert_eq!(err, TransportError::Timeout);
    }

    #[test]
    fn responses_preserve_order_per_connection() {
        let (client, server) = duplex();
        for tag in 0..10u64 {
            server
                .send(&ResponseEnvelope {
                    tag,
                    sent_at: VirtualTime::ZERO,
                    body: Response::Enqueued,
                })
                .expect("send");
        }
        for tag in 0..10u64 {
            assert_eq!(client.recv().expect("recv").tag, tag);
        }
    }
}
