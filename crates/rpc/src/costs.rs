//! Aggregated remoting costs for one client ↔ Device Manager path.
//!
//! Combines the control-plane, serialization/copy and (for non-co-located
//! clients) network models into the three quantities the Remote Library and
//! Device Manager actually charge:
//!
//! * a **control hop** per message (gRPC dispatch + stack traversal);
//! * an **outbound payload cost** for `EnqueueWrite` data (client side);
//! * an **inbound payload cost** for `EnqueueRead` results (client side).
//!
//! PCIe DMA time is *not* included here — both native and remote execution
//! pay it at the board, which is exactly why the paper reports remote
//! overhead relative to native.

use bf_model::{ControlPlaneModel, DataPathKind, DataPathModel, EthernetModel, VirtualDuration};

/// The cost profile of one client connection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathCosts {
    control: ControlPlaneModel,
    data: DataPathModel,
    /// `Some` when the client is on a different node than the manager; bulk
    /// payloads then also cross the cluster fabric.
    remote_network: Option<EthernetModel>,
}

impl PathCosts {
    /// Co-located client using the pure-gRPC data path ("BlastFunction" in
    /// Fig. 4).
    pub fn local_grpc() -> Self {
        PathCosts {
            control: ControlPlaneModel::paper(),
            data: DataPathModel::grpc(),
            remote_network: None,
        }
    }

    /// Co-located client using the shared-memory data path
    /// ("BlastFunction shm" in Fig. 4).
    pub fn local_shm() -> Self {
        PathCosts {
            control: ControlPlaneModel::paper(),
            data: DataPathModel::shared_memory(),
            remote_network: None,
        }
    }

    /// Client on a different node: gRPC only (shared memory is impossible
    /// across nodes, §III-B), payloads ride the 1 Gb/s fabric.
    pub fn remote_grpc() -> Self {
        PathCosts {
            control: ControlPlaneModel::paper(),
            data: DataPathModel::grpc(),
            remote_network: Some(EthernetModel::paper()),
        }
    }

    /// Builds a custom profile.
    ///
    /// # Panics
    ///
    /// Panics on the impossible combination of a cross-node client with the
    /// shared-memory data path.
    pub fn new(
        control: ControlPlaneModel,
        data: DataPathModel,
        remote_network: Option<EthernetModel>,
    ) -> Self {
        assert!(
            !(remote_network.is_some() && data.kind() == DataPathKind::SharedMemory),
            "shared memory cannot span nodes"
        );
        PathCosts {
            control,
            data,
            remote_network,
        }
    }

    /// Which bulk data path this connection uses.
    pub fn data_path(&self) -> DataPathKind {
        self.data.kind()
    }

    /// Whether the client sits on another node.
    pub fn is_cross_node(&self) -> bool {
        self.remote_network.is_some()
    }

    /// One-way latency of a control message.
    pub fn control_hop(&self) -> VirtualDuration {
        match &self.remote_network {
            Some(net) => self.control.one_way() + net.one_way_latency(),
            None => self.control.one_way(),
        }
    }

    /// Client-side cost of shipping `bytes` of write payload to the
    /// manager (serialization + copies, or the single shm copy, plus wire
    /// time when cross-node).
    pub fn outbound_payload_cost(&self, bytes: u64) -> VirtualDuration {
        self.data.payload_cost(bytes) + self.wire_time(bytes)
    }

    /// Client-side cost of receiving `bytes` of read payload from the
    /// manager.
    pub fn inbound_payload_cost(&self, bytes: u64) -> VirtualDuration {
        self.data.payload_cost(bytes) + self.wire_time(bytes)
    }

    fn wire_time(&self, bytes: u64) -> VirtualDuration {
        match &self.remote_network {
            // The one-way latency is already charged per control hop; only
            // the bandwidth component applies to the payload.
            Some(net) => net
                .transfer_time(bytes)
                .saturating_sub(net.one_way_latency()),
            None => VirtualDuration::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shm_beats_grpc_on_payload() {
        let shm = PathCosts::local_shm();
        let grpc = PathCosts::local_grpc();
        assert!(shm.outbound_payload_cost(1 << 20) < grpc.outbound_payload_cost(1 << 20));
        assert_eq!(
            shm.control_hop(),
            grpc.control_hop(),
            "control plane is identical"
        );
    }

    #[test]
    fn cross_node_adds_fabric_time() {
        let local = PathCosts::local_grpc();
        let remote = PathCosts::remote_grpc();
        assert!(remote.control_hop() > local.control_hop());
        assert!(remote.outbound_payload_cost(1 << 24) > local.outbound_payload_cost(1 << 24));
    }

    #[test]
    #[should_panic(expected = "shared memory cannot span nodes")]
    fn cross_node_shm_is_rejected() {
        let _ = PathCosts::new(
            ControlPlaneModel::paper(),
            DataPathModel::shared_memory(),
            Some(EthernetModel::paper()),
        );
    }

    #[test]
    fn control_round_trip_is_about_two_ms_for_an_op_pair() {
        // Fig. 4(a): a synchronous write+read pair costs ~2 ms of control
        // signalling: 4 hops (2 requests + 2 completions).
        let costs = PathCosts::local_shm();
        let pair = costs.control_hop() * 4;
        assert!((pair.as_millis_f64() - 2.0).abs() < 0.5, "got {pair}");
    }
}
