//! The shared-memory data path.
//!
//! When a function instance is co-located with the Device Manager (the
//! Registry patches the pod with a shared-memory volume), bulk payloads
//! move through a [`ShmSegment`] instead of the gRPC stream, reducing the
//! copies "from four to one" (§III-B). The segment is a first-fit
//! allocator over one backing region; the retained single copy is charged
//! by the caller through [`bf_model::MemcpyModel`].
//!
//! Region contents are refcounted [`Bytes`] buffers keyed by region
//! offset: [`ShmSegment::write_bytes`] adopts a caller's buffer without
//! copying, and [`ShmSegment::read`] returns a zero-copy snapshot that
//! stays valid even after the region is freed and reused. Only
//! [`ShmSegment::write`] from a borrowed slice performs (and reports to
//! [`bf_metrics::record_memcpy`]) a real copy.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use bytes::Bytes;

use crate::sync::Mutex;

/// Errors raised by the shared-memory segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShmError {
    /// No free region large enough.
    OutOfSpace {
        /// Bytes requested.
        requested: u64,
        /// Largest contiguous free region.
        largest_free: u64,
    },
    /// The offset does not name an allocated region.
    BadRegion(u64),
    /// Access outside an allocated region.
    OutOfBounds {
        /// Region offset.
        region: u64,
        /// Access offset relative to the segment.
        offset: u64,
        /// Access length.
        len: u64,
    },
}

impl fmt::Display for ShmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShmError::OutOfSpace { requested, largest_free } => write!(
                f,
                "shared memory exhausted: requested {requested} bytes, largest free region {largest_free}"
            ),
            ShmError::BadRegion(offset) => write!(f, "no region allocated at offset {offset}"),
            ShmError::OutOfBounds { region, offset, len } => {
                write!(f, "access [{offset}, {}) escapes region at {region}", offset + len)
            }
        }
    }
}

impl Error for ShmError {}

#[derive(Debug, Clone, Copy)]
struct Region {
    offset: u64,
    len: u64,
    free: bool,
}

#[derive(Debug)]
struct ShmInner {
    capacity: u64,
    regions: Vec<Region>,
    /// Contents of written regions, keyed by region start offset. Reads
    /// hand out refcounted views of these buffers, so no backing array is
    /// ever materialized for the whole segment.
    contents: HashMap<u64, Bytes>,
}

/// An in-process stand-in for a POSIX shared-memory segment shared between
/// one client and the local Device Manager.
///
/// Cloning yields another handle to the same segment.
///
/// ```
/// use bf_rpc::ShmSegment;
///
/// # fn main() -> Result<(), bf_rpc::ShmError> {
/// let shm = ShmSegment::new(1 << 20);
/// let region = shm.alloc(128)?;
/// shm.write(region, &[1, 2, 3])?;
/// assert_eq!(shm.read(region, 3)?, vec![1, 2, 3]);
/// shm.free(region)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ShmSegment {
    segment: Arc<Mutex<ShmInner>>,
}

impl ShmSegment {
    /// Maps a fresh segment of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        ShmSegment {
            segment: Arc::new(Mutex::new(ShmInner {
                capacity,
                regions: vec![Region {
                    offset: 0,
                    len: capacity,
                    free: true,
                }],
                contents: HashMap::new(),
            })),
        }
    }

    /// Segment capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.segment.lock().capacity
    }

    /// Currently allocated bytes.
    pub fn used(&self) -> u64 {
        self.segment
            .lock()
            .regions
            .iter()
            .filter(|r| !r.free)
            .map(|r| r.len)
            .sum()
    }

    /// Allocates a region of `len` bytes (first fit) and returns its
    /// segment offset.
    ///
    /// # Errors
    ///
    /// Returns [`ShmError::OutOfSpace`] when no free region fits.
    pub fn alloc(&self, len: u64) -> Result<u64, ShmError> {
        let mut inner = self.segment.lock();
        let idx = inner.regions.iter().position(|r| r.free && r.len >= len);
        match idx {
            Some(i) => {
                let region = inner.regions[i];
                let offset = region.offset;
                if region.len == len {
                    inner.regions[i].free = false;
                } else {
                    inner.regions[i] = Region {
                        offset,
                        len,
                        free: false,
                    };
                    inner.regions.insert(
                        i + 1,
                        Region {
                            offset: offset + len,
                            len: region.len - len,
                            free: true,
                        },
                    );
                }
                inner.contents.remove(&offset);
                Ok(offset)
            }
            None => {
                let largest_free = inner
                    .regions
                    .iter()
                    .filter(|r| r.free)
                    .map(|r| r.len)
                    .max()
                    .unwrap_or(0);
                Err(ShmError::OutOfSpace {
                    requested: len,
                    largest_free,
                })
            }
        }
    }

    /// Frees the region at `offset`, coalescing adjacent free regions.
    /// Snapshots handed out by [`ShmSegment::read`] stay valid.
    ///
    /// # Errors
    ///
    /// Returns [`ShmError::BadRegion`] when `offset` is not an allocated
    /// region's start.
    pub fn free(&self, offset: u64) -> Result<(), ShmError> {
        let mut inner = self.segment.lock();
        let idx = inner
            .regions
            .iter()
            .position(|r| !r.free && r.offset == offset)
            .ok_or(ShmError::BadRegion(offset))?;
        inner.regions[idx].free = true;
        inner.contents.remove(&offset);
        // Coalesce with the right neighbour, then the left one.
        if idx + 1 < inner.regions.len() && inner.regions[idx + 1].free {
            inner.regions[idx].len += inner.regions[idx + 1].len;
            inner.regions.remove(idx + 1);
        }
        if idx > 0 && inner.regions[idx - 1].free {
            inner.regions[idx - 1].len += inner.regions[idx].len;
            inner.regions.remove(idx);
        }
        Ok(())
    }

    fn check_write(inner: &ShmInner, offset: u64, len: u64) -> Result<(), ShmError> {
        let region = inner
            .regions
            .iter()
            .find(|r| !r.free && r.offset == offset)
            .ok_or(ShmError::BadRegion(offset))?;
        if len > region.len {
            return Err(ShmError::OutOfBounds {
                region: region.offset,
                offset,
                len,
            });
        }
        Ok(())
    }

    /// Writes `data` at the start of the region at `offset`, copying the
    /// borrowed bytes (the shm path's one retained copy; reported to
    /// [`bf_metrics::record_memcpy`]). When the buffer is already
    /// refcounted, prefer [`ShmSegment::write_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`ShmError::BadRegion`] / [`ShmError::OutOfBounds`].
    pub fn write(&self, offset: u64, data: &[u8]) -> Result<(), ShmError> {
        bf_metrics::record_memcpy(data.len() as u64);
        self.store(offset, Bytes::from(data))
    }

    /// Adopts a refcounted buffer as the contents of the region at
    /// `offset` without copying.
    ///
    /// # Errors
    ///
    /// Returns [`ShmError::BadRegion`] / [`ShmError::OutOfBounds`].
    pub fn write_bytes(&self, offset: u64, data: Bytes) -> Result<(), ShmError> {
        self.store(offset, data)
    }

    // bf-flow: entry(shm)
    fn store(&self, offset: u64, data: Bytes) -> Result<(), ShmError> {
        let mut inner = self.segment.lock();
        Self::check_write(&inner, offset, data.len() as u64)?;
        let merged = match inner.contents.remove(&offset) {
            // A previous longer write must keep its tail visible, exactly
            // as overlapping writes behaved on the flat backing array.
            Some(old) if old.len() > data.len() => {
                // bf-lint: allow(payload_copy): overlapping-write merge —
                // both buffers may be aliased elsewhere; counted below.
                // bf-flow: allow(hot_alloc): merge buffer is bounded by the
                // region length (check_write above); copy is memcpy-counted
                let mut v = data.to_vec();
                bf_metrics::record_memcpy(old.len() as u64);
                // bf-flow: allow(hot_alloc): same region-length bound
                // bf-flow: allow(hot_panic): the match guard just above
                // proves old.len() > data.len(), so the slice is in range
                // bf-taint: sanitized(same guard — data.len() < old.len())
                v.extend_from_slice(&old[data.len()..]);
                Bytes::from(v)
            }
            _ => data,
        };
        // bf-flow: allow(hot_alloc): one entry per allocated region — the
        // region table is bounded by the segment's capacity
        inner.contents.insert(offset, merged);
        Ok(())
    }

    /// Reads `len` bytes from the start of the region at `offset` as a
    /// zero-copy snapshot. Bytes past what was written read as zeros
    /// (zero-extension is the one case that allocates).
    ///
    /// # Errors
    ///
    /// Returns [`ShmError::BadRegion`] / [`ShmError::OutOfBounds`].
    // bf-flow: entry(shm)
    pub fn read(&self, offset: u64, len: u64) -> Result<Bytes, ShmError> {
        let inner = self.segment.lock();
        let region = *inner
            .regions
            .iter()
            .find(|r| !r.free && r.offset == offset)
            .ok_or(ShmError::BadRegion(offset))?;
        if len > region.len {
            return Err(ShmError::OutOfBounds {
                region: region.offset,
                offset,
                len,
            });
        }
        Ok(match inner.contents.get(&offset) {
            Some(content) if len as usize <= content.len() => content.slice(0..len as usize),
            Some(content) => {
                // Zero-extend past the written prefix.
                bf_metrics::record_memcpy(content.len() as u64);
                // bf-lint: allow(payload_copy): the snapshot must be longer
                // than the written content — a counted copy is unavoidable.
                // bf-flow: allow(hot_alloc): bounded by the region length,
                // validated against the snapshot above; memcpy-counted
                let mut v = content.to_vec();
                // bf-flow: allow(hot_alloc): same region-length bound
                v.resize(len as usize, 0);
                Bytes::from(v)
            }
            None => Bytes::from(vec![0; len as usize]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_write_read_free() {
        let shm = ShmSegment::new(1024);
        let a = shm.alloc(100).expect("alloc a");
        let b = shm.alloc(200).expect("alloc b");
        assert_ne!(a, b);
        shm.write(b, b"hello").expect("write");
        assert_eq!(shm.read(b, 5).expect("read"), b"hello"[..]);
        assert_eq!(shm.used(), 300);
        shm.free(a).expect("free a");
        shm.free(b).expect("free b");
        assert_eq!(shm.used(), 0);
    }

    #[test]
    fn freed_space_is_reusable() {
        let shm = ShmSegment::new(100);
        let a = shm.alloc(100).expect("alloc");
        assert!(matches!(shm.alloc(1), Err(ShmError::OutOfSpace { .. })));
        shm.free(a).expect("free");
        shm.alloc(100).expect("realloc after free + coalesce");
    }

    #[test]
    fn coalescing_merges_neighbours() {
        let shm = ShmSegment::new(300);
        let a = shm.alloc(100).expect("a");
        let b = shm.alloc(100).expect("b");
        let c = shm.alloc(100).expect("c");
        shm.free(a).expect("free a");
        shm.free(c).expect("free c");
        shm.free(b).expect("free b");
        // All space coalesced back into one region:
        assert_eq!(shm.alloc(300).expect("full alloc"), 0);
    }

    #[test]
    fn bad_region_and_bounds_errors() {
        let shm = ShmSegment::new(100);
        let a = shm.alloc(10).expect("a");
        assert_eq!(shm.read(a + 1, 1), Err(ShmError::BadRegion(a + 1)));
        assert!(matches!(
            shm.write(a, &[0; 11]),
            Err(ShmError::OutOfBounds { .. })
        ));
        assert_eq!(shm.free(99), Err(ShmError::BadRegion(99)));
    }

    #[test]
    fn clones_share_backing_store() {
        let shm = ShmSegment::new(64);
        let other = shm.clone();
        let a = shm.alloc(8).expect("a");
        other.write(a, &[7; 8]).expect("write via clone");
        assert_eq!(shm.read(a, 8).expect("read"), vec![7; 8]);
    }

    #[test]
    fn adopting_a_buffer_does_not_copy() {
        let shm = ShmSegment::new(1024);
        let a = shm.alloc(64).expect("a");
        let payload = Bytes::from(vec![3u8; 64]);
        let before = bf_metrics::copy_counters();
        shm.write_bytes(a, payload.clone()).expect("adopt");
        let view = shm.read(a, 64).expect("read");
        let delta = bf_metrics::copy_counters().since(before);
        assert_eq!(view, payload);
        assert_eq!(delta.bytes, 0, "adopt + read must be zero-copy");
    }

    #[test]
    fn snapshots_survive_free_and_reuse() {
        let shm = ShmSegment::new(16);
        let a = shm.alloc(16).expect("a");
        shm.write(a, &[1; 16]).expect("write");
        let snapshot = shm.read(a, 16).expect("read");
        shm.free(a).expect("free");
        let b = shm.alloc(16).expect("reuse");
        shm.write(b, &[2; 16]).expect("overwrite");
        assert_eq!(snapshot, vec![1; 16], "snapshot outlives region reuse");
        assert_eq!(shm.read(b, 16).expect("read"), vec![2; 16]);
    }

    #[test]
    fn unwritten_and_partially_written_regions_read_as_zeros() {
        let shm = ShmSegment::new(64);
        let a = shm.alloc(8).expect("a");
        assert_eq!(shm.read(a, 8).expect("fresh read"), vec![0; 8]);
        shm.write(a, &[9, 9]).expect("short write");
        assert_eq!(
            shm.read(a, 8).expect("zero-extended read"),
            vec![9, 9, 0, 0, 0, 0, 0, 0]
        );
        // A shorter overwrite keeps the longer previous write's tail.
        shm.write(a, &[5]).expect("shorter overwrite");
        assert_eq!(
            shm.read(a, 8).expect("merged read"),
            vec![5, 9, 0, 0, 0, 0, 0, 0]
        );
    }
}
