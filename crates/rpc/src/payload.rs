//! The refcounted payload buffer threaded through the datapath.
//!
//! [`Payload`] wraps [`bytes::Bytes`]: an immutable, cheaply sliceable
//! view into a refcounted buffer. Every hop of the datapath — codec
//! decode, shared-memory staging, session dispatch, device adoption —
//! passes a `Payload` by reference count instead of copying the bytes,
//! so the only real memcpys left are the one serialization per wire
//! direction and the copy-on-write a kernel performs when it actually
//! mutates a device bank.
//!
//! Inside datapath modules, take new references with [`Payload::share`]
//! rather than `.clone()`: the explicit name keeps refcount bumps
//! visually distinct from byte copies (and keeps the `payload_copy` lint
//! rule silent). Copies that *are* unavoidable go through
//! [`Payload::into_vec`] / `From<&[u8]>`, which report to
//! [`bf_metrics::record_memcpy`].

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::codec::{get_varint, put_varint, CodecError, WireDecode, WireEncode};

/// An immutable, refcounted byte buffer.
///
/// Cloning (or, preferred in datapath code, [`Payload::share`]) is a
/// reference-count bump; the bytes are copied only on serialization, on
/// [`Payload::into_vec`] when the buffer is still shared, or on
/// construction from a borrowed slice.
///
/// The wire encoding is identical to the old `Vec<u8>` field encoding
/// (varint length prefix followed by the raw bytes), and decoding is
/// zero-copy: the decoded payload is a slice of the received frame.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Payload(Bytes);

impl Payload {
    /// An empty payload.
    pub fn new() -> Self {
        Payload(Bytes::new())
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the payload is zero bytes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Takes another reference to the same bytes (a refcount bump, never
    /// a copy). Use this instead of `.clone()` in datapath code.
    pub fn share(&self) -> Payload {
        Payload(self.0.clone())
    }

    /// Borrows the bytes.
    pub fn as_slice(&self) -> &[u8] {
        self.0.as_ref()
    }

    /// Unwraps into the underlying [`Bytes`] view.
    pub fn into_bytes(self) -> Bytes {
        self.0
    }

    /// Converts into an owned `Vec<u8>`.
    ///
    /// When this payload is the sole reference to a full buffer the
    /// `Vec` is recovered in place; otherwise the bytes are copied (and
    /// the copy reported to [`bf_metrics::record_memcpy`]).
    pub fn into_vec(self) -> Vec<u8> {
        match self.0.try_into_unique_vec() {
            Ok(vec) => vec,
            Err(shared) => {
                bf_metrics::record_memcpy(shared.len() as u64);
                shared.to_vec()
            }
        }
    }
}

impl From<Vec<u8>> for Payload {
    /// Adopts the vector without copying.
    fn from(v: Vec<u8>) -> Self {
        Payload(Bytes::from(v))
    }
}

impl From<Bytes> for Payload {
    fn from(b: Bytes) -> Self {
        Payload(b)
    }
}

impl From<&[u8]> for Payload {
    /// Copies the borrowed slice (reported to copy accounting).
    fn from(d: &[u8]) -> Self {
        bf_metrics::record_memcpy(d.len() as u64);
        Payload(Bytes::from(d))
    }
}

impl<const N: usize> From<[u8; N]> for Payload {
    fn from(d: [u8; N]) -> Self {
        Payload::from(d.to_vec())
    }
}

impl std::ops::Deref for Payload {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.0.as_ref()
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        self.0.as_ref()
    }
}

impl PartialEq<[u8]> for Payload {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Payload {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Payload {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl WireEncode for Payload {
    fn encode(&self, buf: &mut BytesMut) {
        put_varint(buf, self.len() as u64);
        bf_metrics::record_memcpy(self.len() as u64);
        buf.put_slice(self.as_slice());
    }
}

impl WireDecode for Payload {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        let len = get_varint(buf)? as usize;
        if buf.remaining() < len {
            return Err(CodecError::UnexpectedEof);
        }
        // Zero-copy: the payload is a refcounted slice of the frame.
        // bf-taint: sanitized(the remaining() guard above proves the declared len fits the received buffer)
        Ok(Payload(buf.split_to(len)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_encoding_matches_the_old_vec_encoding() {
        for data in [vec![], vec![7u8], vec![0xA5; 4096]] {
            let old = data.to_bytes();
            let new = Payload::from(data).to_bytes();
            assert_eq!(new, old);
        }
    }

    #[test]
    fn decode_is_a_zero_copy_frame_slice() {
        let payload: Payload = vec![1u8, 2, 3, 4].into();
        let frame = payload.to_bytes();
        let before = bf_metrics::copy_counters();
        let back = Payload::from_bytes(frame).expect("decode");
        let delta = bf_metrics::copy_counters().since(before);
        assert_eq!(back, payload);
        assert_eq!(delta.bytes, 0, "decode must not copy payload bytes");
    }

    #[test]
    fn share_aliases_and_into_vec_recovers_unique_buffers() {
        let payload: Payload = vec![9u8; 64].into();
        let alias = payload.share();
        assert_eq!(alias, payload);
        drop(alias);
        // Sole reference to the full buffer: recovered without copying.
        let before = bf_metrics::copy_counters();
        let vec = payload.into_vec();
        let delta = bf_metrics::copy_counters().since(before);
        assert_eq!(vec, vec![9u8; 64]);
        assert_eq!(delta.bytes, 0);
    }

    #[test]
    fn into_vec_copies_when_shared() {
        let payload: Payload = vec![3u8; 32].into();
        let alias = payload.share();
        let before = bf_metrics::copy_counters();
        let vec = payload.into_vec();
        let delta = bf_metrics::copy_counters().since(before);
        assert_eq!(vec, vec![3u8; 32]);
        assert_eq!(delta.bytes, 32, "shared buffer must be copied out");
        assert_eq!(alias, vec);
    }
}
