//! Concurrency battery for the shared-memory segment.
//!
//! The shm data path is the one place where multiple client threads and
//! the manager's event loop touch the same bytes: writers allocate a
//! region, fill it and hand (offset, len) across a channel; the reader
//! consumes the region and frees it. The segment must never produce torn
//! reads, never hand two writers overlapping regions, and must account
//! every region through the full alloc → write → read → free lifecycle.

use std::thread;

use bf_rpc::{ShmError, ShmSegment};
use crossbeam::channel::bounded;

const WRITERS: usize = 4;
const ROUNDS: usize = 64;
const REGION: u64 = 4096;

/// Each message is a region filled with one distinguishing byte, so a
/// torn read (two writers in one region, or a read racing a write)
/// surfaces as a mixed-byte payload.
#[test]
fn parallel_writers_and_a_reader_never_tear_or_leak() {
    let shm = ShmSegment::new((WRITERS as u64 + 1) * ROUNDS as u64 * REGION);
    let (tx, rx) = bounded::<(u64, u64, u8)>(WRITERS * 4);

    let reader = {
        let shm = shm.clone();
        thread::spawn(move || {
            let mut seen = vec![0usize; WRITERS];
            for (offset, len, id) in rx.iter() {
                let bytes = shm.read(offset, len).expect("read live region");
                assert!(
                    bytes.iter().all(|&b| b == id),
                    "torn read at offset {offset}: region written by {id} holds foreign bytes"
                );
                shm.free(offset).expect("free once");
                // Freed means gone: the same offset no longer names a region
                // until some writer re-allocates it.
                assert_eq!(shm.free(offset), Err(ShmError::BadRegion(offset)));
                seen[id as usize] += 1;
            }
            seen
        })
    };

    let writers: Vec<_> = (0..WRITERS)
        .map(|id| {
            let shm = shm.clone();
            let tx = tx.clone();
            thread::spawn(move || {
                for round in 0..ROUNDS {
                    // Vary the size so first-fit recycling shuffles offsets
                    // between writers across rounds.
                    let len = REGION - (round as u64 % 7) * 16;
                    let offset = shm.alloc(len).expect("capacity is provisioned");
                    shm.write(offset, &vec![id as u8; len as usize])
                        .expect("write own region");
                    tx.send((offset, len, id as u8)).expect("reader alive");
                }
            })
        })
        .collect();
    drop(tx);

    for w in writers {
        w.join().expect("writer");
    }
    let seen = reader.join().expect("reader");
    assert_eq!(seen, vec![ROUNDS; WRITERS], "every region was consumed");
    assert_eq!(shm.used(), 0, "full lifecycle: everything freed");
    // The allocator coalesced back to one region: a capacity-sized alloc
    // succeeds again.
    let all = shm.alloc(shm.capacity()).expect("segment fully recycled");
    shm.free(all).expect("free");
}

/// Two writers hammering alloc/free concurrently must never be handed
/// overlapping regions.
#[test]
fn concurrent_allocations_never_overlap() {
    let shm = ShmSegment::new(64 * REGION);
    let handles: Vec<_> = (0..2)
        .map(|id| {
            let shm = shm.clone();
            thread::spawn(move || {
                let mut held = Vec::new();
                for _ in 0..128u64 {
                    let offset = shm.alloc(REGION).expect("half the segment each");
                    shm.write(offset, &vec![id as u8; REGION as usize])
                        .expect("write");
                    held.push(offset);
                    // Keep at most 16 live regions (32 across both writers,
                    // against 64 provisioned), recycling the oldest.
                    if held.len() >= 16 {
                        let freed = held.remove(0);
                        let bytes = shm.read(freed, REGION).expect("still mine");
                        assert!(
                            bytes.iter().all(|&b| b == id as u8),
                            "writer {id}'s region at {freed} was clobbered"
                        );
                        shm.free(freed).expect("free");
                    }
                }
                for offset in held {
                    let bytes = shm.read(offset, REGION).expect("still mine");
                    assert!(bytes.iter().all(|&b| b == id as u8));
                    shm.free(offset).expect("free");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("writer");
    }
    assert_eq!(shm.used(), 0);
}

#[test]
fn lifecycle_errors_are_reported_not_swallowed() {
    let shm = ShmSegment::new(2 * REGION);
    let a = shm.alloc(REGION).expect("alloc");
    // Double free.
    shm.free(a).expect("first free");
    assert_eq!(shm.free(a), Err(ShmError::BadRegion(a)));
    // Read/write through a stale offset.
    assert!(shm.read(a, 1).is_err());
    assert!(shm.write(a, &[1]).is_err());
    // Out-of-bounds access on a live region.
    let b = shm.alloc(REGION).expect("alloc");
    assert!(matches!(
        shm.write(b, &vec![0; REGION as usize + 1]),
        Err(ShmError::OutOfBounds { .. })
    ));
    // Exhaustion names the largest free region instead of panicking.
    assert!(matches!(
        shm.alloc(shm.capacity()),
        Err(ShmError::OutOfSpace { .. })
    ));
    shm.free(b).expect("free");
}
