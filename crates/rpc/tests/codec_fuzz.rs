//! Deterministic codec battery over every protocol variant.
//!
//! The in-crate proptests sample the space; this battery is exhaustive
//! where exhaustiveness is cheap: a corpus holding **every**
//! `Request`/`Response` variant (every `DataRef` form, every `WireArg`
//! form, payload sizes 0 / 1 / large) is round-tripped, truncated at
//! every strict prefix length (the decoder must return `CodecError`,
//! never panic and never accept a short read), and corrupted one bit at
//! a time (the decoder must stay total).

use bf_model::VirtualTime;
use bf_rpc::{
    ClientId, DataRef, ErrorCode, Payload, Request, RequestEnvelope, Response, ResponseEnvelope,
    WireArg, WireDecode, WireEncode,
};
use bytes::Bytes;

/// Larger than any inline/shm switch-over threshold in the cost model.
const LARGE: usize = 70_000;

fn request_corpus() -> Vec<RequestEnvelope> {
    let bodies = vec![
        Request::Hello {
            client_name: "sobel-1".to_string(),
            shm: true,
        },
        Request::Hello {
            client_name: String::new(),
            shm: false,
        },
        Request::GetDeviceInfo,
        Request::CreateContext,
        Request::BuildProgram {
            bitstream: "incr".to_string(),
        },
        Request::CreateKernel {
            program: 3,
            name: "incr".to_string(),
        },
        Request::SetKernelArg {
            kernel: 4,
            index: 0,
            arg: WireArg::Buffer(9),
        },
        Request::SetKernelArg {
            kernel: 4,
            index: 1,
            arg: WireArg::U32(u32::MAX),
        },
        Request::SetKernelArg {
            kernel: 4,
            index: 2,
            arg: WireArg::I32(-1),
        },
        Request::SetKernelArg {
            kernel: 4,
            index: 3,
            arg: WireArg::U64(u64::MAX),
        },
        Request::SetKernelArg {
            kernel: 4,
            index: 4,
            arg: WireArg::F32(-2.5),
        },
        Request::CreateBuffer {
            context: 1,
            len: 1 << 20,
        },
        Request::ReleaseBuffer { buffer: 9 },
        Request::CreateQueue { context: 1 },
        Request::EnqueueWrite {
            queue: 5,
            buffer: 9,
            offset: 0,
            data: DataRef::Inline(Payload::new()),
        },
        Request::EnqueueWrite {
            queue: 5,
            buffer: 9,
            offset: 7,
            data: DataRef::Inline(vec![0xAB].into()),
        },
        Request::EnqueueWrite {
            queue: 5,
            buffer: 9,
            offset: 0,
            data: DataRef::Shm {
                offset: 4096,
                len: LARGE as u64,
            },
        },
        Request::EnqueueWrite {
            queue: 5,
            buffer: 9,
            offset: 0,
            data: DataRef::Synthetic(u64::MAX),
        },
        Request::EnqueueWrite {
            queue: 5,
            buffer: 9,
            offset: 0,
            data: DataRef::Digest {
                digest: u128::MAX,
                len: LARGE as u64,
            },
        },
        Request::EnqueueRead {
            queue: 5,
            buffer: 9,
            offset: 64,
            len: 128,
        },
        Request::EnqueueKernel {
            queue: 5,
            kernel: 4,
            work: [1024, 16, 1],
        },
        Request::EnqueueCopy {
            queue: 5,
            src: 9,
            dst: 10,
            src_offset: 0,
            dst_offset: 32,
            len: 64,
        },
        Request::Flush { queue: 5 },
        Request::Finish { queue: 5 },
        Request::Reconfigure {
            bitstream: "other".to_string(),
        },
        Request::Disconnect,
    ];
    bodies
        .into_iter()
        .enumerate()
        .map(|(i, body)| RequestEnvelope {
            tag: i as u64,
            client: ClientId(i as u64 + 1),
            sent_at: VirtualTime::from_nanos(i as u64 * 1000),
            body,
        })
        .collect()
}

fn response_corpus() -> Vec<ResponseEnvelope> {
    let codes = [
        ErrorCode::InvalidHandle,
        ErrorCode::AccessDenied,
        ErrorCode::OutOfResources,
        ErrorCode::OutOfBounds,
        ErrorCode::BuildFailure,
        ErrorCode::InvalidLaunch,
        ErrorCode::ReconfigurationRefused,
        ErrorCode::Internal,
        ErrorCode::CacheMiss,
    ];
    let mut bodies = vec![
        Response::Ack,
        Response::Handle { id: u64::MAX },
        Response::DeviceInfo {
            name: "DE5a-Net".to_string(),
            vendor: "Intel".to_string(),
            platform: "BlastFunction".to_string(),
            memory_bytes: 8 << 30,
            node: "node-b".to_string(),
            bitstream: Some("incr".to_string()),
        },
        Response::DeviceInfo {
            name: String::new(),
            vendor: String::new(),
            platform: String::new(),
            memory_bytes: 0,
            node: String::new(),
            bitstream: None,
        },
        Response::Enqueued,
        Response::Completed {
            started_at: VirtualTime::from_nanos(10),
            ended_at: VirtualTime::from_nanos(20),
            data: None,
        },
        Response::Completed {
            started_at: VirtualTime::ZERO,
            ended_at: VirtualTime::ZERO,
            data: Some(DataRef::Inline(vec![0x5A; 64].into())),
        },
        Response::Completed {
            started_at: VirtualTime::from_nanos(1),
            ended_at: VirtualTime::from_nanos(2),
            data: Some(DataRef::Shm { offset: 0, len: 0 }),
        },
        Response::Completed {
            started_at: VirtualTime::from_nanos(1),
            ended_at: VirtualTime::from_nanos(2),
            data: Some(DataRef::Synthetic(1 << 40)),
        },
    ];
    bodies.extend(codes.into_iter().map(|code| Response::Error {
        code,
        message: "boom".to_string(),
    }));
    bodies
        .into_iter()
        .enumerate()
        .map(|(i, body)| ResponseEnvelope {
            tag: i as u64,
            sent_at: VirtualTime::from_nanos(i as u64),
            body,
        })
        .collect()
}

/// Every strict prefix must be rejected with an error, not a panic and
/// not a silently-shortened message: all fields are mandatory and
/// sequential, so a cut either lands mid-varint (continuation bit set),
/// mid-payload (length prefix unsatisfied) or before a missing field.
fn assert_truncation_total(wire: &Bytes, what: &str, decode: impl Fn(Bytes) -> bool) {
    for cut in 0..wire.len() {
        let ok = decode(wire.slice(..cut));
        assert!(!ok, "{what}: {cut}-byte prefix of {} decoded", wire.len());
    }
}

/// Flipping any single bit must never panic the decoder. (It may still
/// decode — a flipped payload byte is a different valid message.)
fn assert_bitflips_total(wire: &Bytes, decode: impl Fn(Bytes)) {
    for pos in 0..wire.len() {
        for bit in 0..8 {
            let mut bytes = wire.to_vec();
            bytes[pos] ^= 1 << bit;
            decode(Bytes::from(bytes));
        }
    }
}

#[test]
fn every_request_variant_round_trips() {
    for env in request_corpus() {
        let wire = env.to_bytes();
        let back = RequestEnvelope::from_bytes(wire).expect("decode");
        assert_eq!(back, env);
    }
}

#[test]
fn every_response_variant_round_trips() {
    for env in response_corpus() {
        let wire = env.to_bytes();
        let back = ResponseEnvelope::from_bytes(wire).expect("decode");
        assert_eq!(back, env);
    }
}

#[test]
fn truncated_requests_error_at_every_prefix_length() {
    for env in request_corpus() {
        assert_truncation_total(&env.to_bytes(), "request", |b| {
            RequestEnvelope::from_bytes(b).is_ok()
        });
    }
}

#[test]
fn truncated_responses_error_at_every_prefix_length() {
    for env in response_corpus() {
        assert_truncation_total(&env.to_bytes(), "response", |b| {
            ResponseEnvelope::from_bytes(b).is_ok()
        });
    }
}

#[test]
fn corrupted_requests_never_panic_the_decoder() {
    for env in request_corpus() {
        assert_bitflips_total(&env.to_bytes(), |b| {
            let _ = RequestEnvelope::from_bytes(b);
        });
    }
}

#[test]
fn corrupted_responses_never_panic_the_decoder() {
    for env in response_corpus() {
        assert_bitflips_total(&env.to_bytes(), |b| {
            let _ = ResponseEnvelope::from_bytes(b);
        });
    }
}

#[test]
fn oversized_inline_payloads_survive_the_wire() {
    let payload: Vec<u8> = (0..LARGE).map(|i| (i % 251) as u8).collect();
    let env = RequestEnvelope {
        tag: 42,
        client: ClientId(7),
        sent_at: VirtualTime::from_nanos(1),
        body: Request::EnqueueWrite {
            queue: 5,
            buffer: 9,
            offset: 0,
            data: DataRef::Inline(payload.clone().into()),
        },
    };
    let wire = env.to_bytes();
    assert!(wire.len() > LARGE, "payload travels inline");
    let back = RequestEnvelope::from_bytes(wire.clone()).expect("decode");
    match back.body {
        Request::EnqueueWrite {
            data: DataRef::Inline(got),
            ..
        } => assert_eq!(got, payload),
        other => panic!("wrong body after round trip: {other:?}"),
    }
    // Exhaustive truncation is O(len²) here; probe the structural region
    // (header + length prefix) densely and the payload sparsely.
    for cut in (0..64).chain((64..wire.len()).step_by(997)) {
        assert!(
            RequestEnvelope::from_bytes(wire.slice(..cut)).is_err(),
            "oversized frame: {cut}-byte prefix decoded"
        );
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    for env in request_corpus() {
        let mut bytes = env.to_bytes().to_vec();
        bytes.push(0);
        assert!(
            RequestEnvelope::from_bytes(Bytes::from(bytes)).is_err(),
            "trailing byte accepted after {:?}",
            env.body
        );
    }
}

// ---- adversarial declared lengths ---------------------------------------
//
// Every variable-size field travels as a varint length prefix that the
// decoder reads off the wire and trusts only after proving it fits the
// received frame (`buf.remaining() < len` → `UnexpectedEof`). These
// attacks declare lengths up to `u64::MAX` over tiny frames: the decoder
// must return the typed error WITHOUT allocating or copying anything
// proportional to the claim — asserted through the process-wide
// bf_metrics copy counters, which the decode paths report into.

use bf_rpc::CodecError;
use bytes::{BufMut, BytesMut};

/// A frame claiming `declared` bytes of content but carrying `actual`.
fn declared_len_frame(declared: u64, actual: &[u8]) -> Bytes {
    let mut buf = BytesMut::new();
    declared.encode(&mut buf);
    buf.put_slice(actual);
    buf.freeze()
}

/// Lengths an attacker would pick: just past the frame, huge, and the
/// `as usize` edge cases.
const EVIL_LENGTHS: [u64; 5] = [16, u32::MAX as u64, 1 << 40, u64::MAX - 1, u64::MAX];

#[test]
fn declared_length_attacks_error_without_proportional_work() {
    let before = bf_metrics::copy_counters();
    for declared in EVIL_LENGTHS {
        let frame = declared_len_frame(declared, b"tiny");
        assert_eq!(
            String::decode(&mut frame.clone()),
            Err(CodecError::UnexpectedEof),
            "string declaring {declared} bytes"
        );
        assert_eq!(
            Vec::<u8>::decode(&mut frame.clone()),
            Err(CodecError::UnexpectedEof),
            "vec declaring {declared} bytes"
        );
        assert_eq!(
            Payload::decode(&mut frame.clone()),
            Err(CodecError::UnexpectedEof),
            "payload declaring {declared} bytes"
        );
    }
    // 15 rejected decodes declared ~4 EiB in total. Concurrent tests in
    // this binary legitimately copy a few hundred KB; anything remotely
    // proportional to the declared lengths would blow past this bound.
    let delta = bf_metrics::copy_counters().since(before);
    assert!(
        delta.bytes < 1 << 30,
        "rejected decodes copied {} bytes",
        delta.bytes
    );
}

#[test]
fn envelope_with_inflated_payload_length_is_rejected() {
    let marker: &[u8] = &[0x05, 0xA1, 0xA2, 0xA3, 0xA4, 0xA5];
    let env = RequestEnvelope {
        tag: 9,
        client: ClientId(3),
        sent_at: VirtualTime::from_nanos(7),
        body: Request::EnqueueWrite {
            queue: 5,
            buffer: 9,
            offset: 0,
            data: DataRef::Inline(vec![0xA1, 0xA2, 0xA3, 0xA4, 0xA5].into()),
        },
    };
    let wire = env.to_bytes().to_vec();
    let pos = wire
        .windows(marker.len())
        .position(|w| w == marker)
        .expect("inline payload length prefix present in the frame");
    // Splice a 10-byte varint of u64::MAX where the 1-byte length `5` sat:
    // the envelope now claims an 16-EiB payload backed by 5 bytes.
    let mut evil = wire[..pos].to_vec();
    let mut prefix = BytesMut::new();
    u64::MAX.encode(&mut prefix);
    evil.extend_from_slice(&prefix);
    evil.extend_from_slice(&wire[pos + 1..]);
    let before = bf_metrics::copy_counters();
    assert_eq!(
        RequestEnvelope::from_bytes(Bytes::from(evil)),
        Err(CodecError::UnexpectedEof),
        "inflated inline payload length must be a typed decode error"
    );
    let delta = bf_metrics::copy_counters().since(before);
    assert!(
        delta.bytes < 1 << 30,
        "rejected envelope copied {} bytes",
        delta.bytes
    );
}
