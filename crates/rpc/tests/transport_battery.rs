//! Transport battery: backpressure, dispatcher fairness and shutdown
//! behaviour of the bounded duplex channels under a [`Poller`].
//!
//! These are the cross-thread scenarios the unit tests cannot cover
//! in-process: a flooding connection sharing a dispatcher with a quiet
//! one, and dispatcher threads that must wake and exit when every peer
//! hangs up.

use std::time::Duration;

use bf_model::VirtualTime;
use bf_rpc::{
    duplex_with_depth, ClientId, PollEvent, Poller, Request, RequestEnvelope, Response,
    ResponseEnvelope, TransportError,
};

fn req(tag: u64) -> RequestEnvelope {
    RequestEnvelope {
        tag,
        client: ClientId(1),
        sent_at: VirtualTime::ZERO,
        body: Request::CreateContext,
    }
}

fn resp(tag: u64) -> ResponseEnvelope {
    ResponseEnvelope {
        tag,
        sent_at: VirtualTime::ZERO,
        body: Response::Ack,
    }
}

// ---- backpressure -------------------------------------------------------

#[test]
fn flooded_direction_surfaces_backpressure_and_drains_after_reads() {
    let (client, server) = duplex_with_depth(8);
    for tag in 0..8 {
        client.try_send(&req(tag)).expect("below capacity");
    }
    assert_eq!(client.try_send(&req(8)), Err(TransportError::Backpressure));
    // Every read frees exactly one slot.
    for expect in 0..3 {
        assert_eq!(server.recv().expect("recv").tag, expect);
        client.try_send(&req(100 + expect)).expect("slot freed");
    }
    assert_eq!(
        client.try_send(&req(200)),
        Err(TransportError::Backpressure)
    );
    // Draining fully restores the whole capacity.
    while server.try_recv().expect("drain").is_some() {}
    for tag in 0..8 {
        client.try_send(&req(tag)).expect("drained");
    }
}

#[test]
fn backpressure_on_one_connection_does_not_block_another() {
    let (client_a, _server_a) = duplex_with_depth(1);
    let (client_b, server_b) = duplex_with_depth(1);
    client_a.try_send(&req(1)).expect("first frame fits");
    assert_eq!(
        client_a.try_send(&req(2)),
        Err(TransportError::Backpressure)
    );
    // Connection B has its own bounded queue and is unaffected.
    client_b.try_send(&req(7)).expect("independent capacity");
    assert_eq!(server_b.recv().expect("recv").tag, 7);
}

#[test]
fn blocked_sender_resumes_exactly_when_the_reader_catches_up() {
    let (client, server) = duplex_with_depth(4);
    let producer = std::thread::spawn(move || {
        for tag in 0..64 {
            // Blocking send: parks while the queue is full instead of
            // failing, and preserves FIFO order across the stalls.
            client.send(&req(tag)).expect("send");
        }
    });
    for tag in 0..64 {
        let got = server
            .recv_timeout(Duration::from_secs(5))
            .expect("producer keeps the queue fed");
        assert_eq!(got.tag, tag, "order preserved across backpressure stalls");
    }
    producer.join().expect("producer exits once drained");
}

// ---- fairness -----------------------------------------------------------

#[test]
fn flooding_connection_cannot_starve_another_under_the_dispatcher() {
    let (client_a, server_a) = duplex_with_depth(128);
    let (client_b, server_b) = duplex_with_depth(128);
    // A floods 100 requests; B sends 10. All frames are queued before the
    // dispatcher starts, so the schedule below is purely the poller's.
    for tag in 0..100 {
        client_a.try_send(&req(tag)).expect("A fits");
    }
    for tag in 0..10 {
        client_b.try_send(&req(tag)).expect("B fits");
    }
    let mut poller = Poller::new();
    let tok_a = poller.register(server_a.requests());
    let tok_b = poller.register(server_b.requests());
    let mut order = Vec::new();
    let mut next_a = 0u64;
    let mut next_b = 0u64;
    for _ in 0..110 {
        match poller.poll(Some(Duration::from_secs(5))) {
            PollEvent::Ready(tok) if tok == tok_a => {
                let got = server_a.try_recv().expect("frame").expect("ready");
                assert_eq!(got.tag, next_a, "A stays FIFO");
                next_a += 1;
                order.push('a');
            }
            PollEvent::Ready(tok) => {
                assert_eq!(tok, tok_b);
                let got = server_b.try_recv().expect("frame").expect("ready");
                assert_eq!(got.tag, next_b, "B stays FIFO");
                next_b += 1;
                order.push('b');
            }
            PollEvent::TimedOut => panic!("frames are pending"),
        }
    }
    assert_eq!((next_a, next_b), (100, 10), "every frame serviced");
    // Round-robin guarantee: while B still has work, A never gets two
    // consecutive services, so B's k-th service lands by position 2k.
    for (k, pos) in order
        .iter()
        .enumerate()
        .filter(|(_, c)| **c == 'b')
        .map(|(pos, _)| pos)
        .enumerate()
    {
        assert!(
            pos < 2 * (k + 1),
            "B's service #{k} delayed to position {pos}: {order:?}"
        );
    }
}

// ---- shutdown -----------------------------------------------------------

#[test]
fn dispatcher_thread_wakes_and_exits_when_all_peers_drop() {
    let (client_a, server_a) = duplex_with_depth(16);
    let (client_b, server_b) = duplex_with_depth(16);
    let dispatcher = std::thread::spawn(move || {
        let mut poller = Poller::new();
        let servers = [server_a, server_b];
        let tokens = [
            poller.register(servers[0].requests()),
            poller.register(servers[1].requests()),
        ];
        let mut processed = 0u32;
        while !poller.is_empty() {
            // No timeout: only frames, hangups or a waker may end this wait.
            let PollEvent::Ready(tok) = poller.poll(None) else {
                unreachable!("poll(None) cannot time out");
            };
            let i = usize::from(tok == tokens[1]);
            match servers[i].try_recv() {
                Ok(Some(_)) => processed += 1,
                Ok(None) => {}
                Err(TransportError::Closed) => poller.deregister(tok),
                Err(e) => panic!("unexpected transport error: {e}"),
            }
        }
        processed
    });
    client_a.try_send(&req(1)).expect("send a");
    client_b.try_send(&req(2)).expect("send b");
    client_b.try_send(&req(3)).expect("send b");
    // Dropping the clients closes the request senders; the poller reports
    // the buffered frames first, then the hangup edges, and the dispatcher
    // unwinds without any timeout crutch.
    drop(client_a);
    drop(client_b);
    let processed = dispatcher.join().expect("dispatcher exits");
    assert_eq!(processed, 3, "buffered frames delivered before Closed");
}

#[test]
fn waker_interrupts_a_dispatcher_blocked_on_idle_connections() {
    let mut poller = Poller::new();
    let (wake_token, waker) = poller.add_waker();
    let (client, server) = duplex_with_depth(4);
    let tok = poller.register(server.requests());
    let dispatcher = std::thread::spawn(move || {
        // Exit only once both edges arrived: a waker nudge and a frame.
        // Wakes coalesce (N wakes may yield one Ready), so count edges,
        // not calls.
        let mut woken = false;
        let mut frames = 0u32;
        while !(woken && frames == 1) {
            match poller.poll(None) {
                PollEvent::Ready(t) if t == wake_token => woken = true,
                PollEvent::Ready(t) => {
                    assert_eq!(t, tok);
                    if server.try_recv().expect("frame").is_some() {
                        frames += 1;
                    }
                }
                PollEvent::TimedOut => unreachable!("poll(None) cannot time out"),
            }
        }
        frames
    });
    waker.wake();
    client.try_send(&req(1)).expect("send");
    assert_eq!(dispatcher.join().expect("join"), 1);
}

#[test]
fn client_observes_closed_after_the_dispatcher_stops_serving() {
    let (client, server) = duplex_with_depth(4);
    let dispatcher = std::thread::spawn(move || {
        // Serve exactly one round trip, then hang up.
        let got = server.recv().expect("request");
        server.send(&resp(got.tag)).expect("response");
    });
    client.send(&req(9)).expect("send");
    assert_eq!(client.recv().expect("served").tag, 9);
    dispatcher.join().expect("dispatcher exits");
    // The server side is gone: sends fail fast, receives drain then close.
    assert_eq!(client.send(&req(10)), Err(TransportError::Closed));
    assert_eq!(client.recv().expect_err("hangup"), TransportError::Closed);
}
