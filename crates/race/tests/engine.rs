//! Engine self-tests: seeded bugs the checker must catch, plus sanity
//! checks that correct code explores multiple schedules cleanly.
//!
//! These are the "does the checker actually check" suite — each seeded
//! bug mirrors a defect class from the real system (opposite lock
//! orders, check-then-park without generation counting, unsynchronized
//! shared state) and the test asserts the explorer reports it.

#![cfg(feature = "model")]

use std::sync::Arc;

use bf_race::sync::{atomic, Condvar, Mutex, RaceCell};
use bf_race::{explore, explore_with, thread, Config, FailureKind};

/// Two threads taking two locks in opposite orders: the classic cycle.
/// The checker must find the schedule where each holds one lock.
#[test]
fn seeded_opposite_order_deadlock_is_caught() {
    let result = explore("opposite-order-deadlock", || {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        let (a2, b2) = (a.clone(), b.clone());
        let t = thread::spawn(move || {
            let ga = a2.lock();
            let mut gb = b2.lock();
            *gb += *ga;
        });
        {
            let gb = b.lock();
            let mut ga = a.lock();
            *ga += *gb;
        }
        t.join();
    });
    let failure = result.expect_err("deadlock must be reported");
    assert_eq!(failure.kind, FailureKind::Deadlock, "{failure}");
    assert!(
        failure.message.contains("blocked acquiring lock"),
        "deadlock report should name the blocked acquisitions: {failure}"
    );
}

/// Re-locking a mutex the same thread already holds: self-deadlock.
#[test]
fn seeded_self_deadlock_is_caught() {
    let result = explore("self-deadlock", || {
        let m = Mutex::new(1u32);
        let g1 = m.lock();
        let g2 = m.lock();
        drop(g2);
        drop(g1);
    });
    let failure = result.expect_err("self-deadlock must be reported");
    assert_eq!(failure.kind, FailureKind::Deadlock, "{failure}");
}

/// The "dropped wake" bug: a consumer checks a flag and parks *untimed*,
/// while the producer sets the flag and notifies. In the schedule where
/// the notify lands between the check and the park, the wake is lost and
/// the consumer sleeps forever. (The real Poller avoids this with
/// generation counting — `poll_gen` is read under the same lock the wait
/// uses.)
#[test]
fn seeded_lost_wakeup_is_caught() {
    let result = explore("lost-wakeup", || {
        let ready = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (ready2, cv2) = (ready.clone(), cv.clone());
        let consumer = thread::spawn(move || {
            // BUG: the readiness check releases the lock before parking
            // and the flag is never rechecked, so a notify landing in the
            // gap is dropped and the park lasts forever.
            let was_ready = { *ready2.lock() };
            if !was_ready {
                let mut g = ready2.lock();
                cv2.wait(&mut g);
            }
        });
        {
            let mut g = ready.lock();
            *g = true;
        }
        cv.notify_one();
        consumer.join();
    });
    let failure = result.expect_err("lost wakeup must be reported");
    assert_eq!(failure.kind, FailureKind::Deadlock, "{failure}");
    assert!(
        failure.message.contains("lost wakeup"),
        "report should classify the untimed parked thread as a lost wakeup: {failure}"
    );
}

/// The correct version of the same pattern — re-check under the wait
/// lock, notify while publishing — explores cleanly, and needs more than
/// one schedule to say so.
#[test]
fn correct_wait_protocol_is_clean() {
    let stats = explore("correct-wait", || {
        let ready = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (ready2, cv2) = (ready.clone(), cv.clone());
        let consumer = thread::spawn(move || {
            let mut g = ready2.lock();
            while !*g {
                cv2.wait(&mut g);
            }
        });
        {
            let mut g = ready.lock();
            *g = true;
            cv.notify_one();
        }
        consumer.join();
    })
    .expect("correct protocol must explore cleanly");
    assert!(
        stats.schedules > 1,
        "expected multiple schedules, got {stats:?}"
    );
}

/// Unsynchronized concurrent writes to shared state: a data race with no
/// happens-before edge between the accesses.
#[test]
fn seeded_unsynchronized_write_race_is_caught() {
    let result = explore("write-race", || {
        let cell = Arc::new(RaceCell::new(0u32));
        let cell2 = cell.clone();
        let t = thread::spawn(move || {
            cell2.set(1);
        });
        cell.set(2);
        t.join();
    });
    let failure = result.expect_err("data race must be reported");
    assert_eq!(failure.kind, FailureKind::DataRace, "{failure}");
    assert!(
        failure.message.contains("unordered with"),
        "race report should show both access sites: {failure}"
    );
}

/// The same accesses ordered by a mutex are race-free: lock/unlock
/// builds the happens-before edge the detector consults.
#[test]
fn lock_ordered_accesses_are_race_free() {
    let stats = explore("lock-ordered", || {
        let cell = Arc::new(RaceCell::new(0u32));
        let gate = Arc::new(Mutex::new(()));
        let (cell2, gate2) = (cell.clone(), gate.clone());
        let t = thread::spawn(move || {
            let _g = gate2.lock();
            let v = cell2.get();
            cell2.set(v + 1);
        });
        {
            let _g = gate.lock();
            let v = cell.get();
            cell.set(v + 1);
        }
        t.join();
    })
    .expect("mutex-ordered accesses must be race-free");
    assert!(
        stats.schedules > 1,
        "expected multiple schedules, got {stats:?}"
    );
}

/// A panic inside the closure surfaces as a Panic failure with the
/// assertion message, not a test-harness abort.
#[test]
fn closure_panic_is_reported() {
    let counter = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let c2 = counter.clone();
    let result = explore("panicking-model", move || {
        let n = c2.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        assert!(n > 1_000_000, "seeded assertion failure");
    });
    let failure = result.expect_err("panic must be reported");
    assert_eq!(failure.kind, FailureKind::Panic, "{failure}");
    assert!(
        failure.message.contains("seeded assertion failure"),
        "panic message should be carried through: {failure}"
    );
}

/// Two unordered increments through instrumented atomics: all
/// interleavings of the load/add are explored, so both the lost-update
/// total (1) and the sequential total (2) must be observed.
#[test]
fn atomics_explore_interleavings() {
    use std::sync::atomic::{AtomicBool, Ordering as StdOrdering};
    let saw_two = Arc::new(AtomicBool::new(false));
    let saw = saw_two.clone();
    let stats = explore("atomic-interleavings", move || {
        let n = Arc::new(atomic::AtomicU32::new(0));
        let n2 = n.clone();
        let t = thread::spawn(move || {
            n2.fetch_add(1, atomic::Ordering::SeqCst);
        });
        n.fetch_add(1, atomic::Ordering::SeqCst);
        t.join();
        if n.load(atomic::Ordering::SeqCst) == 2 {
            saw.store(true, StdOrdering::Relaxed);
        }
    })
    .expect("atomic increments are race-free by definition");
    assert!(stats.schedules > 1, "got {stats:?}");
    assert!(saw_two.load(StdOrdering::Relaxed));
}

/// An untimed wait that times out instead: `wait_for` must explore the
/// timeout branch deterministically (no notify ever arrives, so *only*
/// the timeout branch exists — the schedule still terminates).
#[test]
fn timed_wait_explores_timeout_branch() {
    let stats = explore("timed-wait-timeout", || {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, std::time::Duration::from_millis(5));
        assert!(r.timed_out());
    })
    .expect("a timed wait with no notifier must terminate via its timeout");
    assert!(stats.schedules >= 1, "got {stats:?}");
}

/// The preemption bound actually prunes: an unbounded run of a 3-thread
/// interleaving explores strictly more schedules than a 0-preemption run.
#[test]
fn preemption_bound_limits_exploration() {
    let body = || {
        let n = Arc::new(atomic::AtomicU32::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let n2 = n.clone();
            handles.push(thread::spawn(move || {
                n2.fetch_add(1, atomic::Ordering::SeqCst);
                n2.fetch_add(1, atomic::Ordering::SeqCst);
            }));
        }
        for h in handles {
            h.join();
        }
    };
    let bounded = explore_with(
        "bounded",
        Config {
            preemption_bound: Some(0),
            ..Config::default()
        },
        body,
    )
    .expect("bounded run is clean");
    let unbounded = explore_with(
        "unbounded",
        Config {
            preemption_bound: None,
            ..Config::default()
        },
        body,
    )
    .expect("unbounded run is clean");
    assert!(
        unbounded.schedules > bounded.schedules,
        "unbounded {unbounded:?} should explore more than bounded {bounded:?}"
    );
    assert!(
        bounded.pruned_preemptions > 0,
        "bound must prune: {bounded:?}"
    );
}
