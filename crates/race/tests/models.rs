//! Model tests: the real transport / device-manager / shm / payload code
//! driven under the deterministic scheduler.
//!
//! Each test explores every interleaving of its threads (up to the stated
//! preemption bound) and asserts an invariant that must hold on *all*
//! schedules — plus one seeded-bug fixture proving the checker catches the
//! class of defect the invariant guards against. The explored-schedule
//! count is printed so CI logs show the coverage each run bought.

#![cfg(feature = "model")]

use std::sync::Arc;
use std::time::Duration;

use bf_race::sync::{Condvar, Mutex};
use bf_race::{explore, explore_with, thread, Config, FailureKind};
use bf_rpc::{
    duplex_with_depth, ClientId, PathCosts, PollEvent, Poller, Request, RequestEnvelope, Response,
    ResponseEnvelope, ShmSegment, TransportError,
};

fn resp(tag: u64) -> ResponseEnvelope {
    ResponseEnvelope {
        tag,
        sent_at: bf_model::VirtualTime::ZERO,
        body: Response::Ack,
    }
}

/// Poller wake/poll generation counting: a frame push and a cross-thread
/// `Waker::wake` racing against `poll` are never lost, no matter where
/// they land relative to the scan-then-park window. A missing generation
/// recheck would deadlock some schedule (see the seeded fixture below).
#[test]
fn poller_never_loses_a_wake_or_a_push() {
    let stats = explore("poller_wake_generation", || {
        let (client, server) = duplex_with_depth(4);
        let mut poller = Poller::new();
        let data_tok = poller.register(client.completions());
        let (wake_tok, waker) = poller.add_waker();
        let t = thread::spawn(move || {
            server.send(&resp(1)).expect("send");
            waker.wake();
            // `server` stays alive until after the wake so the data token
            // cannot turn permanently ready (closed) mid-loop.
        });
        let (mut got_data, mut got_wake) = (false, false);
        while !(got_data && got_wake) {
            match poller.poll(None) {
                PollEvent::Ready(tok) if tok == data_tok => {
                    let _ = client.try_recv();
                    got_data = true;
                }
                PollEvent::Ready(tok) if tok == wake_tok => got_wake = true,
                other => panic!("unexpected poll result: {other:?}"),
            }
        }
        t.join();
    })
    .expect("no schedule may lose a readiness edge");
    println!(
        "poller_wake_generation: {} schedules explored",
        stats.schedules
    );
    assert!(stats.schedules > 1, "exploration must branch: {stats:?}");
}

/// Seeded bug: a notify hub that parks without rechecking the generation
/// it snapshotted. The checker must find the schedule where the bump lands
/// between snapshot and park — the classic lost wakeup the real
/// `NotifyHub::wait` recheck exists to prevent.
#[test]
fn seeded_hub_without_generation_recheck_is_caught() {
    let err = explore("seeded_hub_no_recheck", || {
        let hub = Arc::new((Mutex::new(0u64), Condvar::new()));
        let bumper = {
            let hub = hub.clone();
            thread::spawn(move || {
                let mut poll_gen = hub.0.lock();
                *poll_gen += 1;
                drop(poll_gen);
                hub.1.notify_all();
            })
        };
        let seen = *hub.0.lock();
        if seen == 0 {
            let mut poll_gen = hub.0.lock();
            // BUG (seeded): the real hub rechecks `*poll_gen != seen`
            // here before parking; dropping the recheck loses any bump
            // that landed since the snapshot.
            let _ = &mut poll_gen;
            hub.1.wait(&mut poll_gen);
        }
        bumper.join();
    })
    .expect_err("some schedule must lose the wakeup");
    assert_eq!(err.kind, FailureKind::Deadlock, "{err}");
    assert!(err.to_string().contains("lost wakeup"), "{err}");
}

/// Event-loop slow consumer: a client that never drains its completion
/// stream is force-disconnected once its backlog passes the configured
/// limit — on every schedule the client observes `Closed` after at most
/// `depth + max_pending + in-flight` responses, and the event loop thread
/// always terminates (no schedule leaves it parked forever).
#[test]
fn event_loop_force_disconnects_slow_consumers_on_every_schedule() {
    let config = Config {
        preemption_bound: Some(1),
        ..Config::default()
    };
    let stats = explore_with("event_loop_slow_consumer", config, || {
        let board = Arc::new(parking_lot::Mutex::new(bf_fpga::Board::new(
            bf_fpga::BoardSpec::de5a_net(),
            bf_model::PcieLink::new(bf_model::PcieGeneration::Gen3, 8),
        )));
        let (manager, event_loop) = bf_devmgr::DeviceManager::new_detached(
            bf_devmgr::DeviceManagerConfig::standalone("fpga-model")
                .with_channel_depth(1)
                .with_max_pending_responses(0),
            bf_model::node_b(),
            board,
            bf_ocl::BitstreamCatalog::new(),
        );
        let looper = thread::spawn(event_loop);

        let endpoint = manager.connect("slow-consumer", PathCosts::local_shm());
        // Three requests against a depth-1 completion queue with a zero
        // parked-response budget: the second undeliverable response trips
        // the force-disconnect.
        let mut sent = 0u64;
        for tag in 1..=3u64 {
            let env = RequestEnvelope {
                tag,
                client: endpoint.client,
                sent_at: bf_model::VirtualTime::ZERO,
                body: Request::GetDeviceInfo,
            };
            match endpoint.channel.send(&env) {
                Ok(()) => sent += 1,
                // Force-close can land while we are still submitting.
                Err(TransportError::Closed) => break,
                Err(other) => panic!("unexpected send failure: {other:?}"),
            }
        }
        // Never drain until the end: now count what actually arrived.
        let mut received = 0u64;
        let closed = loop {
            match endpoint.channel.recv() {
                Ok(_) => received += 1,
                Err(TransportError::Closed) => break true,
                Err(other) => panic!("unexpected recv failure: {other:?}"),
            }
        };
        assert!(closed, "slow consumer must be disconnected");
        assert!(
            received <= sent,
            "received {received} responses for {sent} requests"
        );
        drop(endpoint);
        drop(manager);
        looper.join();
    })
    .expect("no schedule may deadlock or leak the event loop");
    println!(
        "event_loop_slow_consumer: {} schedules explored (preemption bound 1)",
        stats.schedules
    );
    assert!(stats.schedules > 1, "exploration must branch: {stats:?}");
}

/// ShmSegment snapshot aliasing: a snapshot handed out by `read` must keep
/// its bytes even when the region is freed and the space reused for a new
/// allocation by a concurrent thread — on every interleaving.
#[test]
fn shm_snapshots_survive_concurrent_free_and_reuse() {
    let stats = explore("shm_snapshot_vs_reuse", || {
        let shm = ShmSegment::new(64);
        let offset = shm.alloc(8).expect("alloc");
        shm.write(offset, b"original").expect("write");

        let recycler = {
            let shm = shm.clone();
            thread::spawn(move || {
                shm.free(offset).expect("free");
                let reused = shm.alloc(8).expect("realloc");
                shm.write(reused, b"clobber!").expect("rewrite");
                reused
            })
        };
        // Race the snapshot against free/reuse. A successful read shows one
        // of the region's committed states — the original bytes, zeros
        // (alloc clears the region before the rewrite lands), or the new
        // contents — never a partial write. And a snapshot, once taken,
        // never mutates underneath its holder.
        let snapshot = shm.read(offset, 8);
        let reused = recycler.join();
        assert_eq!(reused, offset, "free-then-alloc must reuse the region");
        if let Ok(bytes) = snapshot {
            let committed = |b: &[u8]| b == b"original" || b == [0u8; 8] || b == b"clobber!";
            assert!(
                committed(bytes.as_ref()),
                "snapshot shows a committed value, never a partial write: {:?}",
                bytes.as_ref()
            );
            let captured = bytes.to_vec();
            let again = shm.read(offset, 8).expect("reread");
            assert_eq!(again.as_ref(), b"clobber!");
            // The older snapshot still holds exactly what it captured.
            assert_eq!(bytes.as_ref(), &captured[..]);
        }
    })
    .expect("no schedule may corrupt a snapshot");
    println!(
        "shm_snapshot_vs_reuse: {} schedules explored",
        stats.schedules
    );
    assert!(stats.schedules > 1, "exploration must branch: {stats:?}");
}

/// Payload copy-on-write uniqueness: a payload snapshot read from device
/// memory keeps its bytes when the buffer is mutated in place by another
/// thread — `bytes_mut` must un-share (copy) before writing, on every
/// schedule.
#[test]
fn device_memory_cow_keeps_snapshots_unique() {
    let stats = explore("payload_cow_uniqueness", || {
        let mem = Arc::new(Mutex::new(bf_fpga::DeviceMemory::new(64)));
        let id = {
            let mut m = mem.lock();
            let id = m.alloc(4).expect("alloc");
            m.write(id, 0, &bf_fpga::Payload::from(b"1111".to_vec()))
                .expect("write");
            id
        };
        let snapshot = mem.lock().read(id, 0, 4).expect("read");

        let mutator = {
            let mem = mem.clone();
            thread::spawn(move || {
                let mut m = mem.lock();
                let bytes = m.bytes_mut(id).expect("bytes_mut");
                bytes.copy_from_slice(b"2222");
            })
        };
        // Concurrent reader: must see the old or the new value, never a
        // torn mix (the lock serializes, the model checks the protocol).
        let observed = mem.lock().read(id, 0, 4).expect("read");
        let observed = observed.as_data().expect("materialized");
        assert!(
            observed == b"1111" || observed == b"2222",
            "torn read: {observed:?}"
        );
        mutator.join();
        // CoW uniqueness: the pre-mutation snapshot is untouched, and the
        // buffer now holds the mutation.
        assert_eq!(snapshot.as_data().expect("materialized"), b"1111");
        assert_eq!(
            mem.lock()
                .read(id, 0, 4)
                .expect("read")
                .as_data()
                .expect("materialized"),
            b"2222"
        );
    })
    .expect("no schedule may alias the snapshot");
    println!(
        "payload_cow_uniqueness: {} schedules explored",
        stats.schedules
    );
    assert!(stats.schedules > 1, "exploration must branch: {stats:?}");
}

/// Bounded-transport backpressure: with a depth-1 queue, a producer
/// pushing two frames must park until the consumer drains one; the model
/// proves the park/wake protocol can't deadlock or lose a slot,
/// whichever side runs first.
#[test]
fn bounded_transport_backpressure_never_wedges() {
    let stats = explore("transport_backpressure", || {
        let (client, server) = duplex_with_depth(1);
        let producer = thread::spawn(move || {
            server.send(&resp(1)).expect("send 1");
            // Queue full until the client drains: this send parks.
            server.send(&resp(2)).expect("send 2");
        });
        let first = client.recv().expect("first");
        let second = client.recv().expect("second");
        assert_eq!((first.tag, second.tag), (1, 2), "FIFO preserved");
        producer.join();
    })
    .expect("no schedule may wedge the bounded queue");
    println!(
        "transport_backpressure: {} schedules explored",
        stats.schedules
    );
    assert!(stats.schedules > 1, "exploration must branch: {stats:?}");
}

/// The pop-timeout path: a consumer with a deadline either receives the
/// late frame or times out cleanly — both branches are explored because
/// the virtual-time timeout may fire at any scheduling point.
#[test]
fn transport_recv_timeout_explores_both_branches() {
    let stats = explore("transport_recv_timeout", || {
        let (client, server) = duplex_with_depth(1);
        let producer = thread::spawn(move || {
            server.send(&resp(7)).expect("send");
        });
        match client.recv_timeout(Duration::from_millis(1)) {
            Ok(env) => assert_eq!(env.tag, 7),
            Err(TransportError::Timeout) => {
                // Timed out before the producer ran: the frame must still
                // arrive on a blocking recv.
                assert_eq!(client.recv().expect("recv").tag, 7);
            }
            Err(other) => panic!("unexpected: {other:?}"),
        }
        producer.join();
    })
    .expect("no schedule may lose the frame");
    println!(
        "transport_recv_timeout: {} schedules explored",
        stats.schedules
    );
    assert!(stats.schedules > 1, "exploration must branch: {stats:?}");
}

/// ClientId allocation is a facade atomic: concurrent `connect`-style
/// fetch_adds must hand out distinct ids on every schedule.
#[test]
fn client_id_allocation_is_unique_across_threads() {
    use bf_race::sync::atomic::{AtomicU64, Ordering};
    let stats = explore("client_id_unique", || {
        let next = Arc::new(AtomicU64::new(1));
        let a = {
            let next = next.clone();
            thread::spawn(move || ClientId(next.fetch_add(1, Ordering::Relaxed)))
        };
        let b = ClientId(next.fetch_add(1, Ordering::Relaxed));
        let a = a.join();
        assert_ne!(a, b, "two clients must never share an id");
        assert_eq!(next.load(Ordering::Relaxed), 3);
    })
    .expect("no schedule may duplicate an id");
    println!("client_id_unique: {} schedules explored", stats.schedules);
    assert!(stats.schedules > 1, "exploration must branch: {stats:?}");
}

/// The serverless batcher's mutex/condvar handoff: a producer submits
/// invocations and closes while a consumer blocks on
/// `next_batch_blocking`. On every schedule the consumer must receive
/// every invocation exactly once and then observe end-of-stream — the
/// notify-on-submit / drain-on-close protocol has no schedule that loses
/// an arrival (the classic lost-wakeup shape) or drains one twice.
#[test]
fn batcher_handoff_never_loses_an_invocation() {
    use bf_model::VirtualTime;
    use bf_serverless::{Batcher, Invocation};

    let stats = explore("batcher_handoff", || {
        let batcher = Arc::new(Batcher::new().with_max_batch_size(2));
        let producer = {
            let batcher = batcher.clone();
            thread::spawn(move || {
                for _ in 0..3 {
                    batcher
                        .submit(Invocation::at(VirtualTime::ZERO))
                        .expect("capacity 64 never sheds here");
                }
                batcher.close();
            })
        };
        let mut received = 0usize;
        while let Some(batch) = batcher.next_batch_blocking(Duration::from_millis(1)) {
            assert!(batch.len() <= 2, "oversized batch");
            received += batch.len();
        }
        producer.join();
        assert_eq!(received, 3, "every submission drained exactly once");
        assert!(batcher.drain_now().is_none(), "closed and fully drained");
    })
    .expect("no schedule may lose an invocation in the handoff");
    println!("batcher_handoff: {} schedules explored", stats.schedules);
    assert!(stats.schedules > 1, "exploration must branch: {stats:?}");
}

/// Batcher cut-over during a device-manager replacement: while a producer
/// is still submitting, a controller closes the old batcher and migrates
/// its remainder into the replacement. Depending on the schedule, each
/// submission either lands in the old queue before the close (and is
/// migrated), or observes `Closed` and is resubmitted to the replacement
/// by the producer. On every schedule all invocations are serviced by the
/// replacement exactly once — the close-then-drain protocol has no window
/// that strands an invocation in the dying queue or migrates one twice.
#[test]
fn batcher_cutover_never_loses_or_duplicates_an_invocation() {
    use bf_model::VirtualTime;
    use bf_serverless::{Batcher, Invocation, SubmitError};

    let stats = explore("batcher_cutover", || {
        let old = Arc::new(Batcher::new().with_max_batch_size(2));
        let replacement = Arc::new(Batcher::new().with_max_batch_size(2));
        let producer = {
            let (old, replacement) = (old.clone(), replacement.clone());
            thread::spawn(move || {
                for _ in 0..3 {
                    match old.submit(Invocation::at(VirtualTime::ZERO)) {
                        Ok(_) => {}
                        Err(SubmitError::Closed) => {
                            replacement
                                .submit(Invocation::at(VirtualTime::ZERO))
                                .expect("replacement accepts while cutting over");
                        }
                        Err(other) => panic!("unexpected submit error: {other:?}"),
                    }
                }
            })
        };
        // Cut-over: close first, then migrate. Closing before draining is
        // what makes the protocol sound — after `close` returns, no new
        // submission can enter the old queue, so the drain loop observes
        // the complete remainder.
        old.close();
        while let Some(batch) = old.drain_now() {
            for invocation in batch.invocations() {
                replacement
                    .submit(*invocation)
                    .expect("replacement accepts migrated work");
            }
        }
        producer.join();
        replacement.close();
        let mut received = 0usize;
        while let Some(batch) = replacement.next_batch_blocking(Duration::from_millis(1)) {
            received += batch.len();
        }
        assert_eq!(received, 3, "every invocation crosses the cut-over once");
        assert!(old.drain_now().is_none(), "old queue fully migrated");
    })
    .expect("no schedule may strand or duplicate an invocation at cut-over");
    println!("batcher_cutover: {} schedules explored", stats.schedules);
    assert!(stats.schedules > 1, "exploration must branch: {stats:?}");
}

/// Payload-cache snapshot stability: a zero-copy snapshot handed out by
/// `PayloadCache::get` keeps its exact bytes while a concurrent inserter
/// overflows the host tier and the clock hand evicts the entry — on
/// every interleaving. Eviction may only drop the cache's *own*
/// reference; a live reader must never observe reused or cleared bytes.
#[test]
fn payload_cache_snapshot_survives_concurrent_insert_and_evict() {
    let stats = explore("payload_cache_snapshot_vs_evict", || {
        // Budget fits the original plus one filler: the second filler
        // insert must evict.
        let cache = Arc::new(bf_cache::PayloadCache::new(64));
        let original = bytes::Bytes::from_static(b"original payload bytes!!");
        let digest = bf_cache::content_digest(&original);
        assert!(cache.insert(digest, original.clone()), "admit original");

        let evictor = {
            let cache = cache.clone();
            thread::spawn(move || {
                for i in 0..3u8 {
                    let filler = bytes::Bytes::from(vec![i; 24]);
                    cache.insert(bf_cache::content_digest(&filler), filler);
                }
            })
        };
        // Race the snapshot against the evicting inserts. `get` either
        // misses (the entry was already evicted) or returns a refcounted
        // snapshot that stays byte-stable past any later eviction.
        let snapshot = cache.get(digest);
        evictor.join();
        if let Some(bytes) = snapshot {
            assert_eq!(
                bytes.as_ref(),
                original.as_ref(),
                "snapshot must show the inserted content, never filler"
            );
            // Force the entry out unconditionally: the live snapshot is
            // its own reference and must not change underneath us.
            cache.invalidate_all();
            assert_eq!(bytes.as_ref(), original.as_ref());
        }
        // After the race, a fresh lookup is all-or-nothing: a miss, or
        // the identical content — never a torn or recycled payload.
        if let Some(bytes) = cache.get(digest) {
            assert_eq!(bytes.as_ref(), original.as_ref());
        }
    })
    .expect("no schedule may invalidate a live snapshot reader");
    println!(
        "payload_cache_snapshot_vs_evict: {} schedules explored",
        stats.schedules
    );
    assert!(stats.schedules > 1, "exploration must branch: {stats:?}");
}

/// Federated rebalance vs placement: a shard join (HRW rebalance moving
/// devices and their bindings) racing a concurrent `place_instance` must
/// never double-place the instance, strand it without a binding, or lose
/// a device — on every interleaving. The shard-map lock serializes the
/// two paths; this model proves the serialization is complete in both
/// orders (place-then-rebalance carries the binding to the new owner,
/// rebalance-then-place routes against the post-join membership).
#[test]
fn shard_rebalance_never_double_places_or_strands() {
    use bf_registry::{
        AllocationPolicy, DeviceQuery, PlacementService, ShardedRegistry, StaticDevice,
    };

    let stats = explore("shard_rebalance_vs_place", || {
        let sharded = ShardedRegistry::new(AllocationPolicy::paper(), 2);
        for (i, node) in [bf_model::node_a(), bf_model::node_b(), bf_model::node_c()]
            .into_iter()
            .enumerate()
        {
            sharded.register_device_handle(
                StaticDevice::new(format!("fpga-{i}"), node, Some("sobel")).handle(),
            );
        }
        sharded.register_function("f", DeviceQuery::for_accelerator("sobel"));

        let rebalancer = {
            let sharded = sharded.clone();
            thread::spawn(move || {
                let (joined, _moved) = sharded.add_shard();
                joined
            })
        };
        let allocation = sharded
            .place_instance("inst-0", "f")
            .expect("three devices are registered on every schedule");
        let joined = rebalancer.join();

        // Exactly one binding for the instance, on a device that still
        // exists exactly once in the federation.
        assert_eq!(
            sharded.binding("inst-0").as_deref(),
            Some(allocation.device_id.as_str()),
            "placement must survive the rebalance"
        );
        let ids = sharded.device_ids();
        assert_eq!(ids.len(), 3, "rebalance must not duplicate or drop devices");
        let bound: usize = sharded
            .device_views()
            .iter()
            .flat_map(|v| v.connected.iter())
            .filter(|(instance, _)| instance.as_str() == "inst-0")
            .count();
        assert_eq!(bound, 1, "instance must be connected exactly once");
        assert_eq!(sharded.shard_count(), 3, "the joiner is live");
        assert!(sharded.shard_ids().contains(&joined));

        // The federation index still resolves the instance: release must
        // actually remove the binding wherever it now lives.
        sharded.release_instance("inst-0");
        assert_eq!(sharded.binding("inst-0"), None, "release after rebalance");
    })
    .expect("no schedule may double-place or strand an instance across a rebalance");
    println!(
        "shard_rebalance_vs_place: {} schedules explored",
        stats.schedules
    );
    assert!(stats.schedules > 1, "exploration must branch: {stats:?}");
}
