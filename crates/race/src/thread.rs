//! Facade thread spawn/join. Passthrough builds delegate to
//! `std::thread`; model builds register the child with the scheduler so
//! spawn and join become yield points (and happens-before edges).

#[cfg(feature = "model")]
pub use crate::engine::thread_impl::{spawn, yield_now, JoinHandle};

/// Handle to a spawned facade thread.
#[cfg(not(feature = "model"))]
#[derive(Debug)]
pub struct JoinHandle<T>(std::thread::JoinHandle<T>);

#[cfg(not(feature = "model"))]
impl<T> JoinHandle<T> {
    /// Waits for the thread and returns its result, propagating a panic
    /// from the child onto the joining thread (parking_lot-style: no
    /// poisoned `Result` to thread through callers).
    pub fn join(self) -> T {
        match self.0.join() {
            Ok(value) => value,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
}

/// Spawns a facade thread.
#[cfg(not(feature = "model"))]
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    JoinHandle(std::thread::spawn(f))
}

/// Cooperative yield. A no-op hint in passthrough builds; a real
/// scheduling point in model builds.
#[cfg(not(feature = "model"))]
pub fn yield_now() {
    std::thread::yield_now();
}
