//! The **bf-sync facade**: synchronization primitives for the
//! instrumented crates (`bf-rpc`, `bf-devmgr`, `bf-remote`, `bf-fpga`).
//!
//! Normal builds re-export `parking_lot` and `std::sync::atomic` types
//! unchanged — the facade is zero-cost and type-identical, so downstream
//! code and public APIs are unaffected. Under the `model` feature the
//! same names resolve to instrumented wrappers whose every operation is a
//! scheduler yield point (see the crate docs and `docs/ARCHITECTURE.md`).
//!
//! The instrumented crates re-export this module as `<crate>::sync`; the
//! `bf-lint` `raw_sync` rule keeps direct `std::sync` / `crossbeam`
//! primitive construction out of those crates unless justified.

pub use crate::time::MonoTime;

#[cfg(not(feature = "model"))]
pub use parking_lot::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
};

#[cfg(feature = "model")]
pub use crate::engine::sync_impl::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
};

/// Atomic integer/bool types. Passthrough builds re-export `std`'s;
/// model builds wrap them so loads and stores are yield points and
/// happens-before edges (every atomic op is treated as acquire+release,
/// which over-approximates visibility but never invents false races).
pub mod atomic {
    #[cfg(not(feature = "model"))]
    pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};

    #[cfg(feature = "model")]
    pub use crate::engine::sync_impl::atomic::{
        AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering,
    };
}

#[cfg(feature = "model")]
pub use crate::engine::sync_impl::RaceCell;

/// A shared cell the model checker watches for data races.
///
/// In passthrough builds it is a plain mutex-protected cell (always
/// safe, negligible cost on the cold paths where it is used). In model
/// builds every `get`/`set` is a yield point checked against the vector
/// clocks of all other accesses: two accesses, at least one a write,
/// with no happens-before edge is reported as [`crate::FailureKind::DataRace`].
#[cfg(not(feature = "model"))]
#[derive(Debug, Default)]
pub struct RaceCell<T> {
    // bf-lint: allow(lock_graph): checker-internal cell, never nested with ranked locks
    cell: parking_lot::Mutex<T>,
}

#[cfg(not(feature = "model"))]
impl<T> RaceCell<T> {
    /// Creates a cell holding `value`.
    pub const fn new(value: T) -> Self {
        RaceCell {
            cell: parking_lot::Mutex::new(value),
        }
    }

    /// Reads the current value.
    pub fn get(&self) -> T
    where
        T: Clone,
    {
        self.cell.lock().clone()
    }

    /// Replaces the value.
    pub fn set(&self, value: T) {
        *self.cell.lock() = value;
    }
}
