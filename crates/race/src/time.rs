//! [`MonoTime`] — the facade's monotonic deadline clock.
//!
//! The transport and poller need "now + timeout, has it passed, how long
//! remains" for their bounded waits. Reading the wall clock inside a
//! model execution would make timeout branches depend on host scheduling
//! and break replay determinism, so deadline logic goes through this
//! type: real `Instant` arithmetic in normal builds, virtual
//! per-execution nanoseconds under the `model` feature (time only
//! advances when a timed wait fires, jumping straight to its deadline).

#[cfg(not(feature = "model"))]
use std::time::Duration;

/// An opaque monotonic instant used for deadlines.
#[cfg(not(feature = "model"))]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct MonoTime(std::time::Instant);

#[cfg(not(feature = "model"))]
impl MonoTime {
    /// The current monotonic instant.
    pub fn now() -> Self {
        MonoTime(self::now_instant())
    }

    /// The instant `d` from now — the common deadline constructor.
    pub fn after(d: Duration) -> Self {
        MonoTime(self::now_instant() + d)
    }

    /// Whether the deadline has been reached.
    pub fn has_passed(&self) -> bool {
        self::now_instant() >= self.0
    }

    /// Time left until the deadline (zero once passed).
    pub fn remaining(&self) -> Duration {
        self.0.saturating_duration_since(self::now_instant())
    }
}

#[cfg(not(feature = "model"))]
fn now_instant() -> std::time::Instant {
    // bf-lint: allow(wall_clock): monotonic deadline source for bounded waits; virtualized under the model feature
    std::time::Instant::now()
}

#[cfg(feature = "model")]
pub use crate::engine::time_impl::MonoTime;
