//! The model engine (compiled only with the `model` feature).
//!
//! * [`exec`] — one deterministic execution: real OS threads serialized
//!   so exactly one *model thread* runs at a time, yield points, op
//!   enabledness, vector clocks, deadlock/race detection.
//! * [`explore`] — DFS over schedules with replay prefixes, sleep-set
//!   reduction and a bounded-preemption budget.
//! * [`sync_impl`] / [`thread_impl`] / [`time_impl`] — the instrumented
//!   primitives the facade resolves to under `--features model`.

pub(crate) mod exec;
mod explore;
pub(crate) mod sync_impl;
pub(crate) mod thread_impl;
pub(crate) mod time_impl;
mod vclock;

pub use explore::{explore, explore_with, Config, Failure, FailureKind, Stats};
