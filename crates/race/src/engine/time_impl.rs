//! Virtualized monotonic time for model builds.
//!
//! Inside an execution, "now" is the scheduler's virtual clock (which
//! advances only when a timed wait fires). Outside one — e.g. test
//! harness code before `explore` — it falls back to the real clock.

use std::time::{Duration, Instant};

use super::exec::ctx;

/// A monotonic point in time; virtual inside a model execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonoTime {
    /// Wall-backed (no model execution active when created).
    Real(Instant),
    /// Virtual nanoseconds on the execution's clock.
    Virtual(u64),
}

impl MonoTime {
    /// The current instant.
    pub fn now() -> MonoTime {
        match ctx() {
            Some(c) => MonoTime::Virtual(c.exec.now_ns()),
            None => MonoTime::Real(now_instant()),
        }
    }

    /// The instant `d` from now.
    pub fn after(d: Duration) -> MonoTime {
        match MonoTime::now() {
            MonoTime::Real(i) => MonoTime::Real(i + d),
            MonoTime::Virtual(ns) => MonoTime::Virtual(ns.saturating_add(dur_ns(d))),
        }
    }

    /// Whether this instant is in the past.
    pub fn has_passed(self) -> bool {
        match self {
            MonoTime::Real(i) => now_instant() >= i,
            MonoTime::Virtual(ns) => {
                let now = match ctx() {
                    Some(c) => c.exec.now_ns(),
                    None => ns, // execution over: treat the deadline as due
                };
                now >= ns
            }
        }
    }

    /// Time left until this instant (zero if passed).
    pub fn remaining(self) -> Duration {
        match self {
            MonoTime::Real(i) => i.saturating_duration_since(now_instant()),
            MonoTime::Virtual(ns) => {
                let now = match ctx() {
                    Some(c) => c.exec.now_ns(),
                    None => ns,
                };
                Duration::from_nanos(ns.saturating_sub(now))
            }
        }
    }
}

/// Saturating `Duration` → virtual nanoseconds.
pub(crate) fn dur_ns(d: Duration) -> u64 {
    d.as_nanos().min(u64::MAX as u128) as u64
}

fn now_instant() -> Instant {
    // bf-lint: allow(wall_clock): fallback for MonoTime created outside a model execution
    Instant::now()
}
