//! DFS over schedules with replay prefixes, sleep sets and a
//! bounded-preemption budget.
//!
//! Each iteration runs the closure under a schedule forced to follow the
//! current DFS stack's choices, then free-runs (prefer-previous-thread)
//! to completion. The per-step decision records come back to the
//! explorer, which grafts the free suffix onto the stack and backtracks:
//! the just-tried choice enters the node's *sleep set* (its subtree is
//! covered — any schedule reaching this node may skip it unless an
//! intervening dependent op wakes it), and the next untried,
//! non-sleeping, bound-feasible candidate becomes the new forced choice.
//!
//! Known (documented) incompleteness: sleep sets assume the pruned
//! branch is explored *somewhere*, while the preemption bound can cut
//! that somewhere off. The combination is a bug-finder, not a proof —
//! raise or drop the bound for exhaustiveness.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

use super::exec::{
    panic_message, set_ctx, AbortToken, Ctx, Execution, Op, Outcome, PruneKind, StepRecord, Tid,
};

/// Exploration budget knobs.
#[derive(Debug, Clone)]
pub struct Config {
    /// Maximum context switches away from a still-runnable thread per
    /// schedule (`None` = unbounded, full DFS).
    pub preemption_bound: Option<usize>,
    /// Hard cap on explored schedules.
    pub max_schedules: u64,
    /// Hard cap on yield points in a single schedule.
    pub max_steps: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemption_bound: Some(2),
            max_schedules: 200_000,
            max_steps: 50_000,
        }
    }
}

/// Exploration summary for a completed (failure-free) search.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    /// Complete schedules executed.
    pub schedules: u64,
    /// Schedules cut short by the sleep-set reduction.
    pub pruned_sleep: u64,
    /// Branches skipped because they exceeded the preemption bound.
    pub pruned_preemptions: u64,
    /// Longest schedule seen, in yield points.
    pub max_steps_seen: usize,
}

/// A concurrency failure found by the explorer.
#[derive(Debug, Clone)]
pub struct Failure {
    /// What went wrong.
    pub kind: FailureKind,
    /// Human-readable description with the offending schedule.
    pub message: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.kind, self.message)
    }
}

/// Failure classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// No runnable thread, but unfinished threads remain (covers lock
    /// cycles, full/empty bounded channels, lost wakeups).
    Deadlock,
    /// Conflicting unsynchronized accesses to a `RaceCell`.
    DataRace,
    /// A model thread panicked (failed assertion in the closure).
    Panic,
    /// Replay diverged — the closure is not schedule-deterministic.
    Determinism,
    /// `max_schedules`/`max_steps` exhausted before the space was covered.
    Limit,
}

/// One frontier node of the DFS stack.
struct Node {
    candidates: Vec<(Tid, Op)>,
    sleep: Vec<(Tid, Op)>,
    tried: Vec<Tid>,
    chosen: Tid,
    prev: Option<Tid>,
    preemptions_before: usize,
}

static QUIET_ABORT_HOOK: Once = Once::new();

/// Model threads unwind with [`AbortToken`] when an execution dies; the
/// default panic hook would spam stderr for each. Install a wrapper that
/// stays silent for those payloads only.
fn install_quiet_abort_hook() {
    QUIET_ABORT_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<AbortToken>() {
                return;
            }
            prev(info);
        }));
    });
}

/// Runs `f` under every schedule (up to the default [`Config`] budgets),
/// returning stats on success or the first [`Failure`] found.
pub fn explore<F>(name: &str, f: F) -> Result<Stats, Failure>
where
    F: Fn() + Send + Sync,
{
    explore_with(name, Config::default(), f)
}

/// [`explore`] with explicit budgets.
pub fn explore_with<F>(name: &str, cfg: Config, f: F) -> Result<Stats, Failure>
where
    F: Fn() + Send + Sync,
{
    install_quiet_abort_hook();
    let mut stats = Stats::default();
    let mut stack: Vec<Node> = Vec::new();
    let mut executions: u64 = 0;
    loop {
        executions += 1;
        if executions > cfg.max_schedules {
            return Err(Failure {
                kind: FailureKind::Limit,
                message: format!(
                    "model '{name}': max_schedules={} exhausted ({} complete, {} sleep-pruned, \
                     {} bound-pruned) before the space was covered",
                    cfg.max_schedules,
                    stats.schedules,
                    stats.pruned_sleep,
                    stats.pruned_preemptions
                ),
            });
        }
        let prefix: Vec<Tid> = stack.iter().map(|n| n.chosen).collect();
        let frontier_sleep = stack.last().map(|n| n.sleep.clone()).unwrap_or_default();
        let exec = Execution::new(cfg.preemption_bound, cfg.max_steps, prefix, frontier_sleep);
        set_ctx(Some(Ctx {
            exec: exec.clone(),
            tid: 0,
        }));
        let result = catch_unwind(AssertUnwindSafe(&f));
        match result {
            Ok(()) => exec.finish_thread(0, None),
            Err(payload) if payload.is::<AbortToken>() => exec.finish_thread(0, None),
            Err(payload) => exec.finish_thread(0, Some(panic_message(payload.as_ref()))),
        }
        set_ctx(None);
        let outcome = exec.wait_outcome();
        exec.join_all();
        let records = exec.take_records();
        match outcome {
            Outcome::Failed(failure) => {
                return Err(Failure {
                    kind: failure.kind,
                    message: format!(
                        "model '{name}' ({} schedules explored): {}",
                        stats.schedules + 1,
                        failure.message
                    ),
                });
            }
            Outcome::Done => {
                stats.schedules += 1;
                stats.max_steps_seen = stats.max_steps_seen.max(records.len());
            }
            Outcome::Pruned(PruneKind::Sleep) => stats.pruned_sleep += 1,
            Outcome::Pruned(PruneKind::Preemption) => stats.pruned_preemptions += 1,
        }
        // Graft the free-run suffix onto the DFS stack.
        for r in records.into_iter().skip(stack.len()) {
            let StepRecord {
                candidates,
                sleep,
                chosen,
                prev,
                preemptions_before,
            } = r;
            stack.push(Node {
                candidates,
                sleep,
                tried: vec![chosen],
                chosen,
                prev,
                preemptions_before,
            });
        }
        // Backtrack to the deepest node with an untried, non-sleeping,
        // bound-feasible candidate.
        loop {
            let Some(node) = stack.last_mut() else {
                return Ok(stats);
            };
            // The just-covered choice joins the sleep set: its subtree is
            // fully explored from this node.
            let covered = node.chosen;
            if !node.sleep.iter().any(|&(t, _)| t == covered) {
                if let Some(&(_, op)) = node.candidates.iter().find(|&&(t, _)| t == covered) {
                    node.sleep.push((covered, op));
                }
            }
            let mut next: Option<Tid> = None;
            for &(t, _) in &node.candidates {
                if node.tried.contains(&t) || node.sleep.iter().any(|&(st, _)| st == t) {
                    continue;
                }
                // Would scheduling t here blow the preemption budget?
                let preempts = match node.prev {
                    Some(p) if p != t => node.candidates.iter().any(|&(c, _)| c == p),
                    _ => false,
                };
                if preempts {
                    if let Some(bound) = cfg.preemption_bound {
                        if node.preemptions_before + 1 > bound {
                            node.tried.push(t);
                            stats.pruned_preemptions += 1;
                            continue;
                        }
                    }
                }
                next = Some(t);
                break;
            }
            match next {
                Some(t) => {
                    node.chosen = t;
                    node.tried.push(t);
                    break;
                }
                None => {
                    stack.pop();
                }
            }
        }
    }
}
