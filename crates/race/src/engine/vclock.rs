//! Vector clocks: the happens-before order the race detector consults.

/// A sparse-tail vector clock; index = model thread id.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u64>);

impl VClock {
    /// Advances this clock's own component for thread `t`.
    pub(crate) fn tick(&mut self, t: usize) {
        if self.0.len() <= t {
            self.0.resize(t + 1, 0);
        }
        self.0[t] += 1;
    }

    /// The component for thread `t` (0 if never seen).
    pub(crate) fn get(&self, t: usize) -> u64 {
        self.0.get(t).copied().unwrap_or(0)
    }

    /// Sets the component for thread `t`.
    pub(crate) fn set(&mut self, t: usize, v: u64) {
        if self.0.len() <= t {
            self.0.resize(t + 1, 0);
        }
        self.0[t] = v;
    }

    /// Pointwise maximum: `self ← self ⊔ other`.
    pub(crate) fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// Some thread `t != exclude` whose component here exceeds `other`'s —
    /// i.e. an access by `t` recorded in `self` that does *not*
    /// happen-before the observer whose clock is `other`.
    pub(crate) fn unordered_after(&self, other: &VClock, exclude: usize) -> Option<usize> {
        self.0
            .iter()
            .enumerate()
            .find(|&(t, &v)| t != exclude && v > other.get(t))
            .map(|(t, _)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VClock::default();
        a.tick(0);
        a.tick(0);
        let mut b = VClock::default();
        b.tick(2);
        a.join(&b);
        assert_eq!(a.get(0), 2);
        assert_eq!(a.get(1), 0);
        assert_eq!(a.get(2), 1);
    }

    #[test]
    fn unordered_after_finds_the_racing_thread() {
        let mut writes = VClock::default();
        writes.set(1, 5);
        let mut observer = VClock::default();
        observer.set(1, 4);
        assert_eq!(writes.unordered_after(&observer, 0), Some(1));
        observer.set(1, 5);
        assert_eq!(writes.unordered_after(&observer, 0), None);
    }
}
