//! Model-aware spawn/join/yield.
//!
//! Spawn determinism: the parent allocates the child's model slot (with
//! `Op::Started` already pending) *before* its own `Spawn` yield point,
//! so the scheduler's candidate sets never depend on how fast the OS
//! actually starts the child thread. The child merely installs its model
//! context and waits to be activated.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use super::exec::{ctx, panic_message, set_ctx, AbortToken, Ctx, Execution, Op, Tid};

/// Handle to a spawned thread (model-scheduled inside an execution).
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

enum Inner<T> {
    Real(std::thread::JoinHandle<T>),
    Model {
        exec: Arc<Execution>,
        tid: Tid,
        // bf-lint: allow(lock_graph): scheduler-internal result slot, only
        // touched after the model Join op grants happens-before.
        result: Arc<parking_lot::Mutex<Option<T>>>,
    },
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish, propagating panics.
    pub fn join(self) -> T {
        match self.inner {
            Inner::Real(h) => match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            },
            Inner::Model { exec, tid, result } => {
                let me = ctx().map(|c| c.tid).unwrap_or(0);
                exec.perform(me, Op::Join(tid));
                match result.lock().take() {
                    Some(v) => v,
                    // Joined a finished thread with no value: it aborted or
                    // panicked, and the execution is (or is about to be)
                    // dead — unwind this thread too.
                    None => std::panic::panic_any(AbortToken),
                }
            }
        }
    }
}

/// Spawns a thread; inside a model execution it becomes a model thread
/// whose every facade op is a scheduler yield point.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let Some(parent) = ctx() else {
        return JoinHandle {
            inner: Inner::Real(std::thread::spawn(f)),
        };
    };
    let exec = parent.exec.clone();
    let tid = exec.alloc_thread();
    // The child is schedulable (as Embryo→Runnable via Spawn) from this
    // yield point on, regardless of OS thread startup latency.
    exec.perform(parent.tid, Op::Spawn(tid));
    let result: Arc<parking_lot::Mutex<Option<T>>> = Arc::new(parking_lot::Mutex::new(None));
    let slot = result.clone();
    let child_exec = exec.clone();
    let handle = std::thread::spawn(move || {
        set_ctx(Some(Ctx {
            exec: child_exec.clone(),
            tid,
        }));
        let out = catch_unwind(AssertUnwindSafe(|| {
            // First yield point: wait to be scheduled (applies `Started`).
            child_exec.start_thread(tid);
            f()
        }));
        set_ctx(None);
        match out {
            Ok(v) => {
                *slot.lock() = Some(v);
                child_exec.finish_thread(tid, None);
            }
            Err(payload) if payload.is::<AbortToken>() => {
                child_exec.finish_thread(tid, None);
            }
            Err(payload) => {
                child_exec.finish_thread(tid, Some(panic_message(payload.as_ref())));
            }
        }
    });
    exec.add_os_handle(handle);
    JoinHandle {
        inner: Inner::Model { exec, tid, result },
    }
}

/// A pure yield point: lets the scheduler switch without any visible op.
pub fn yield_now() {
    if let Some(c) = ctx() {
        c.exec.perform(c.tid, Op::Yield);
    } else {
        std::thread::yield_now();
    }
}
