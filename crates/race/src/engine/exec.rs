//! One deterministic execution.
//!
//! Model threads are real OS threads, but the scheduler serializes them:
//! at every *yield point* (each facade op) the running thread publishes
//! its intended op, the scheduler picks the next runner among all
//! *enabled* pending ops, and everyone else parks on the scheduler's
//! condvar. An op's visible effect is applied when its thread is
//! activated, so the interleaving of visible effects is exactly the
//! chosen schedule — replaying the same choice sequence replays the same
//! execution bit-for-bit.
//!
//! Enabledness is what turns blocking into *scheduling*: a `LockAcquire`
//! is only a candidate while the lock is free, a `Join` only once the
//! target finished, a condvar waiter only after a notify moved it back to
//! runnable (or, for timed waits, whenever its mutex is free — the
//! timeout branch is always explorable). "No candidates but unfinished
//! threads" is therefore a *global* wait-for condition covering lock
//! cycles, full/empty bounded channels (built on facade `Mutex` +
//! `Condvar`) and never-woken parked threads alike.

use std::cell::RefCell;
use std::panic::Location;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex, MutexGuard};

use super::explore::{Failure, FailureKind};
use super::vclock::VClock;

/// Model thread id (0 = the thread that called `explore`).
pub(crate) type Tid = usize;
/// Per-execution resource id (locks, condvars, atomics, race cells).
pub(crate) type Rid = usize;

/// Next execution epoch. Facade objects tag their lazily assigned
/// resource id with the epoch that assigned it, so objects surviving
/// across executions (or created outside one) re-register cleanly.
static NEXT_EPOCH: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// The calling thread's model identity, if it is part of an execution.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) exec: Arc<Execution>,
    pub(crate) tid: Tid,
}

/// The current thread's model context (None = passthrough).
pub(crate) fn ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

/// Installs or clears the current thread's model context.
pub(crate) fn set_ctx(new: Option<Ctx>) {
    CTX.with(|c| *c.borrow_mut() = new);
}

/// Panic payload used to unwind model threads out of a dead execution
/// (failed or pruned). Caught by the spawn wrapper and `explore`.
pub(crate) struct AbortToken;

fn abort_unwind() -> ! {
    std::panic::panic_any(AbortToken);
}

/// A visible operation at a yield point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Op {
    /// A spawned thread's first yield point (pending from birth, so the
    /// candidate set never depends on OS thread startup timing).
    Started,
    LockAcquire(Rid),
    LockRelease(Rid),
    RwAcquire {
        rid: Rid,
        write: bool,
    },
    RwRelease(Rid),
    /// Atomically release `mutex` and park on `cv`.
    CvWaitRelease {
        cv: Rid,
        mutex: Rid,
        timeout_ns: Option<u64>,
    },
    /// A timed waiter's timeout firing (synthesized candidate: the waiter
    /// has no pending op while parked).
    CvTimedFire {
        cv: Rid,
        mutex: Rid,
    },
    CvNotify {
        cv: Rid,
        all: bool,
    },
    Atomic {
        rid: Rid,
        write: bool,
    },
    Cell {
        rid: Rid,
        write: bool,
        loc: &'static Location<'static>,
    },
    Spawn(Tid),
    Join(Tid),
    Finish,
    Yield,
}

/// Whether two ops do NOT commute (executing one can change the other's
/// behavior or enabledness). Used to filter sleep sets; conservative
/// over-approximation only costs pruning power, never soundness.
pub(crate) fn dependent(a: Op, b: Op) -> bool {
    use Op::*;
    let lifecycle = |o: Op| matches!(o, Started | Spawn(_) | Join(_) | Finish);
    if lifecycle(a) || lifecycle(b) {
        return true;
    }
    if matches!(a, Yield) || matches!(b, Yield) {
        return false;
    }
    let rids = |o: Op| -> [Option<Rid>; 2] {
        match o {
            LockAcquire(r) | LockRelease(r) | RwRelease(r) => [Some(r), None],
            RwAcquire { rid, .. } | Atomic { rid, .. } | Cell { rid, .. } => [Some(rid), None],
            CvNotify { cv, .. } => [Some(cv), None],
            CvWaitRelease { cv, mutex, .. } | CvTimedFire { cv, mutex } => [Some(cv), Some(mutex)],
            Started | Spawn(_) | Join(_) | Finish | Yield => [None, None],
        }
    };
    let ra = rids(a);
    let rb = rids(b);
    let overlap = ra
        .iter()
        .flatten()
        .any(|x| rb.iter().flatten().any(|y| x == y));
    if !overlap {
        return false;
    }
    // Two pure reads commute even on the same resource.
    if let (Cell { write: false, .. }, Cell { write: false, .. }) = (a, b) {
        return false;
    }
    if let (RwAcquire { write: false, .. }, RwAcquire { write: false, .. }) = (a, b) {
        return false;
    }
    true
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Slot allocated by `spawn`; becomes runnable when the parent's
    /// `Spawn` op executes.
    Embryo,
    Runnable,
    /// Parked on `cv`; will reacquire `mutex` on wake. `deadline` is the
    /// virtual-ns timeout for timed waits.
    CvWait {
        cv: Rid,
        mutex: Rid,
        deadline: Option<u64>,
    },
    Finished,
}

struct ThreadState {
    status: Status,
    pending: Option<Op>,
    clock: VClock,
}

/// What kind of resource a facade object registers as.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ResourceKind {
    Lock,
    Cv,
    Atomic,
    Cell,
}

enum Resource {
    Lock {
        writer: Option<Tid>,
        readers: Vec<Tid>,
        clock: VClock,
    },
    Cv {
        waiters: Vec<Tid>,
        clock: VClock,
    },
    Atomic {
        clock: VClock,
    },
    Cell {
        writes: VClock,
        reads: VClock,
        last_write: Option<(Tid, &'static Location<'static>)>,
        last_read: Option<(Tid, &'static Location<'static>)>,
    },
}

impl ResourceKind {
    fn fresh(self) -> Resource {
        match self {
            ResourceKind::Lock => Resource::Lock {
                writer: None,
                readers: Vec::new(),
                clock: VClock::default(),
            },
            ResourceKind::Cv => Resource::Cv {
                waiters: Vec::new(),
                clock: VClock::default(),
            },
            ResourceKind::Atomic => Resource::Atomic {
                clock: VClock::default(),
            },
            ResourceKind::Cell => Resource::Cell {
                writes: VClock::default(),
                reads: VClock::default(),
                last_write: None,
                last_read: None,
            },
        }
    }
}

/// Why an execution stopped.
#[derive(Debug, Clone)]
pub(crate) enum Outcome {
    /// Every thread finished; a complete schedule was observed.
    Done,
    /// A concurrency failure — exploration stops, this is the verdict.
    Failed(Failure),
    /// Search-strategy cutoff, not a program property.
    Pruned(PruneKind),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PruneKind {
    /// Every candidate was in the sleep set (subtree already covered).
    Sleep,
    /// Continuing required exceeding the preemption budget.
    Preemption,
}

/// One scheduling decision, exported to the explorer.
#[derive(Debug, Clone)]
pub(crate) struct StepRecord {
    pub(crate) candidates: Vec<(Tid, Op)>,
    pub(crate) sleep: Vec<(Tid, Op)>,
    pub(crate) chosen: Tid,
    pub(crate) prev: Option<Tid>,
    pub(crate) preemptions_before: usize,
}

struct ExecInner {
    threads: Vec<ThreadState>,
    resources: Vec<Resource>,
    active: Tid,
    prev: Option<Tid>,
    step: usize,
    preemptions: usize,
    now_ns: u64,
    cur_sleep: Vec<(Tid, Op)>,
    records: Vec<StepRecord>,
    outcome: Option<Outcome>,
}

/// One run of the closure under one (partially forced) schedule.
pub(crate) struct Execution {
    epoch: u64,
    preemption_bound: Option<usize>,
    max_steps: usize,
    prefix: Vec<Tid>,
    frontier_sleep: Vec<(Tid, Op)>,
    /// The scheduler's own lock: rank `race_sched`, innermost in
    /// `bf_devmgr::lock_order::HIERARCHY` — facade ops acquire it while
    /// the caller may hold any ranked application lock.
    race_sched: Mutex<ExecInner>,
    wakeups: Condvar,
    /// OS handles of model threads, joined at teardown.
    // bf-lint: allow(lock_graph): checker-internal registry, only touched outside `race_sched` and never nested with application locks
    os_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Execution {
    pub(crate) fn new(
        preemption_bound: Option<usize>,
        max_steps: usize,
        prefix: Vec<Tid>,
        frontier_sleep: Vec<(Tid, Op)>,
    ) -> Arc<Execution> {
        let epoch = NEXT_EPOCH.fetch_add(1, Ordering::Relaxed);
        let mut clock = VClock::default();
        clock.tick(0);
        Arc::new(Execution {
            epoch,
            preemption_bound,
            max_steps,
            prefix,
            frontier_sleep,
            race_sched: Mutex::new(ExecInner {
                threads: vec![ThreadState {
                    status: Status::Runnable,
                    pending: None,
                    clock,
                }],
                resources: Vec::new(),
                active: 0,
                prev: None,
                step: 0,
                preemptions: 0,
                now_ns: 0,
                cur_sleep: Vec::new(),
                records: Vec::new(),
                outcome: None,
            }),
            wakeups: Condvar::new(),
            os_handles: Mutex::new(Vec::new()),
        })
    }

    /// Resolves a facade object's resource id for this execution, lazily
    /// allocating a slot on first touch. `tag` packs `(epoch, rid)`.
    /// Only the active thread registers, so allocation order — and thus
    /// resource ids — is schedule-deterministic.
    pub(crate) fn register(&self, tag: &AtomicU64, kind: ResourceKind) -> Rid {
        let ep32 = (self.epoch & 0xffff_ffff) as u32;
        let packed = tag.load(Ordering::Relaxed);
        if (packed >> 32) as u32 == ep32 {
            return (packed & 0xffff_ffff) as usize;
        }
        let mut g = self.race_sched.lock();
        let rid = g.resources.len();
        g.resources.push(kind.fresh());
        tag.store((u64::from(ep32) << 32) | rid as u64, Ordering::Relaxed);
        rid
    }

    /// The execution's virtual clock, in nanoseconds. Advances only when
    /// a timed wait fires (jumping to its deadline).
    pub(crate) fn now_ns(&self) -> u64 {
        self.race_sched.lock().now_ns
    }

    /// A standard yield point: publish `op`, let the scheduler hand the
    /// turn to the next enabled thread, park until chosen, apply the op,
    /// continue as the active thread. Unwinds (`AbortToken`) if the
    /// execution dies while waiting.
    pub(crate) fn perform(&self, me: Tid, op: Op) {
        if std::thread::panicking() {
            // Facade ops reached from user destructors while this thread is
            // already unwinding (an `AbortToken` teardown or a recorded
            // panic) must not raise a second panic — that would abort the
            // whole process mid-cleanup.
            self.perform_quiet(me, op);
            return;
        }
        let mut g = self.race_sched.lock();
        if g.outcome.is_some() {
            drop(g);
            abort_unwind();
        }
        g.threads[me].pending = Some(op);
        self.schedule_next(&mut g);
        self.wakeups.notify_all();
        g = self.wait_active(g, me);
        self.apply(&mut g, me);
        if g.outcome.is_some() {
            drop(g);
            abort_unwind();
        }
    }

    /// Like [`Execution::perform`] but panic-free: on a dead execution it
    /// degrades to a no-op. Used from guard `Drop` impls, which may run
    /// while already unwinding.
    pub(crate) fn perform_quiet(&self, me: Tid, op: Op) {
        let mut g = self.race_sched.lock();
        if g.outcome.is_some() {
            return;
        }
        g.threads[me].pending = Some(op);
        self.schedule_next(&mut g);
        self.wakeups.notify_all();
        loop {
            if g.outcome.is_some() {
                g.threads[me].pending = None;
                return;
            }
            if g.active == me {
                break;
            }
            self.wakeups.wait(&mut g);
        }
        self.apply(&mut g, me);
    }

    /// Second half of a condvar wait: the caller already performed
    /// `CvWaitRelease` (so it is active, parked in model terms, and has
    /// dropped the real guard). Hands the turn off, sleeps until a
    /// notify re-arms it with the lock reacquire or the scheduler fires
    /// its timeout. Returns whether the wait timed out.
    pub(crate) fn park_after_cv_release(&self, me: Tid, cv: Rid, mutex: Rid) -> bool {
        let mut g = self.race_sched.lock();
        if g.outcome.is_some() {
            drop(g);
            abort_unwind();
        }
        self.schedule_next(&mut g);
        self.wakeups.notify_all();
        g = self.wait_active(g, me);
        let timed_out = match g.threads[me].status {
            Status::CvWait { deadline, .. } => {
                // Timeout fire: leave the wait queue, jump virtual time to
                // the deadline, reacquire the mutex (free by enabledness).
                if let Resource::Cv { waiters, .. } = &mut g.resources[cv] {
                    waiters.retain(|&w| w != me);
                }
                if let Some(dl) = deadline {
                    g.now_ns = g.now_ns.max(dl);
                }
                g.threads[me].status = Status::Runnable;
                g.threads[me].clock.tick(me);
                let rc = if let Resource::Lock { writer, clock, .. } = &mut g.resources[mutex] {
                    *writer = Some(me);
                    clock.clone()
                } else {
                    VClock::default()
                };
                g.threads[me].clock.join(&rc);
                true
            }
            _ => {
                // Notified: the notifier re-armed us with LockAcquire.
                self.apply(&mut g, me);
                false
            }
        };
        if g.outcome.is_some() {
            drop(g);
            abort_unwind();
        }
        timed_out
    }

    /// A freshly spawned model thread's entry point: wait until the
    /// scheduler picks our pre-published `Started` op, apply it, then
    /// run user code as the active thread. Keeping `Started` pending
    /// from allocation (not from OS thread startup) makes candidate
    /// sets independent of how fast the OS actually starts the thread.
    pub(crate) fn start_thread(&self, me: Tid) {
        let mut g = self.race_sched.lock();
        if g.outcome.is_some() {
            drop(g);
            abort_unwind();
        }
        g = self.wait_active(g, me);
        self.apply(&mut g, me);
        if g.outcome.is_some() {
            drop(g);
            abort_unwind();
        }
    }

    /// Allocates a model-thread slot (status `Embryo`, `Started`
    /// pre-pended) for a `spawn` in flight.
    pub(crate) fn alloc_thread(&self) -> Tid {
        let mut g = self.race_sched.lock();
        let tid = g.threads.len();
        g.threads.push(ThreadState {
            status: Status::Embryo,
            pending: Some(Op::Started),
            clock: VClock::default(),
        });
        tid
    }

    /// Registers a model thread's OS handle for teardown.
    pub(crate) fn add_os_handle(&self, handle: std::thread::JoinHandle<()>) {
        self.os_handles.lock().push(handle);
    }

    /// Finish protocol for a model thread (including thread 0).
    /// `panic_msg` carries a user panic to report as a failure.
    pub(crate) fn finish_thread(&self, me: Tid, panic_msg: Option<String>) {
        let mut g = self.race_sched.lock();
        if g.outcome.is_some() {
            g.threads[me].status = Status::Finished;
            self.wakeups.notify_all();
            return;
        }
        if let Some(msg) = panic_msg {
            g.threads[me].status = Status::Finished;
            self.fail(&mut g, FailureKind::Panic, msg);
            return;
        }
        g.threads[me].pending = Some(Op::Finish);
        self.schedule_next(&mut g);
        self.wakeups.notify_all();
        loop {
            if g.outcome.is_some() {
                g.threads[me].status = Status::Finished;
                self.wakeups.notify_all();
                return;
            }
            if g.active == me {
                break;
            }
            self.wakeups.wait(&mut g);
        }
        self.apply(&mut g, me);
        self.schedule_next(&mut g);
        self.wakeups.notify_all();
    }

    /// Blocks until the execution reaches an outcome.
    pub(crate) fn wait_outcome(&self) -> Outcome {
        let mut g = self.race_sched.lock();
        loop {
            if let Some(o) = g.outcome.clone() {
                return o;
            }
            self.wakeups.wait(&mut g);
        }
    }

    /// Joins every model thread's OS handle (they all exit once the
    /// outcome is set and broadcast).
    pub(crate) fn join_all(&self) {
        let handles = std::mem::take(&mut *self.os_handles.lock());
        for h in handles {
            let _ = h.join();
        }
    }

    /// Takes the per-step decision records for the explorer.
    pub(crate) fn take_records(&self) -> Vec<StepRecord> {
        std::mem::take(&mut self.race_sched.lock().records)
    }

    fn wait_active<'a>(
        &'a self,
        mut g: MutexGuard<'a, ExecInner>,
        me: Tid,
    ) -> MutexGuard<'a, ExecInner> {
        loop {
            if g.outcome.is_some() {
                drop(g);
                abort_unwind();
            }
            if g.active == me {
                return g;
            }
            self.wakeups.wait(&mut g);
        }
    }

    /// The scheduler: enumerate enabled (thread, op) candidates, detect
    /// termination/deadlock, pick the next runner (replaying the forced
    /// prefix, then preferring the previous thread, charging a preemption
    /// for switching away from a still-enabled one), maintain the sleep
    /// set, and record the decision.
    fn schedule_next(&self, g: &mut ExecInner) {
        if g.outcome.is_some() {
            return;
        }
        if g.step >= self.max_steps {
            self.fail(
                g,
                FailureKind::Limit,
                format!("schedule exceeded max_steps={}", self.max_steps),
            );
            return;
        }
        let mut cands: Vec<(Tid, Op)> = Vec::new();
        for (t, th) in g.threads.iter().enumerate() {
            match th.status {
                Status::Runnable => {
                    if let Some(op) = th.pending {
                        if enabled(g, op) {
                            cands.push((t, op));
                        }
                    }
                }
                Status::CvWait {
                    cv,
                    mutex,
                    deadline: Some(_),
                } if lock_free(g, mutex) => {
                    cands.push((t, Op::CvTimedFire { cv, mutex }));
                }
                _ => {}
            }
        }
        if cands.is_empty() {
            let stuck: Vec<Tid> = g
                .threads
                .iter()
                .enumerate()
                .filter(|(_, th)| th.status != Status::Finished)
                .map(|(t, _)| t)
                .collect();
            if stuck.is_empty() {
                g.outcome = Some(Outcome::Done);
                self.wakeups.notify_all();
                return;
            }
            let msg = describe_deadlock(g, &stuck);
            self.fail(g, FailureKind::Deadlock, msg);
            return;
        }
        let step = g.step;
        let chosen: Tid;
        if step < self.prefix.len() {
            chosen = self.prefix[step];
            if !cands.iter().any(|&(t, _)| t == chosen) {
                self.fail(
                    g,
                    FailureKind::Determinism,
                    format!(
                        "replay diverged at step {step}: thread {chosen} not schedulable \
                         (candidates: {cands:?}); model closures must be deterministic \
                         given the schedule"
                    ),
                );
                return;
            }
        } else {
            let eligible: Vec<Tid> = cands
                .iter()
                .map(|&(t, _)| t)
                .filter(|t| !g.cur_sleep.iter().any(|&(st, _)| st == *t))
                .collect();
            if eligible.is_empty() {
                g.outcome = Some(Outcome::Pruned(PruneKind::Sleep));
                self.wakeups.notify_all();
                return;
            }
            chosen = match g.prev {
                Some(p) if eligible.contains(&p) => p,
                prev => {
                    let c = eligible[0];
                    let preempts = prev.is_some_and(|p| cands.iter().any(|&(t, _)| t == p));
                    if preempts {
                        if let Some(bound) = self.preemption_bound {
                            if g.preemptions + 1 > bound {
                                g.outcome = Some(Outcome::Pruned(PruneKind::Preemption));
                                self.wakeups.notify_all();
                                return;
                            }
                        }
                    }
                    c
                }
            };
        }
        let chosen_op = cands
            .iter()
            .find(|&&(t, _)| t == chosen)
            .map(|&(_, op)| op)
            .unwrap_or(Op::Yield);
        // Entering free territory: install the explorer's accumulated
        // sleep set at the frontier so the fresh subtree inherits it.
        if step + 1 == self.prefix.len() {
            g.cur_sleep = self.frontier_sleep.clone();
        }
        let preempted = match g.prev {
            Some(p) if p != chosen => cands.iter().any(|&(t, _)| t == p),
            _ => false,
        };
        g.records.push(StepRecord {
            candidates: cands,
            sleep: g.cur_sleep.clone(),
            chosen,
            prev: g.prev,
            preemptions_before: g.preemptions,
        });
        if preempted {
            g.preemptions += 1;
        }
        g.cur_sleep
            .retain(|&(t, sop)| t != chosen && !dependent(sop, chosen_op));
        g.prev = Some(chosen);
        g.active = chosen;
        g.step += 1;
    }

    /// Applies the chosen thread's pending op: resource state transition
    /// plus the happens-before (vector clock) edges it induces.
    fn apply(&self, g: &mut ExecInner, me: Tid) {
        let Some(op) = g.threads[me].pending.take() else {
            return;
        };
        g.threads[me].clock.tick(me);
        match op {
            Op::Started | Op::Yield | Op::CvTimedFire { .. } => {}
            Op::LockAcquire(rid) | Op::RwAcquire { rid, write: true } => {
                let rc = if let Resource::Lock { writer, clock, .. } = &mut g.resources[rid] {
                    *writer = Some(me);
                    clock.clone()
                } else {
                    VClock::default()
                };
                g.threads[me].clock.join(&rc);
            }
            Op::RwAcquire { rid, write: false } => {
                let rc = if let Resource::Lock { readers, clock, .. } = &mut g.resources[rid] {
                    readers.push(me);
                    clock.clone()
                } else {
                    VClock::default()
                };
                g.threads[me].clock.join(&rc);
            }
            Op::LockRelease(rid) | Op::RwRelease(rid) => {
                let mine = g.threads[me].clock.clone();
                if let Resource::Lock {
                    writer,
                    readers,
                    clock,
                } = &mut g.resources[rid]
                {
                    if *writer == Some(me) {
                        *writer = None;
                    }
                    readers.retain(|&r| r != me);
                    clock.join(&mine);
                }
            }
            Op::CvWaitRelease {
                cv,
                mutex,
                timeout_ns,
            } => {
                let mine = g.threads[me].clock.clone();
                if let Resource::Lock { writer, clock, .. } = &mut g.resources[mutex] {
                    *writer = None;
                    clock.join(&mine);
                }
                if let Resource::Cv { waiters, .. } = &mut g.resources[cv] {
                    waiters.push(me);
                }
                let deadline = timeout_ns.map(|t| g.now_ns.saturating_add(t));
                g.threads[me].status = Status::CvWait {
                    cv,
                    mutex,
                    deadline,
                };
            }
            Op::CvNotify { cv, all } => {
                let mine = g.threads[me].clock.clone();
                let (woken, cvclock) = if let Resource::Cv { waiters, clock } = &mut g.resources[cv]
                {
                    clock.join(&mine);
                    let woken = if all {
                        std::mem::take(waiters)
                    } else if waiters.is_empty() {
                        Vec::new()
                    } else {
                        vec![waiters.remove(0)]
                    };
                    (woken, clock.clone())
                } else {
                    (Vec::new(), VClock::default())
                };
                for w in woken {
                    let th = &mut g.threads[w];
                    if let Status::CvWait { mutex, .. } = th.status {
                        th.status = Status::Runnable;
                        th.pending = Some(Op::LockAcquire(mutex));
                        th.clock.join(&cvclock);
                    }
                }
            }
            Op::Atomic { rid, .. } => {
                // Treated as acquire+release: clocks join both ways, so
                // atomics publish happens-before (over-approximate
                // visibility; never invents a false race).
                let mine = g.threads[me].clock.clone();
                let rc = if let Resource::Atomic { clock } = &mut g.resources[rid] {
                    clock.join(&mine);
                    clock.clone()
                } else {
                    VClock::default()
                };
                g.threads[me].clock.join(&rc);
            }
            Op::Cell { rid, write, loc } => {
                let mine = g.threads[me].clock.clone();
                let mut race: Option<(Tid, Option<&'static Location<'static>>, &str)> = None;
                if let Resource::Cell {
                    writes,
                    reads,
                    last_write,
                    last_read,
                } = &mut g.resources[rid]
                {
                    if let Some(t) = writes.unordered_after(&mine, me) {
                        race = Some((t, last_write.map(|(_, l)| l), "write"));
                    } else if write {
                        if let Some(t) = reads.unordered_after(&mine, me) {
                            race = Some((t, last_read.map(|(_, l)| l), "read"));
                        }
                    }
                    if write {
                        writes.set(me, mine.get(me));
                        *last_write = Some((me, loc));
                    } else {
                        reads.set(me, mine.get(me));
                        *last_read = Some((me, loc));
                    }
                }
                if let Some((other, other_loc, other_kind)) = race {
                    let what = if write { "write" } else { "read" };
                    let at = other_loc
                        .map(|l| format!("{l}"))
                        .unwrap_or_else(|| "<unknown>".to_string());
                    self.fail(
                        g,
                        FailureKind::DataRace,
                        format!(
                            "data race on RaceCell r{rid}: {what} by t{me} at {loc} is \
                             unordered with {other_kind} by t{other} at {at}"
                        ),
                    );
                }
            }
            Op::Spawn(child) => {
                let pc = g.threads[me].clock.clone();
                let th = &mut g.threads[child];
                th.status = Status::Runnable;
                th.clock.join(&pc);
                th.clock.tick(child);
            }
            Op::Join(t) => {
                let tc = g.threads[t].clock.clone();
                g.threads[me].clock.join(&tc);
            }
            Op::Finish => {
                g.threads[me].status = Status::Finished;
            }
        }
    }

    fn fail(&self, g: &mut ExecInner, kind: FailureKind, message: String) {
        let schedule: Vec<Tid> = g.records.iter().map(|r| r.chosen).collect();
        g.outcome = Some(Outcome::Failed(Failure {
            kind,
            message: format!("{message}\n  schedule: {schedule:?}"),
        }));
        self.wakeups.notify_all();
    }
}

fn lock_free(g: &ExecInner, rid: Rid) -> bool {
    matches!(
        &g.resources[rid],
        Resource::Lock { writer: None, readers, .. } if readers.is_empty()
    )
}

fn enabled(g: &ExecInner, op: Op) -> bool {
    match op {
        Op::LockAcquire(rid) | Op::RwAcquire { rid, write: true } => lock_free(g, rid),
        Op::RwAcquire { rid, write: false } => {
            matches!(&g.resources[rid], Resource::Lock { writer: None, .. })
        }
        Op::Join(t) => matches!(g.threads[t].status, Status::Finished),
        _ => true,
    }
}

/// Names every stuck thread and what it waits for — the global wait-for
/// condition rendered for humans.
fn describe_deadlock(g: &ExecInner, stuck: &[Tid]) -> String {
    let mut lines = vec!["deadlock: no schedulable thread, but these have not finished:".into()];
    let mut lost_wakeup = false;
    for &t in stuck {
        let th = &g.threads[t];
        let desc = match th.status {
            Status::CvWait {
                cv,
                mutex,
                deadline,
            } => {
                if deadline.is_none() {
                    lost_wakeup = true;
                }
                format!(
                    "t{t}: parked on condvar r{cv} (reacquires lock r{mutex}, {})",
                    if deadline.is_some() {
                        "timed"
                    } else {
                        "untimed — no notify can reach it: lost wakeup"
                    }
                )
            }
            Status::Embryo => format!("t{t}: spawned but its Spawn op never executed"),
            _ => match th.pending {
                Some(Op::LockAcquire(r))
                | Some(Op::RwAcquire {
                    rid: r,
                    write: true,
                }) => {
                    let holder = match &g.resources[r] {
                        Resource::Lock {
                            writer: Some(w), ..
                        } => format!("held by t{w}"),
                        Resource::Lock { readers, .. } if !readers.is_empty() => {
                            format!("read-held by {readers:?}")
                        }
                        _ => "free".to_string(),
                    };
                    format!("t{t}: blocked acquiring lock r{r} ({holder})")
                }
                Some(Op::Join(j)) => format!("t{t}: joining t{j}, which never finishes"),
                Some(op) => format!("t{t}: blocked at {op:?}"),
                None => format!("t{t}: runnable with no pending op (still executing?)"),
            },
        };
        lines.push(format!("  {desc}"));
    }
    if lost_wakeup {
        lines.push("  (an untimed parked thread with no reachable notify is a lost wakeup)".into());
    }
    lines.join("\n")
}

/// Extracts a readable message from a caught panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked (non-string payload)".to_string()
    }
}
