//! Instrumented primitives the facade resolves to under `--features model`.
//!
//! Every type still *really* synchronizes (the data lives behind a real
//! `parking_lot` lock), but each visible operation first passes through a
//! scheduler yield point, so the model controls the interleaving and the
//! real lock is only ever taken when the model says it is free.
//!
//! Safety of the real-lock acquire: the model `LockAcquire` is applied
//! while this thread is the *only* active one, and the previous owner's
//! real guard was dropped before its next yield point — so when the model
//! grants the lock, the real lock is free and `data.lock()` cannot block.

use std::sync::atomic::AtomicU64;
use std::time::Duration;

use super::exec::{ctx, Ctx, Op, ResourceKind, Rid};

/// Mutex with scheduler yield points on lock/unlock.
pub struct Mutex<T: ?Sized> {
    tag: AtomicU64,
    // bf-lint: allow(lock_graph): model-internal backing storage; ordering is enforced on the facade rid, not this lock
    data: parking_lot::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates the mutex (registration with an execution is lazy).
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            tag: AtomicU64::new(0),
            data: parking_lot::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock (a model yield point).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match ctx() {
            Some(c) => {
                let rid = c.exec.register(&self.tag, ResourceKind::Lock);
                c.exec.perform(c.tid, Op::LockAcquire(rid));
                let real = self.data.lock();
                MutexGuard {
                    lock: self,
                    real: Some(real),
                    model: Some((c, rid)),
                }
            }
            None => MutexGuard {
                lock: self,
                real: Some(self.data.lock()),
                model: None,
            },
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Mutex {{ .. }}")
    }
}

/// Guard for [`Mutex`]; release is a (quiet) yield point on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    // bf-lint: allow(lock_graph): back-reference to the facade mutex so a
    // condvar wait can retake it; not a lock declaration of its own.
    lock: &'a Mutex<T>,
    real: Option<parking_lot::MutexGuard<'a, T>>,
    model: Option<(Ctx, Rid)>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // bf-lint: allow(panic): guard invariant — real is Some except mid-condvar-wait
        self.real.as_ref().expect("guard used while parked")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // bf-lint: allow(panic): guard invariant — real is Some except mid-condvar-wait
        self.real.as_mut().expect("guard used while parked")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Drop the real guard FIRST, then tell the model: by the time any
        // other model thread is granted this lock, the real lock is free.
        self.real = None;
        if let Some((c, rid)) = self.model.take() {
            c.exec.perform_quiet(c.tid, Op::LockRelease(rid));
        }
    }
}

/// Condvar whose wait/notify are model yield points; `wait_for` may fire
/// its timeout at any scheduling point (deterministic "spurious" timing).
pub struct Condvar {
    tag: AtomicU64,
    real: parking_lot::Condvar,
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

impl Condvar {
    /// Creates the condvar (registration with an execution is lazy).
    pub const fn new() -> Condvar {
        Condvar {
            tag: AtomicU64::new(0),
            real: parking_lot::Condvar::new(),
        }
    }

    /// Releases the guard's mutex and parks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self.wait_inner(guard, None);
    }

    /// Like [`Condvar::wait`] with a timeout; under the model the timeout
    /// may fire at any scheduling point with virtual time jumping to the
    /// deadline.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        WaitTimeoutResult(self.wait_inner(guard, Some(timeout)))
    }

    fn wait_inner<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Option<Duration>) -> bool {
        match &guard.model {
            Some((c, mutex_rid)) => {
                let c = c.clone();
                let mutex_rid = *mutex_rid;
                let cv = c.exec.register(&self.tag, ResourceKind::Cv);
                c.exec.perform(
                    c.tid,
                    Op::CvWaitRelease {
                        cv,
                        mutex: mutex_rid,
                        timeout_ns: timeout.map(super::time_impl::dur_ns),
                    },
                );
                // The model released the mutex; drop the real guard to match.
                guard.real = None;
                let timed_out = c.exec.park_after_cv_release(c.tid, cv, mutex_rid);
                // The model has reacquired the mutex for us; retake the real
                // lock (free, by the real-lock safety argument above).
                guard.real = Some(guard.lock.data.lock());
                timed_out
            }
            None => {
                // No model context: fall through to the real condvar.
                match timeout {
                    Some(t) => {
                        let g = guard
                            .real
                            .as_mut()
                            // bf-lint: allow(panic): guard invariant — real is Some outside a model wait
                            .expect("guard used while parked");
                        self.real.wait_for(g, t).timed_out()
                    }
                    None => {
                        let g = guard
                            .real
                            .as_mut()
                            // bf-lint: allow(panic): guard invariant — real is Some outside a model wait
                            .expect("guard used while parked");
                        self.real.wait(g);
                        false
                    }
                }
            }
        }
    }

    /// Wakes one waiter (a model yield point).
    pub fn notify_one(&self) -> bool {
        match ctx() {
            Some(c) => {
                let cv = c.exec.register(&self.tag, ResourceKind::Cv);
                c.exec.perform(c.tid, Op::CvNotify { cv, all: false });
                false
            }
            None => self.real.notify_one(),
        }
    }

    /// Wakes all waiters (a model yield point).
    pub fn notify_all(&self) -> usize {
        match ctx() {
            Some(c) => {
                let cv = c.exec.register(&self.tag, ResourceKind::Cv);
                c.exec.perform(c.tid, Op::CvNotify { cv, all: true });
                0
            }
            None => self.real.notify_all(),
        }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Whether a timed wait returned because the timeout elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait timed out rather than being notified.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// RwLock with scheduler yield points; read-read acquisitions commute.
pub struct RwLock<T: ?Sized> {
    tag: AtomicU64,
    // bf-lint: allow(lock_graph): model-internal backing storage; ordering is enforced on the facade rid, not this lock
    data: parking_lot::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates the lock (registration with an execution is lazy).
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            tag: AtomicU64::new(0),
            data: parking_lot::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard (a model yield point).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let model = match ctx() {
            Some(c) => {
                let rid = c.exec.register(&self.tag, ResourceKind::Lock);
                c.exec.perform(c.tid, Op::RwAcquire { rid, write: false });
                Some((c, rid))
            }
            None => None,
        };
        RwLockReadGuard {
            real: Some(self.data.read()),
            model,
        }
    }

    /// Acquires the exclusive write guard (a model yield point).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let model = match ctx() {
            Some(c) => {
                let rid = c.exec.register(&self.tag, ResourceKind::Lock);
                c.exec.perform(c.tid, Op::RwAcquire { rid, write: true });
                Some((c, rid))
            }
            None => None,
        };
        RwLockWriteGuard {
            real: Some(self.data.write()),
            model,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RwLock {{ .. }}")
    }
}

macro_rules! rw_guard {
    ($name:ident, $real:ident) => {
        /// RwLock guard; release is a (quiet) yield point on drop.
        pub struct $name<'a, T: ?Sized> {
            real: Option<parking_lot::$real<'a, T>>,
            model: Option<(Ctx, Rid)>,
        }

        impl<T: ?Sized> std::ops::Deref for $name<'_, T> {
            type Target = T;
            fn deref(&self) -> &T {
                // bf-lint: allow(panic): guard invariant — real is Some while the guard lives
                self.real.as_ref().expect("rw guard missing real lock")
            }
        }

        impl<T: ?Sized> Drop for $name<'_, T> {
            fn drop(&mut self) {
                self.real = None;
                if let Some((c, rid)) = self.model.take() {
                    c.exec.perform_quiet(c.tid, Op::RwRelease(rid));
                }
            }
        }
    };
}

rw_guard!(RwLockReadGuard, RwLockReadGuard);
rw_guard!(RwLockWriteGuard, RwLockWriteGuard);

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // bf-lint: allow(panic): guard invariant — real is Some while the guard lives
        self.real.as_mut().expect("rw guard missing real lock")
    }
}

/// Instrumented atomics: every access is a yield point and an
/// acquire+release happens-before edge (over-approximate visibility —
/// the checker never invents a race from an atomic).
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use std::sync::atomic::AtomicU64 as Tag;

    use crate::engine::exec::{ctx, Op, ResourceKind};

    macro_rules! model_atomic {
        ($name:ident, $inner:ty, $prim:ty $(, $fetch:ident)*) => {
            /// Model-instrumented atomic.
            pub struct $name {
                tag: Tag,
                v: $inner,
            }

            impl $name {
                /// Creates the atomic (registration is lazy).
                pub const fn new(v: $prim) -> $name {
                    $name {
                        tag: Tag::new(0),
                        v: <$inner>::new(v),
                    }
                }

                fn touch(&self, write: bool) {
                    if let Some(c) = ctx() {
                        let rid = c.exec.register(&self.tag, ResourceKind::Atomic);
                        c.exec.perform(c.tid, Op::Atomic { rid, write });
                    }
                }

                /// Atomic load (yield point).
                pub fn load(&self, o: Ordering) -> $prim {
                    self.touch(false);
                    self.v.load(o)
                }

                /// Atomic store (yield point).
                pub fn store(&self, val: $prim, o: Ordering) {
                    self.touch(true);
                    self.v.store(val, o);
                }

                /// Atomic swap (yield point).
                pub fn swap(&self, val: $prim, o: Ordering) -> $prim {
                    self.touch(true);
                    self.v.swap(val, o)
                }

                $(
                    /// Atomic read-modify-write (yield point).
                    pub fn $fetch(&self, val: $prim, o: Ordering) -> $prim {
                        self.touch(true);
                        self.v.$fetch(val, o)
                    }
                )*
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(Default::default())
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    write!(f, concat!(stringify!($name), "(..)"))
                }
            }
        };
    }

    model_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
    model_atomic!(
        AtomicU32,
        std::sync::atomic::AtomicU32,
        u32,
        fetch_add,
        fetch_sub
    );
    model_atomic!(
        AtomicU64,
        std::sync::atomic::AtomicU64,
        u64,
        fetch_add,
        fetch_sub
    );
    model_atomic!(
        AtomicUsize,
        std::sync::atomic::AtomicUsize,
        usize,
        fetch_add,
        fetch_sub
    );
}

/// A checked cell: accesses are *not* treated as synchronizing, so two
/// unordered accesses (one a write) are reported as a data race. Use it
/// to assert "this state is protected by the locks around it".
pub struct RaceCell<T> {
    tag: AtomicU64,
    // bf-lint: allow(lock_graph): checker-internal cell, never nested with ranked locks
    cell: parking_lot::Mutex<T>,
}

impl<T> RaceCell<T> {
    /// Creates the cell (registration with an execution is lazy).
    pub const fn new(value: T) -> RaceCell<T> {
        RaceCell {
            tag: AtomicU64::new(0),
            cell: parking_lot::Mutex::new(value),
        }
    }

    /// Reads the value; flags a race with any unordered write.
    #[track_caller]
    pub fn get(&self) -> T
    where
        T: Clone,
    {
        let loc = std::panic::Location::caller();
        if let Some(c) = ctx() {
            let rid = c.exec.register(&self.tag, ResourceKind::Cell);
            c.exec.perform(
                c.tid,
                Op::Cell {
                    rid,
                    write: false,
                    loc,
                },
            );
        }
        self.cell.lock().clone()
    }

    /// Writes the value; flags a race with any unordered access.
    #[track_caller]
    pub fn set(&self, value: T) {
        let loc = std::panic::Location::caller();
        if let Some(c) = ctx() {
            let rid = c.exec.register(&self.tag, ResourceKind::Cell);
            c.exec.perform(
                c.tid,
                Op::Cell {
                    rid,
                    write: true,
                    loc,
                },
            );
        }
        *self.cell.lock() = value;
    }
}
