#![forbid(unsafe_code)]

//! # bf-race — deterministic schedule exploration for the concurrent cores
//!
//! The bounded transport ([`bf_rpc`]'s frame queues and `Poller`), the
//! single-threaded device-manager event loop, the shared remote reactor
//! and the refcounted `ShmSegment`/`Payload` path are the system's hottest
//! concurrent machinery. Stress tests only sample a handful of
//! interleavings of that machinery; this crate *enumerates* them.
//!
//! It has two halves:
//!
//! * [`sync`] — the **bf-sync facade**: drop-in `Mutex` / `RwLock` /
//!   `Condvar` / atomics / [`sync::RaceCell`] plus a monotonic clock
//!   ([`sync::MonoTime`]) and [`thread`] spawn/join wrappers. In normal
//!   builds every type is a zero-cost re-export of `parking_lot` / `std`,
//!   so the instrumented crates (`bf-rpc`, `bf-devmgr`, `bf-remote`,
//!   `bf-fpga`) pay nothing. Under the `model` feature each
//!   acquire/release/park/wake/load/store becomes a *yield point* owned by
//!   the scheduler.
//!
//! * `engine` (model builds only) — a loom-style deterministic scheduler
//!   plus a DFS explorer with a DPOR-lite sleep-set reduction and a
//!   bounded-preemption budget. [`explore`] runs a closure under every
//!   schedule (up to the budget) and reports:
//!   - **data races**: conflicting [`sync::RaceCell`] accesses with no
//!     happens-before edge (vector clocks over lock/unlock, notify/wait,
//!     atomics, spawn/join);
//!   - **deadlocks**: a global wait-for cycle across mutexes *and* the
//!     full/empty bounded frame channels (which are built on the facade's
//!     `Mutex` + `Condvar`, so channel waits are ordinary parked threads);
//!   - **lost wakeups**: a parked thread that no schedule ever wakes shows
//!     up as a deadlock on that schedule, with the parked thread named.
//!
//! Timeouts are modelled: `Condvar::wait_for` may *fire* at any scheduling
//! point (virtual time jumps to the deadline), so `FLUSH_RETRY`-style
//! retry loops explore both the woken and the timed-out branch without
//! wall-clock flakiness.
//!
//! See `docs/ARCHITECTURE.md` §"bf-race" for the yield-point model,
//! preemption-bound semantics and a guide to writing model tests.

pub mod sync;
pub mod thread;
mod time;

#[cfg(feature = "model")]
mod engine;

#[cfg(feature = "model")]
pub use engine::{explore, explore_with, Config, Failure, FailureKind, Stats};

/// Exploration budget knobs. In non-model builds this is inert: the
/// closure runs once on real primitives.
#[cfg(not(feature = "model"))]
#[derive(Debug, Clone)]
pub struct Config {
    /// Maximum context switches away from a still-runnable thread per
    /// schedule (`None` = unbounded, full DFS).
    pub preemption_bound: Option<usize>,
    /// Hard cap on explored schedules.
    pub max_schedules: u64,
    /// Hard cap on yield points in a single schedule.
    pub max_steps: usize,
}

#[cfg(not(feature = "model"))]
impl Default for Config {
    fn default() -> Self {
        Config {
            preemption_bound: Some(2),
            max_schedules: 200_000,
            max_steps: 50_000,
        }
    }
}

/// Exploration summary. In non-model builds `schedules` is always 1.
#[cfg(not(feature = "model"))]
#[derive(Debug, Clone, Default)]
pub struct Stats {
    /// Complete schedules executed.
    pub schedules: u64,
    /// Schedules cut short by the sleep-set reduction.
    pub pruned_sleep: u64,
    /// Branches skipped because they exceeded the preemption bound.
    pub pruned_preemptions: u64,
    /// Longest schedule seen, in yield points.
    pub max_steps_seen: usize,
}

/// A concurrency failure found by the explorer. Unconstructible in
/// non-model builds (the closure just runs once).
#[cfg(not(feature = "model"))]
#[derive(Debug, Clone)]
pub struct Failure {
    /// What went wrong.
    pub kind: FailureKind,
    /// Human-readable description with the offending schedule.
    pub message: String,
}

/// Failure classification mirrored from the model engine.
#[cfg(not(feature = "model"))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// No runnable thread, but unfinished threads remain.
    Deadlock,
    /// Conflicting unsynchronized accesses to a [`sync::RaceCell`].
    DataRace,
    /// A model thread panicked (failed assertion in the closure).
    Panic,
    /// Replay diverged — the closure is not schedule-deterministic.
    Determinism,
    /// `max_schedules`/`max_steps` exhausted before the space was covered.
    Limit,
}

/// Runs `f` under the model scheduler, exploring interleavings with the
/// default [`Config`]. Without the `model` feature it simply runs `f`
/// once on real primitives and reports one schedule.
#[cfg(not(feature = "model"))]
pub fn explore<F>(name: &str, f: F) -> Result<Stats, Failure>
where
    F: Fn() + Send + Sync,
{
    explore_with(name, Config::default(), f)
}

/// [`explore`] with explicit budgets. Non-model stub: runs `f` once.
#[cfg(not(feature = "model"))]
pub fn explore_with<F>(_name: &str, _cfg: Config, f: F) -> Result<Stats, Failure>
where
    F: Fn() + Send + Sync,
{
    f();
    Ok(Stats {
        schedules: 1,
        ..Stats::default()
    })
}
