//! The device handle the registry manages: a narrow trait over whatever
//! actually fronts the board.
//!
//! The concrete [`DeviceManager`] spawns an event-loop thread and owns a
//! live transport — exactly right for production, far too heavy for a
//! 1000-device DES ladder or a bf-race model schedule. The registry
//! therefore stores devices as [`RegistryDevice`] trait objects: the
//! manager implements it, and simulation/model harnesses register
//! lightweight stand-ins through
//! [`Registry::register_device_handle`](crate::Registry::register_device_handle).

use std::sync::Arc;

use bf_devmgr::DeviceManager;
use bf_model::NodeSpec;

/// What the allocator needs to know about a board right now.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BoardState {
    /// The bitstream currently configured on the fabric, if any.
    pub configured: Option<String>,
    /// Bitstreams staged warm in the board's reconfiguration cache.
    pub warm: Vec<String>,
}

/// A device as seen by the Accelerators Registry.
///
/// Implementations must be cheap to clone behind an `Arc` and safe to
/// call from multiple threads; the registry never holds its own lock
/// while calling [`program`](Self::program) or [`scrape`](Self::scrape).
pub trait RegistryDevice: Send + Sync {
    /// Stable device identifier (the allocation key).
    fn device_id(&self) -> &str;

    /// The node hosting the device.
    fn node(&self) -> &NodeSpec;

    /// Snapshot of the board's configured bitstream and warm cache.
    fn board_state(&self) -> BoardState;

    /// Programs `bitstream` onto the board.
    ///
    /// # Errors
    ///
    /// Returns the backend's message when the bitstream cannot be
    /// configured (e.g. missing from the catalog).
    fn program(&self, bitstream: &str) -> Result<(), String>;

    /// Prometheus text exposition for the Metrics Gatherer.
    fn scrape(&self) -> String;
}

impl RegistryDevice for DeviceManager {
    fn device_id(&self) -> &str {
        DeviceManager::device_id(self)
    }

    fn node(&self) -> &NodeSpec {
        DeviceManager::node(self)
    }

    fn board_state(&self) -> BoardState {
        let board = self.board().lock();
        BoardState {
            configured: board.bitstream_id().map(str::to_string),
            warm: board.warm_bitstreams().to_vec(),
        }
    }

    fn program(&self, bitstream: &str) -> Result<(), String> {
        DeviceManager::program(self, bitstream)
    }

    fn scrape(&self) -> String {
        DeviceManager::scrape(self)
    }
}

/// A fixed-topology device handle for tests and harnesses that don't
/// need a live manager: reports a constant board state and accepts any
/// program request by updating it.
pub struct StaticDevice {
    id: String,
    node: NodeSpec,
    // Ranked as `board` in the lock hierarchy: it stands in for the FPGA
    // board behind a manager and is only taken below the registry lock.
    board: bf_race::sync::Mutex<BoardState>,
}

impl StaticDevice {
    /// A device on `node`, optionally pre-configured with `bitstream`.
    pub fn new(id: impl Into<String>, node: NodeSpec, bitstream: Option<&str>) -> Self {
        StaticDevice {
            id: id.into(),
            node,
            board: bf_race::sync::Mutex::new(BoardState {
                configured: bitstream.map(str::to_string),
                warm: Vec::new(),
            }),
        }
    }

    /// The handle boxed for registration.
    pub fn handle(self) -> Arc<dyn RegistryDevice> {
        Arc::new(self)
    }
}

impl RegistryDevice for StaticDevice {
    fn device_id(&self) -> &str {
        &self.id
    }

    fn node(&self) -> &NodeSpec {
        &self.node
    }

    fn board_state(&self) -> BoardState {
        self.board.lock().clone()
    }

    fn program(&self, bitstream: &str) -> Result<(), String> {
        self.board.lock().configured = Some(bitstream.to_string());
        Ok(())
    }

    fn scrape(&self) -> String {
        String::new()
    }
}
