#![forbid(unsafe_code)]

//! # bf-registry — the BlastFunction Accelerators Registry
//!
//! The master component of the system (paper §III-C):
//!
//! * the **Devices Service** and **Functions Service** register boards and
//!   serverless functions;
//! * the **Metrics Gatherer** scrapes each Device Manager's
//!   Prometheus-format metrics and feeds FPGA time utilization into
//!   allocation;
//! * the **online allocation algorithm** (Algorithm 1 — [`allocate`])
//!   filters devices by compatibility and metrics, orders them by the
//!   SLA-chosen metric priority and accelerator compatibility, and falls
//!   back to reconfiguration when the required accelerator is missing but
//!   the displaced workloads can be redistributed;
//! * **reconfiguration + migration**: tenants are moved with Kubernetes'
//!   create-before-delete semantics before the board is reprogrammed.
//!
//! ```
//! use bf_registry::{AllocationPolicy, DeviceQuery, Registry};
//!
//! let registry = Registry::new(AllocationPolicy::paper());
//! registry.register_function("sobel-1", DeviceQuery::for_accelerator("spector-sobel"));
//! assert!(registry.function("sobel-1").is_some());
//! ```

mod allocation;
mod device;
mod gatherer;
mod query;
mod registry;
mod service;
mod shard;

pub use allocation::{
    allocate, AllocateError, Allocation, AllocationPolicy, DeviceView, MetricFilter, MetricKey,
};
pub use device::{BoardState, RegistryDevice, StaticDevice};
pub use gatherer::{gauge_for_device, parse_scrape, ScrapeSample};
pub use query::DeviceQuery;
pub use registry::{
    ContentionStats, FunctionRecord, Registry, RegistryError, ENV_DEVICE_MANAGER, SHM_VOLUME_PREFIX,
};
pub use service::{
    attach_placement, reconfig_validator, ContentionReport, PlacementOutcomes, PlacementService,
    ShardLoadSummary,
};
pub use shard::{hrw_owner, FederatedAllocator, ShardedRegistry};

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use bf_cluster::{Cluster, InstanceTemplate};
    use bf_devmgr::{DeviceManager, DeviceManagerConfig, ReconfigPolicy};
    use bf_fpga::{Bitstream, Board, BoardSpec};
    use bf_model::{node_a, node_b, node_c, paper_cluster, NodeSpec};
    use bf_ocl::BitstreamCatalog;
    use parking_lot::Mutex;

    use super::*;

    fn catalog() -> BitstreamCatalog {
        let mut cat = BitstreamCatalog::new();
        cat.register(Arc::new(Bitstream::new("sobel", vec![])));
        cat.register(Arc::new(Bitstream::new("mm", vec![])));
        cat
    }

    fn manager(id: &str, node: NodeSpec) -> DeviceManager {
        let board = Arc::new(Mutex::new(Board::new(BoardSpec::de5a_net(), *node.pcie())));
        DeviceManager::new(
            DeviceManagerConfig::standalone(id).with_policy(ReconfigPolicy::Deny),
            node,
            board,
            catalog(),
        )
    }

    fn registry_with_three_devices() -> Registry {
        let registry = Registry::new(AllocationPolicy::paper());
        registry.register_device(manager("fpga-a", node_a()));
        registry.register_device(manager("fpga-b", node_b()));
        registry.register_device(manager("fpga-c", node_c()));
        registry
    }

    #[test]
    fn placement_balances_and_programs_blank_boards() {
        let registry = registry_with_three_devices();
        for i in 1..=5 {
            registry.register_function(format!("sobel-{i}"), DeviceQuery::for_accelerator("sobel"));
        }
        let mut nodes = Vec::new();
        for i in 1..=5 {
            let placement = registry
                .place_instance(&format!("inst-{i}"), &format!("sobel-{i}"))
                .expect("placement");
            nodes.push(placement.node.as_str().to_string());
        }
        // Table II's distribution: two on B, two on A, one on C.
        let count = |n: &str| nodes.iter().filter(|x| x.as_str() == n).count();
        assert_eq!(count("B"), 2, "placement was {nodes:?}");
        assert_eq!(count("A"), 2, "placement was {nodes:?}");
        assert_eq!(count("C"), 1, "placement was {nodes:?}");
        // Blank boards were programmed with the sobel bitstream on demand.
        for id in registry.device_ids() {
            let mgr = registry.manager(&id).expect("manager");
            assert_eq!(mgr.bitstream_id().as_deref(), Some("sobel"));
        }
    }

    #[test]
    fn unknown_function_is_rejected() {
        let registry = registry_with_three_devices();
        assert!(matches!(
            registry.place_instance("inst-1", "ghost"),
            Err(RegistryError::UnknownFunction(_))
        ));
    }

    #[test]
    fn gather_metrics_updates_views() {
        let registry = registry_with_three_devices();
        registry.gather_metrics();
        let views = registry.device_views();
        assert_eq!(views.len(), 3);
        assert!(views.iter().all(|v| v.utilization == 0.0), "idle boards");
    }

    #[test]
    fn gatherer_extracts_op_latency_from_the_histogram() {
        use bf_rpc::{DataRef, PathCosts, Request, RequestEnvelope, Response};

        let registry = registry_with_three_devices();
        let manager = registry.manager("fpga-b").expect("manager");
        manager.program("sobel").expect("program");
        // Drive one write through the manager so the histogram has a sample.
        let endpoint = manager.connect("latency-probe", PathCosts::local_grpc());
        let ctx_req = |tag, body| RequestEnvelope {
            tag,
            client: endpoint.client,
            sent_at: bf_model::VirtualTime::ZERO,
            body,
        };
        endpoint
            .channel
            .send(&ctx_req(1, Request::CreateContext))
            .expect("send");
        let ctx = loop {
            let resp = endpoint
                .channel
                .recv_timeout(std::time::Duration::from_secs(5))
                .expect("resp");
            if resp.tag == 1 {
                if let Response::Handle { id } = resp.body {
                    break id;
                }
            }
        };
        endpoint
            .channel
            .send(&ctx_req(
                2,
                Request::CreateBuffer {
                    context: ctx,
                    len: 1 << 20,
                },
            ))
            .expect("send");
        let buf = loop {
            let resp = endpoint
                .channel
                .recv_timeout(std::time::Duration::from_secs(5))
                .expect("resp");
            if resp.tag == 2 {
                if let Response::Handle { id } = resp.body {
                    break id;
                }
            }
        };
        endpoint
            .channel
            .send(&ctx_req(3, Request::CreateQueue { context: ctx }))
            .expect("send");
        let queue = loop {
            let resp = endpoint
                .channel
                .recv_timeout(std::time::Duration::from_secs(5))
                .expect("resp");
            if resp.tag == 3 {
                if let Response::Handle { id } = resp.body {
                    break id;
                }
            }
        };
        endpoint
            .channel
            .send(&ctx_req(
                4,
                Request::EnqueueWrite {
                    queue,
                    buffer: buf,
                    offset: 0,
                    data: DataRef::Synthetic(1 << 20),
                },
            ))
            .expect("send");
        endpoint
            .channel
            .send(&ctx_req(5, Request::Finish { queue }))
            .expect("send");
        loop {
            let resp = endpoint
                .channel
                .recv_timeout(std::time::Duration::from_secs(5))
                .expect("resp");
            if resp.tag == 5 && matches!(resp.body, Response::Completed { .. }) {
                break;
            }
        }
        registry.gather_metrics();
        let view = registry
            .device_views()
            .into_iter()
            .find(|v| v.id == "fpga-b")
            .expect("fpga-b view");
        assert!(
            view.mean_op_latency_ms > 0.0,
            "mean op latency should be gathered, got {}",
            view.mean_op_latency_ms
        );
    }

    #[test]
    fn validator_approves_only_bound_instances() {
        let registry = registry_with_three_devices();
        registry.register_function("sobel-1", DeviceQuery::for_accelerator("sobel"));
        let placement = registry.place_instance("inst-1", "sobel-1").expect("place");
        let validator = registry.reconfig_validator();
        let ok = bf_devmgr::ReconfigRequest {
            client_name: "inst-1".to_string(),
            bitstream: "mm".to_string(),
            device_id: placement.device_id.clone(),
        };
        assert!(validator(&ok));
        let spoofed = bf_devmgr::ReconfigRequest {
            client_name: "someone-else".to_string(),
            bitstream: "mm".to_string(),
            device_id: placement.device_id,
        };
        assert!(!validator(&spoofed));
    }

    #[test]
    fn cluster_admission_patches_instances() {
        let cluster = Cluster::new(paper_cluster());
        let registry = registry_with_three_devices();
        registry.attach_cluster(&cluster);
        registry.register_function("sobel-1", DeviceQuery::for_accelerator("sobel"));
        let inst = cluster
            .create_instance(InstanceTemplate::new("sobel-1"))
            .expect("create");
        let device = inst.env.get(ENV_DEVICE_MANAGER).expect("device injected");
        assert!(device.starts_with("fpga-"));
        assert!(inst
            .volumes
            .iter()
            .any(|v| v.starts_with(SHM_VOLUME_PREFIX)));
        let bound = registry.binding(&inst.id.to_string()).expect("bound");
        assert_eq!(&bound, device);
        // Forced co-location with the device's node:
        let mgr = registry.manager(device).expect("manager");
        assert_eq!(inst.node.as_ref(), Some(mgr.node().id()));
    }

    #[test]
    fn deletion_releases_the_binding() {
        let cluster = Cluster::new(paper_cluster());
        let registry = registry_with_three_devices();
        registry.attach_cluster(&cluster);
        registry.register_function("sobel-1", DeviceQuery::for_accelerator("sobel"));
        let inst = cluster
            .create_instance(InstanceTemplate::new("sobel-1"))
            .expect("create");
        let name = inst.id.to_string();
        assert!(registry.binding(&name).is_some());
        cluster.delete_instance(inst.id).expect("delete");
        for _ in 0..100 {
            if registry.binding(&name).is_none() {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        panic!("binding not released after deletion");
    }

    #[test]
    fn reconfiguration_migrates_tenants_before_programming() {
        let cluster = Cluster::new(paper_cluster());
        let registry = Registry::new(AllocationPolicy::paper());
        // Two devices so the displaced mm tenant has somewhere to go.
        registry.register_device(manager("fpga-b", node_b()));
        registry.register_device(manager("fpga-c", node_c()));
        registry.attach_cluster(&cluster);
        registry.register_function("mm-1", DeviceQuery::for_accelerator("mm"));

        let inst = cluster
            .create_instance(InstanceTemplate::new("mm-1"))
            .expect("create mm");
        let mm_device = registry.binding(&inst.id.to_string()).expect("bound");

        registry
            .reconfigure_device(&mm_device, "sobel")
            .expect("reconfigure");
        let mgr = registry.manager(&mm_device).expect("manager");
        assert_eq!(mgr.bitstream_id().as_deref(), Some("sobel"));

        // The mm tenant survived as a replacement pod bound elsewhere.
        let instances = cluster.instances();
        assert_eq!(instances.len(), 1);
        let replacement = &instances[0];
        assert_ne!(
            replacement.id, inst.id,
            "create-before-delete produced a new pod"
        );
        let new_device = registry
            .binding(&replacement.id.to_string())
            .expect("rebound");
        assert_ne!(
            new_device, mm_device,
            "the tenant moved off the reconfigured board"
        );
    }

    #[test]
    fn device_failure_migrates_tenants_to_survivors() {
        let cluster = Cluster::new(paper_cluster());
        let registry = registry_with_three_devices();
        registry.attach_cluster(&cluster);
        for i in 1..=3 {
            registry.register_function(format!("sobel-{i}"), DeviceQuery::for_accelerator("sobel"));
            cluster
                .create_instance(InstanceTemplate::new(format!("sobel-{i}")))
                .expect("create");
        }
        // Pick the device of sobel-1's pod and fail it.
        let victim_pod = cluster.instances()[0].clone();
        let failed_device = registry.binding(&victim_pod.id.to_string()).expect("bound");
        let migrated = registry
            .handle_device_failure(&failed_device)
            .expect("failure handled");
        assert_eq!(migrated, vec![victim_pod.id.to_string()]);
        // The device is gone from the service…
        assert!(registry.manager(&failed_device).is_none());
        assert_eq!(registry.device_ids().len(), 2);
        // …and the tenant survived on another device.
        let replacement = cluster
            .instances()
            .into_iter()
            .find(|i| i.function == victim_pod.function)
            .expect("replacement pod exists");
        assert_ne!(replacement.id, victim_pod.id, "create-before-delete");
        let new_device = registry
            .binding(&replacement.id.to_string())
            .expect("rebound");
        assert_ne!(new_device, failed_device);
        // Failing an unknown device errors.
        assert!(matches!(
            registry.handle_device_failure("fpga-ghost"),
            Err(RegistryError::UnknownDevice(_))
        ));
    }

    #[test]
    fn scale_out_registers_new_devices_at_runtime() {
        // The paper's future work: nodes autoscaling. The Devices Service
        // already supports it — a board registered mid-run immediately
        // participates in allocation (and, being empty, wins the next
        // placement under the connected-functions ordering).
        let cluster = Cluster::new(paper_cluster());
        let registry = Registry::new(AllocationPolicy::paper());
        registry.register_device(manager("fpga-b", node_b()));
        registry.attach_cluster(&cluster);
        for i in 1..=2 {
            registry.register_function(format!("sobel-{i}"), DeviceQuery::for_accelerator("sobel"));
        }
        let first = cluster
            .create_instance(InstanceTemplate::new("sobel-1"))
            .expect("create");
        assert_eq!(first.env[ENV_DEVICE_MANAGER], "fpga-b");

        // A new node joins the cluster with a fresh board.
        registry.register_device(manager("fpga-c", node_c()));
        let second = cluster
            .create_instance(InstanceTemplate::new("sobel-2"))
            .expect("create");
        assert_eq!(
            second.env[ENV_DEVICE_MANAGER], "fpga-c",
            "the empty newcomer wins the balanced ordering"
        );
        assert_eq!(second.node, Some(bf_model::NodeId::new("C")));
    }

    #[test]
    fn admission_failure_propagates_to_create() {
        let cluster = Cluster::new(paper_cluster());
        let registry = Registry::new(AllocationPolicy::paper());
        registry.attach_cluster(&cluster); // no devices registered
        registry.register_function("sobel-1", DeviceQuery::for_accelerator("sobel"));
        let err = cluster
            .create_instance(InstanceTemplate::new("sobel-1"))
            .expect_err("no devices");
        assert!(matches!(err, bf_cluster::ClusterError::AdmissionDenied(_)));
    }
}
