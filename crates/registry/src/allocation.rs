//! The online devices-allocation algorithm (paper Algorithm 1).

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use bf_model::NodeId;

use crate::query::DeviceQuery;

/// A metric the allocator can filter/order by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKey {
    /// FPGA time utilization (busy fraction).
    Utilization,
    /// Number of connected function instances.
    ConnectedFunctions,
    /// Mean device-side operation latency (ms) gathered from the manager's
    /// histogram — the "latencies" choice the paper lists for SLA-driven
    /// ordering.
    OpLatency,
}

/// A filter: drop devices whose metric exceeds `max` (e.g. "filtering out
/// highly utilized devices").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricFilter {
    /// The filtered metric.
    pub key: MetricKey,
    /// Inclusive upper bound.
    pub max: f64,
}

/// The allocator's configuration: metric priority (chosen "depending on
/// the system and applications SLA"), filters, and a deterministic node
/// tie-break order.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocationPolicy {
    /// Sort keys, most significant first.
    pub metrics_order: Vec<MetricKey>,
    /// Filters applied before ordering.
    pub metrics_filters: Vec<MetricFilter>,
    /// Tie-break priority between otherwise-equal devices (the order the
    /// operator listed the nodes in).
    pub node_priority: Vec<NodeId>,
}

impl AllocationPolicy {
    /// The paper's evaluation policy: balance connected functions first,
    /// then utilization; refuse devices already above 95% utilization;
    /// prefer the worker nodes (B, C) before the slower master (A).
    pub fn paper() -> Self {
        AllocationPolicy {
            metrics_order: vec![MetricKey::ConnectedFunctions, MetricKey::Utilization],
            metrics_filters: vec![MetricFilter {
                key: MetricKey::Utilization,
                max: 0.95,
            }],
            node_priority: vec![NodeId::new("B"), NodeId::new("A"), NodeId::new("C")],
        }
    }
}

impl Default for AllocationPolicy {
    fn default() -> Self {
        Self::paper()
    }
}

/// The allocator's view of one device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceView {
    /// Device id.
    pub id: String,
    /// Hosting node.
    pub node: NodeId,
    /// Vendor string.
    pub vendor: String,
    /// Platform string.
    pub platform: String,
    /// Currently configured bitstream.
    pub bitstream: Option<String>,
    /// Bitstream images staged in the board's warm cache: reprogramming
    /// to one of these is cheap, so the allocator prefers a warm board
    /// over a cold one when no board is already configured.
    pub warm_bitstreams: Vec<String>,
    /// Connected function instances and the accelerator each one needs
    /// (instance name → required bitstream).
    pub connected: HashMap<String, Option<String>>,
    /// Gathered FPGA time utilization in `[0, 1]`.
    pub utilization: f64,
    /// Gathered mean device-side operation latency (ms); 0 when idle.
    pub mean_op_latency_ms: f64,
    /// Whether a reconfiguration is already in flight (`bitstream` then
    /// reflects the *future* image); such a device cannot be flipped again
    /// by this allocation.
    pub pending_reconfiguration: bool,
}

impl DeviceView {
    fn metric(&self, key: MetricKey) -> f64 {
        match key {
            MetricKey::Utilization => self.utilization,
            MetricKey::ConnectedFunctions => self.connected.len() as f64,
            MetricKey::OpLatency => self.mean_op_latency_ms,
        }
    }
}

/// A successful allocation decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    /// The chosen device.
    pub device_id: String,
    /// Its node — the instance is forced onto it (shared memory requires
    /// co-location).
    pub node: NodeId,
    /// `Some(bitstream)` when the device must be reconfigured first; the
    /// connected instances listed must be migrated away.
    pub reconfigure: Option<String>,
    /// Instances to migrate if a reconfiguration is needed.
    pub displaced: Vec<String>,
}

/// Why allocation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocateError {
    /// Algorithm 1's terminal `raise error "device not found"`.
    DeviceNotFound {
        /// Diagnostic: how many devices survived each stage.
        candidates: usize,
        /// The query that failed.
        query: String,
    },
}

impl fmt::Display for AllocateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocateError::DeviceNotFound { candidates, query } => {
                write!(f, "device not found for query {query} ({candidates} candidates survived filtering)")
            }
        }
    }
}

impl Error for AllocateError {}

/// Warm-pool tier of a candidate: how cheaply it can serve the queried
/// accelerator. Ordered so a plain descending sort prefers the cheaper
/// device; with no warm caches in the cluster this collapses to the
/// original configured-vs-not ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Warmth {
    /// Neither configured nor staged: full bitstream transfer + program.
    Cold = 0,
    /// Staged in the board's warm bitstream cache: cheap reprogram.
    Warm = 1,
    /// Already configured: no reconfiguration at all.
    Configured = 2,
}

/// Per-candidate sort key, computed exactly once per candidate (the sort
/// itself compares precomputed values — no metric/compatibility/rank
/// recomputation inside the comparator).
struct Score {
    /// Metric values in `policy.metrics_order` order.
    metrics: Vec<f64>,
    warmth: Warmth,
    node_rank: usize,
}

/// Algorithm 1: chooses a device for an instance with the given query.
///
/// 1. `filterby_compatibility` — vendor/platform hardware match;
/// 2. `filterby_metrics` — drop over-threshold devices;
/// 3. `orderby_metrics_and_acc` — sort by the metric priority, then prefer
///    devices already configured with the required accelerator (no
///    reconfiguration) ahead of devices with the image merely staged warm
///    ahead of cold devices, breaking remaining ties by node priority;
/// 4. walk the order: a device whose bitstream is incompatible is only
///    eligible if its current workloads can be *redistributed* to other
///    compatible devices; the first eligible device wins and is flagged
///    for reconfiguration when needed.
///
/// # Errors
///
/// Returns [`AllocateError::DeviceNotFound`] when no device survives.
pub fn allocate(
    query: &DeviceQuery,
    devices: &[DeviceView],
    policy: &AllocationPolicy,
) -> Result<Allocation, AllocateError> {
    // Steps 2-3: filters.
    let candidates: Vec<&DeviceView> = devices
        .iter()
        .filter(|d| query.hardware_matches(&d.vendor, &d.platform))
        .filter(|d| {
            policy
                .metrics_filters
                .iter()
                .all(|f| d.metric(f.key) <= f.max)
        })
        .collect();

    // Step 4: score every candidate once, then order by metrics, warmth
    // (configured > warm-staged > cold) and the deterministic node
    // priority.
    let node_rank = |n: &NodeId| {
        policy
            .node_priority
            .iter()
            .position(|p| p == n)
            .unwrap_or(policy.node_priority.len())
    };
    let mut scored: Vec<(&DeviceView, Score)> = candidates
        .into_iter()
        .map(|d| {
            let score = Score {
                metrics: policy.metrics_order.iter().map(|k| d.metric(*k)).collect(),
                warmth: warmth_of(query, d),
                node_rank: node_rank(&d.node),
            };
            (d, score)
        })
        .collect();
    scored.sort_by(|(a, sa), (b, sb)| {
        for (ma, mb) in sa.metrics.iter().zip(&sb.metrics) {
            match ma.partial_cmp(mb) {
                Some(std::cmp::Ordering::Equal) | None => continue,
                Some(other) => return other,
            }
        }
        sb.warmth
            .cmp(&sa.warmth)
            .then_with(|| sa.node_rank.cmp(&sb.node_rank))
            .then_with(|| a.id.cmp(&b.id))
    });
    let candidates: Vec<&DeviceView> = scored.iter().map(|(d, _)| *d).collect();

    // Steps 5-12: skip incompatible devices whose tenants cannot move.
    let survived = candidates.len();
    for (i, (dev, score)) in scored.iter().enumerate() {
        let compatible = score.warmth == Warmth::Configured;
        if !compatible && (dev.pending_reconfiguration || !redistributable(dev, &candidates, i)) {
            continue;
        }
        // Steps 13-15.
        return Ok(Allocation {
            device_id: dev.id.clone(),
            node: dev.node.clone(),
            reconfigure: if compatible {
                None
            } else {
                query.accelerator.clone()
            },
            displaced: if compatible {
                Vec::new()
            } else {
                dev.connected.keys().cloned().collect()
            },
        });
    }
    Err(AllocateError::DeviceNotFound {
        candidates: survived,
        query: format!("{query:?}"),
    })
}

/// How cheaply `dev` can serve the queried accelerator.
fn warmth_of(query: &DeviceQuery, dev: &DeviceView) -> Warmth {
    if query.accelerator_matches(dev.bitstream.as_deref()) {
        Warmth::Configured
    } else if query
        .accelerator
        .as_deref()
        .is_some_and(|acc| dev.warm_bitstreams.iter().any(|w| w == acc))
    {
        Warmth::Warm
    } else {
        Warmth::Cold
    }
}

/// Whether every workload currently on `dev` could run on some *other*
/// candidate device whose configured bitstream serves it.
fn redistributable(dev: &DeviceView, candidates: &[&DeviceView], dev_idx: usize) -> bool {
    dev.connected.values().all(|needs| match needs {
        None => true,
        Some(bitstream) => candidates
            .iter()
            .enumerate()
            .any(|(j, other)| j != dev_idx && other.bitstream.as_deref() == Some(bitstream)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev(
        id: &str,
        node: &str,
        bitstream: Option<&str>,
        connected: usize,
        util: f64,
    ) -> DeviceView {
        DeviceView {
            id: id.to_string(),
            node: NodeId::new(node),
            vendor: "Intel".to_string(),
            platform: "Intel(R) FPGA SDK for OpenCL(TM)".to_string(),
            bitstream: bitstream.map(str::to_string),
            warm_bitstreams: Vec::new(),
            connected: (0..connected)
                .map(|i| (format!("{id}-f{i}"), bitstream.map(str::to_string)))
                .collect(),
            utilization: util,
            mean_op_latency_ms: 0.0,
            pending_reconfiguration: false,
        }
    }

    fn sobel_query() -> DeviceQuery {
        DeviceQuery::for_accelerator("sobel").with_vendor("Intel")
    }

    #[test]
    fn balances_by_connected_functions() {
        let devices = vec![
            dev("fpga-a", "A", Some("sobel"), 2, 0.1),
            dev("fpga-b", "B", Some("sobel"), 0, 0.1),
            dev("fpga-c", "C", Some("sobel"), 1, 0.1),
        ];
        let got = allocate(&sobel_query(), &devices, &AllocationPolicy::paper()).expect("alloc");
        assert_eq!(got.device_id, "fpga-b");
        assert_eq!(got.reconfigure, None);
    }

    #[test]
    fn node_priority_breaks_ties() {
        let devices = vec![
            dev("fpga-a", "A", Some("sobel"), 0, 0.0),
            dev("fpga-b", "B", Some("sobel"), 0, 0.0),
            dev("fpga-c", "C", Some("sobel"), 0, 0.0),
        ];
        let got = allocate(&sobel_query(), &devices, &AllocationPolicy::paper()).expect("alloc");
        assert_eq!(
            got.device_id, "fpga-b",
            "B precedes A and C in the paper policy"
        );
    }

    #[test]
    fn prefers_compatible_accelerator_over_reconfiguration() {
        let devices = vec![
            dev("fpga-a", "A", Some("mm"), 0, 0.0),
            dev("fpga-b", "B", Some("sobel"), 0, 0.0),
        ];
        let got = allocate(&sobel_query(), &devices, &AllocationPolicy::paper()).expect("alloc");
        assert_eq!(got.device_id, "fpga-b");
        assert!(got.reconfigure.is_none());
    }

    #[test]
    fn filters_out_hot_devices() {
        let devices = vec![
            dev("fpga-a", "A", Some("sobel"), 0, 0.99),
            dev("fpga-b", "B", Some("sobel"), 3, 0.5),
        ];
        let got = allocate(&sobel_query(), &devices, &AllocationPolicy::paper()).expect("alloc");
        assert_eq!(
            got.device_id, "fpga-b",
            "the 99%-utilized device is filtered"
        );
    }

    #[test]
    fn reconfigures_when_workloads_can_move() {
        // fpga-b runs mm tenants, but fpga-c also serves mm, so fpga-b's
        // tenants can be redistributed and fpga-b reprogrammed for sobel.
        let devices = vec![
            dev("fpga-b", "B", Some("mm"), 1, 0.0),
            dev("fpga-c", "C", Some("mm"), 2, 0.0),
        ];
        let got = allocate(&sobel_query(), &devices, &AllocationPolicy::paper()).expect("alloc");
        assert_eq!(got.device_id, "fpga-b");
        assert_eq!(got.reconfigure.as_deref(), Some("sobel"));
        assert_eq!(got.displaced, vec!["fpga-b-f0".to_string()]);
    }

    #[test]
    fn skips_devices_whose_tenants_cannot_move() {
        // Only one device serves mm: its tenant has nowhere to go, so it
        // cannot be reprogrammed; the blank device is chosen instead.
        let devices = vec![
            dev("fpga-b", "B", Some("mm"), 1, 0.0),
            dev("fpga-c", "C", None, 2, 0.0),
        ];
        let got = allocate(&sobel_query(), &devices, &AllocationPolicy::paper()).expect("alloc");
        assert_eq!(got.device_id, "fpga-c");
        assert_eq!(got.reconfigure.as_deref(), Some("sobel"));
    }

    #[test]
    fn warm_staged_device_beats_a_cold_one() {
        // Neither device is configured for sobel, but fpga-c has the
        // image staged warm; node priority alone would pick fpga-b.
        let mut warm = dev("fpga-c", "C", Some("mm"), 0, 0.0);
        warm.warm_bitstreams = vec!["sobel".to_string()];
        let cold = dev("fpga-b", "B", Some("mm"), 0, 0.0);
        let got =
            allocate(&sobel_query(), &[cold, warm], &AllocationPolicy::paper()).expect("alloc");
        assert_eq!(got.device_id, "fpga-c", "warm staging wins the tie");
        assert_eq!(got.reconfigure.as_deref(), Some("sobel"));
    }

    #[test]
    fn configured_device_beats_a_warm_staged_one() {
        let mut warm = dev("fpga-b", "B", Some("mm"), 0, 0.0);
        warm.warm_bitstreams = vec!["sobel".to_string()];
        let configured = dev("fpga-c", "C", Some("sobel"), 0, 0.0);
        let got = allocate(
            &sobel_query(),
            &[warm, configured],
            &AllocationPolicy::paper(),
        )
        .expect("alloc");
        assert_eq!(got.device_id, "fpga-c");
        assert!(got.reconfigure.is_none(), "no reprogram needed");
    }

    #[test]
    fn latency_ordering_prefers_the_snappier_device() {
        let mut slow = dev("fpga-a", "A", Some("sobel"), 1, 0.2);
        slow.mean_op_latency_ms = 9.0;
        let mut fast = dev("fpga-b", "B", Some("sobel"), 1, 0.2);
        fast.mean_op_latency_ms = 3.0;
        let policy = AllocationPolicy {
            metrics_order: vec![MetricKey::OpLatency],
            metrics_filters: vec![],
            node_priority: vec![],
        };
        let got = allocate(&sobel_query(), &[slow, fast], &policy).expect("alloc");
        assert_eq!(got.device_id, "fpga-b");
    }

    #[test]
    fn errors_when_nothing_survives() {
        let devices = vec![dev("fpga-a", "A", Some("sobel"), 0, 1.0)];
        let err = allocate(&sobel_query(), &devices, &AllocationPolicy::paper())
            .expect_err("all filtered");
        assert!(matches!(
            err,
            AllocateError::DeviceNotFound { candidates: 0, .. }
        ));

        let wrong_vendor = DeviceQuery::for_accelerator("sobel").with_vendor("Xilinx");
        let devices = vec![dev("fpga-a", "A", Some("sobel"), 0, 0.0)];
        assert!(allocate(&wrong_vendor, &devices, &AllocationPolicy::paper()).is_err());
    }

    #[test]
    fn paper_placement_emerges_for_five_sequential_sobel_functions() {
        // Replays Table II's BlastFunction scenario: five sobel functions
        // allocated one after another on three devices already configured
        // with the sobel bitstream. The paper observed the distribution
        // {B: 2, A: 2, C: 1}.
        let mut devices = vec![
            dev("fpga-a", "A", Some("sobel"), 0, 0.0),
            dev("fpga-b", "B", Some("sobel"), 0, 0.0),
            dev("fpga-c", "C", Some("sobel"), 0, 0.0),
        ];
        let mut placement = Vec::new();
        for i in 0..5 {
            let got =
                allocate(&sobel_query(), &devices, &AllocationPolicy::paper()).expect("alloc");
            placement.push(got.node.as_str().to_string());
            let d = devices
                .iter_mut()
                .find(|d| d.id == got.device_id)
                .expect("chosen exists");
            d.connected
                .insert(format!("sobel-{}", i + 1), Some("sobel".to_string()));
        }
        let count = |n: &str| placement.iter().filter(|p| p.as_str() == n).count();
        assert_eq!(count("B"), 2);
        assert_eq!(count("A"), 2);
        assert_eq!(count("C"), 1);
    }
}
