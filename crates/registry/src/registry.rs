//! The Accelerators Registry (paper §III-C): the master component that
//! registers functions and devices, aggregates performance metrics,
//! allocates devices to function instances and validates reconfigurations.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use bf_cluster::{Cluster, WatchEvent};
use bf_devmgr::{DeviceManager, ReconfigRequest};
use bf_metrics::MetricsRegistry;
use bf_model::NodeId;
use parking_lot::Mutex;

use crate::allocation::{allocate, AllocateError, Allocation, AllocationPolicy, DeviceView};
use crate::gatherer::{gauge_for_device, parse_scrape};
use crate::query::DeviceQuery;

/// Environment variable the registry injects with the allocated manager's
/// address.
pub const ENV_DEVICE_MANAGER: &str = "DEVICE_MANAGER_ADDRESS";
/// Volume name injected for the shared-memory data path.
pub const SHM_VOLUME_PREFIX: &str = "/dev/shm/blastfunction-";

/// A function known to the Functions Service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionRecord {
    /// Function (deployment) name.
    pub name: String,
    /// Its device requirements.
    pub query: DeviceQuery,
    /// Live instance names.
    pub instances: Vec<String>,
}

struct ManagedDevice {
    manager: DeviceManager,
    utilization: f64,
    mean_op_latency_ms: f64,
    pending_reconfiguration: Option<String>,
}

struct RegistryInner {
    devices: BTreeMap<String, ManagedDevice>,
    functions: BTreeMap<String, FunctionRecord>,
    /// instance name → (function name, device id)
    bindings: BTreeMap<String, (String, String)>,
    policy: AllocationPolicy,
}

/// Errors surfaced by registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The function was never registered.
    UnknownFunction(String),
    /// The device was never registered.
    UnknownDevice(String),
    /// Allocation failed.
    Allocate(AllocateError),
    /// A cluster operation failed during migration.
    Cluster(String),
    /// Reprogramming failed (bitstream missing from the catalog).
    Program(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownFunction(n) => write!(f, "function {n:?} is not registered"),
            RegistryError::UnknownDevice(d) => write!(f, "device {d:?} is not registered"),
            RegistryError::Allocate(e) => write!(f, "{e}"),
            RegistryError::Cluster(m) => write!(f, "cluster operation failed: {m}"),
            RegistryError::Program(m) => write!(f, "reprogramming failed: {m}"),
        }
    }
}

impl Error for RegistryError {}

impl From<AllocateError> for RegistryError {
    fn from(e: AllocateError) -> Self {
        RegistryError::Allocate(e)
    }
}

/// The central controller. Cloning yields another handle to the same
/// registry.
#[derive(Clone)]
pub struct Registry {
    registry: Arc<Mutex<RegistryInner>>,
    cluster: Arc<Mutex<Option<Cluster>>>,
    metrics: MetricsRegistry,
}

impl Registry {
    /// Creates a registry with the given allocation policy.
    pub fn new(policy: AllocationPolicy) -> Self {
        Registry {
            registry: Arc::new(Mutex::new(RegistryInner {
                devices: BTreeMap::new(),
                functions: BTreeMap::new(),
                bindings: BTreeMap::new(),
                policy,
            })),
            cluster: Arc::new(Mutex::new(None)),
            metrics: MetricsRegistry::default(),
        }
    }

    /// The registry's own metrics (placement outcome counters).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Registers a device (Devices Service).
    pub fn register_device(&self, manager: DeviceManager) {
        let id = manager.device_id().to_string();
        self.registry.lock().devices.insert(
            id,
            ManagedDevice {
                manager,
                utilization: 0.0,
                mean_op_latency_ms: 0.0,
                pending_reconfiguration: None,
            },
        );
    }

    /// Registers a function and its device query (Functions Service).
    pub fn register_function(&self, name: impl Into<String>, query: DeviceQuery) {
        let name = name.into();
        self.registry.lock().functions.insert(
            name.clone(),
            FunctionRecord {
                name,
                query,
                instances: Vec::new(),
            },
        );
    }

    /// Fetches a function record.
    pub fn function(&self, name: &str) -> Option<FunctionRecord> {
        self.registry.lock().functions.get(name).cloned()
    }

    /// The manager handle for a device id (what a function instance dials
    /// after reading `DEVICE_MANAGER_ADDRESS`).
    pub fn manager(&self, device_id: &str) -> Option<DeviceManager> {
        self.registry
            .lock()
            .devices
            .get(device_id)
            .map(|d| d.manager.clone())
    }

    /// All registered device ids.
    pub fn device_ids(&self) -> Vec<String> {
        self.registry.lock().devices.keys().cloned().collect()
    }

    /// The device an instance is bound to.
    pub fn binding(&self, instance: &str) -> Option<String> {
        self.registry
            .lock()
            .bindings
            .get(instance)
            .map(|(_, d)| d.clone())
    }

    /// Metrics Gatherer: scrapes every manager's Prometheus text and
    /// refreshes the utilization the allocator orders by.
    pub fn gather_metrics(&self) {
        // Scrape outside the lock (scrapes take the managers' locks).
        let scrapes: Vec<(String, String)> = {
            let inner = self.registry.lock();
            inner
                .devices
                .values()
                .map(|d| (d.manager.device_id().to_string(), d.manager.scrape()))
                .collect()
        };
        let mut inner = self.registry.lock();
        for (id, text) in scrapes {
            let samples = parse_scrape(&text);
            if let Some(util) = gauge_for_device(&samples, "bf_fpga_utilization", &id) {
                if let Some(dev) = inner.devices.get_mut(&id) {
                    dev.utilization = util;
                }
            }
            // Mean op latency from the histogram's _sum/_count pair.
            let sum = gauge_for_device(&samples, "bf_manager_op_latency_ms_sum", &id);
            let count = gauge_for_device(&samples, "bf_manager_op_latency_ms_count", &id);
            if let (Some(sum), Some(count)) = (sum, count) {
                if count > 0.0 {
                    if let Some(dev) = inner.devices.get_mut(&id) {
                        dev.mean_op_latency_ms = sum / count;
                    }
                }
            }
        }
    }

    fn views(inner: &RegistryInner) -> Vec<DeviceView> {
        inner
            .devices
            .values()
            .map(|d| {
                let id = d.manager.device_id().to_string();
                let (configured, warm_bitstreams) = {
                    let board = d.manager.board().lock();
                    (
                        board.bitstream_id().map(str::to_string),
                        board.warm_bitstreams().to_vec(),
                    )
                };
                let pending = d.pending_reconfiguration.is_some();
                let effective_bitstream = d.pending_reconfiguration.clone().or(configured);
                let connected = inner
                    .bindings
                    .iter()
                    .filter(|(_, (_, dev))| *dev == id)
                    .map(|(instance, (function, _))| {
                        let needs = inner
                            .functions
                            .get(function)
                            .and_then(|f| f.query.accelerator.clone());
                        (instance.clone(), needs)
                    })
                    .collect();
                DeviceView {
                    id,
                    node: d.manager.node().id().clone(),
                    vendor: "Intel".to_string(),
                    platform: "Intel(R) FPGA SDK for OpenCL(TM)".to_string(),
                    bitstream: effective_bitstream,
                    warm_bitstreams,
                    connected,
                    utilization: d.utilization,
                    mean_op_latency_ms: d.mean_op_latency_ms,
                    pending_reconfiguration: pending,
                }
            })
            .collect()
    }

    /// Runs Algorithm 1 for a new instance of `function` and applies the
    /// decision: binds the instance, and — when the chosen device needs a
    /// different bitstream — migrates the displaced tenants (through the
    /// cluster when attached) and reprograms the board.
    ///
    /// Returns the applied allocation.
    ///
    /// # Errors
    ///
    /// Fails when the function is unknown, no device survives Algorithm 1,
    /// or the reprogramming/migration fails.
    pub fn place_instance(
        &self,
        instance: &str,
        function: &str,
    ) -> Result<Allocation, RegistryError> {
        let (decision, manager) = {
            let mut inner = self.registry.lock();
            let query = inner
                .functions
                .get(function)
                .ok_or_else(|| RegistryError::UnknownFunction(function.to_string()))?
                .query
                .clone();
            let views = Self::views(&inner);
            let decision = allocate(&query, &views, &inner.policy)?;
            // Placement warmth accounting: did Algorithm 1 land on a
            // configured board, a warm-staged one, or a cold reprogram?
            let outcome = match &decision.reconfigure {
                None => "configured",
                Some(bitstream) => {
                    let warm = views.iter().any(|v| {
                        v.id == decision.device_id
                            && v.warm_bitstreams.iter().any(|w| w == bitstream)
                    });
                    if warm {
                        "warm"
                    } else {
                        "cold"
                    }
                }
            };
            self.metrics
                .counter("bf_registry_placements_total", &[("outcome", outcome)])
                .inc();
            // Bookkeeping: bind the new instance, unbind the displaced,
            // mark the pending reconfiguration so concurrent allocations
            // see the device's future bitstream.
            inner.bindings.insert(
                instance.to_string(),
                (function.to_string(), decision.device_id.clone()),
            );
            if let Some(rec) = inner.functions.get_mut(function) {
                rec.instances.push(instance.to_string());
            }
            for displaced in &decision.displaced {
                if let Some((func, _)) = inner.bindings.remove(displaced) {
                    if let Some(rec) = inner.functions.get_mut(&func) {
                        rec.instances.retain(|i| i != displaced);
                    }
                }
            }
            if let Some(bitstream) = &decision.reconfigure {
                if let Some(dev) = inner.devices.get_mut(&decision.device_id) {
                    dev.pending_reconfiguration = Some(bitstream.clone());
                }
            }
            let manager = inner.devices[&decision.device_id].manager.clone();
            (decision, manager)
        };

        if let Some(bitstream) = &decision.reconfigure {
            // Migrate displaced tenants with create-before-delete (§III-C).
            let cluster = self.cluster.lock().clone();
            if let Some(cluster) = cluster {
                for displaced in &decision.displaced {
                    if let Some(id) = parse_pod_id(displaced) {
                        cluster
                            .replace_instance(bf_cluster::InstanceId(id))
                            .map_err(|e| RegistryError::Cluster(e.to_string()))?;
                    }
                }
            }
            manager.program(bitstream).map_err(RegistryError::Program)?;
            if let Some(device) = self.registry.lock().devices.get_mut(&decision.device_id) {
                device.pending_reconfiguration = None;
            }
        }
        Ok(decision)
    }

    /// Removes an instance's binding (called when its pod is deleted).
    pub fn release_instance(&self, instance: &str) {
        let mut inner = self.registry.lock();
        if let Some((function, _)) = inner.bindings.remove(instance) {
            if let Some(rec) = inner.functions.get_mut(&function) {
                rec.instances.retain(|i| i != instance);
            }
        }
    }

    /// Registry-driven reconfiguration of a whole device: migrates every
    /// bound tenant away (create-before-delete through the cluster when
    /// attached), then reprograms the board.
    ///
    /// # Errors
    ///
    /// Fails on unknown devices or when reprogramming fails.
    pub fn reconfigure_device(
        &self,
        device_id: &str,
        bitstream: &str,
    ) -> Result<(), RegistryError> {
        let (manager, tenants) = {
            let mut inner = self.registry.lock();
            let dev = inner
                .devices
                .get_mut(device_id)
                .ok_or_else(|| RegistryError::UnknownDevice(device_id.to_string()))?;
            dev.pending_reconfiguration = Some(bitstream.to_string());
            let manager = dev.manager.clone();
            let tenants: Vec<String> = inner
                .bindings
                .iter()
                .filter(|(_, (_, d))| d == device_id)
                .map(|(i, _)| i.clone())
                .collect();
            for t in &tenants {
                if let Some((func, _)) = inner.bindings.remove(t) {
                    if let Some(rec) = inner.functions.get_mut(&func) {
                        rec.instances.retain(|i| i != t);
                    }
                }
            }
            (manager, tenants)
        };
        let cluster = self.cluster.lock().clone();
        if let Some(cluster) = cluster {
            for t in &tenants {
                if let Some(id) = parse_pod_id(t) {
                    cluster
                        .replace_instance(bf_cluster::InstanceId(id))
                        .map_err(|e| RegistryError::Cluster(e.to_string()))?;
                }
            }
        }
        manager.program(bitstream).map_err(RegistryError::Program)?;
        if let Some(device) = self.registry.lock().devices.get_mut(device_id) {
            device.pending_reconfiguration = None;
        }
        Ok(())
    }

    /// Handles a device failure (node crash, board fault): the device is
    /// removed from the Devices Service and every bound instance is
    /// migrated with create-before-delete semantics — re-admission places
    /// the replacements on the surviving devices.
    ///
    /// Returns the names of the instances that were migrated.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::UnknownDevice`] for unregistered ids, or a
    /// cluster/allocation failure when a tenant cannot be rehomed (the
    /// device stays deregistered either way — it is gone).
    pub fn handle_device_failure(&self, device_id: &str) -> Result<Vec<String>, RegistryError> {
        let tenants = {
            let mut inner = self.registry.lock();
            if inner.devices.remove(device_id).is_none() {
                return Err(RegistryError::UnknownDevice(device_id.to_string()));
            }
            let tenants: Vec<String> = inner
                .bindings
                .iter()
                .filter(|(_, (_, d))| d == device_id)
                .map(|(i, _)| i.clone())
                .collect();
            for t in &tenants {
                if let Some((func, _)) = inner.bindings.remove(t) {
                    if let Some(rec) = inner.functions.get_mut(&func) {
                        rec.instances.retain(|i| i != t);
                    }
                }
            }
            tenants
        };
        let cluster = self.cluster.lock().clone();
        if let Some(cluster) = cluster {
            for t in &tenants {
                if let Some(id) = parse_pod_id(t) {
                    cluster
                        .replace_instance(bf_cluster::InstanceId(id))
                        .map_err(|e| RegistryError::Cluster(e.to_string()))?;
                }
            }
        }
        Ok(tenants)
    }

    /// The validator Device Managers consult for client-initiated
    /// reconfiguration requests: approved only when the requesting
    /// instance is actually allocated to that device.
    pub fn reconfig_validator(&self) -> Arc<dyn Fn(&ReconfigRequest) -> bool + Send + Sync> {
        let registry = self.clone();
        Arc::new(move |req: &ReconfigRequest| {
            registry.binding(&req.client_name).as_deref() == Some(req.device_id.as_str())
        })
    }

    /// Wires the registry into a cluster: installs the admission hook that
    /// intercepts instance creation (allocating a device, injecting
    /// `DEVICE_MANAGER_ADDRESS` and the shm volume, forcing the host) and
    /// spawns a watcher that releases bindings on pod deletion.
    pub fn attach_cluster(&self, cluster: &Cluster) {
        *self.cluster.lock() = Some(cluster.clone());
        let registry = self.clone();
        cluster.set_admission_hook(Arc::new(move |spec| {
            let instance = spec.id.to_string();
            let placement = registry
                .place_instance(&instance, &spec.function)
                .map_err(|e| e.to_string())?;
            spec.env
                .insert(ENV_DEVICE_MANAGER.to_string(), placement.device_id.clone());
            spec.volumes
                .push(format!("{SHM_VOLUME_PREFIX}{}", placement.device_id));
            spec.node = Some(placement.node.clone());
            Ok(())
        }));
        let registry = self.clone();
        let mut watch = cluster.watch();
        std::thread::Builder::new()
            .name("bf-registry-watch".to_string())
            .spawn(move || {
                while let Some(event) = watch.next_blocking() {
                    if let WatchEvent::Deleted(id) = event {
                        registry.release_instance(&id.to_string());
                    }
                }
            })
            // bf-lint: allow(panic): thread-spawn failure is OS resource
            // exhaustion at registry startup — no caller can recover.
            .expect("spawn registry watch thread");
    }

    /// Snapshot of the allocator's device views (diagnostics, tests).
    pub fn device_views(&self) -> Vec<DeviceView> {
        Self::views(&self.registry.lock())
    }

    /// Nodes currently hosting at least one registered device.
    pub fn device_nodes(&self) -> Vec<NodeId> {
        self.registry
            .lock()
            .devices
            .values()
            .map(|d| d.manager.node().id().clone())
            .collect()
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.registry.lock();
        f.debug_struct("Registry")
            .field("devices", &inner.devices.len())
            .field("functions", &inner.functions.len())
            .field("bindings", &inner.bindings.len())
            .finish()
    }
}

/// Instance names produced by the cluster integration are pod ids
/// (`pod-N`); parse the numeric part back.
fn parse_pod_id(instance: &str) -> Option<u64> {
    instance.strip_prefix("pod-").and_then(|s| s.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pod_id_round_trip() {
        assert_eq!(parse_pod_id("pod-17"), Some(17));
        assert_eq!(parse_pod_id("sobel-1"), None);
        assert_eq!(
            parse_pod_id(&bf_cluster::InstanceId(3).to_string()),
            Some(3)
        );
    }
}
