//! The Accelerators Registry (paper §III-C): the master component that
//! registers functions and devices, aggregates performance metrics,
//! allocates devices to function instances and validates reconfigurations.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use bf_cluster::Cluster;
use bf_devmgr::{DeviceManager, ReconfigRequest};
use bf_metrics::MetricsRegistry;
use bf_model::NodeId;
use bf_race::sync::Mutex;

use crate::allocation::{allocate, AllocateError, Allocation, AllocationPolicy, DeviceView};
use crate::device::RegistryDevice;
use crate::gatherer::{gauge_for_device, parse_scrape};
use crate::query::DeviceQuery;
use crate::service::{ContentionReport, PlacementOutcomes, ShardLoadSummary};

/// Environment variable the registry injects with the allocated manager's
/// address.
pub const ENV_DEVICE_MANAGER: &str = "DEVICE_MANAGER_ADDRESS";
/// Volume name injected for the shared-memory data path.
pub const SHM_VOLUME_PREFIX: &str = "/dev/shm/blastfunction-";

/// A function known to the Functions Service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionRecord {
    /// Function (deployment) name.
    pub name: String,
    /// Its device requirements.
    pub query: DeviceQuery,
    /// Live instance names.
    pub instances: Vec<String>,
}

struct ManagedDevice {
    /// The handle the allocator reads board state from and programs
    /// through — a [`DeviceManager`] in production, a lightweight
    /// stand-in in simulation harnesses.
    device: Arc<dyn RegistryDevice>,
    /// The concrete manager, when the device was registered with one
    /// (what function instances dial after reading
    /// `DEVICE_MANAGER_ADDRESS`).
    manager: Option<DeviceManager>,
    utilization: f64,
    mean_op_latency_ms: f64,
    pending_reconfiguration: Option<String>,
}

/// Work performed under single acquisitions of the registry lock.
///
/// `span` is the number of device/binding entries walked while the lock
/// was held — the unit the federated ladder compares across shard counts
/// ("max per-lock contention").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContentionStats {
    /// Lock acquisitions recorded.
    pub acquisitions: u64,
    /// Largest single-acquisition span.
    pub max_span: u64,
    /// Sum of all spans.
    pub total_span: u64,
}

impl ContentionStats {
    fn note(&mut self, span: u64) {
        self.acquisitions += 1;
        self.total_span += span;
        if span > self.max_span {
            self.max_span = span;
        }
    }
}

struct RegistryInner {
    devices: BTreeMap<String, ManagedDevice>,
    functions: BTreeMap<String, FunctionRecord>,
    /// instance name → (function name, device id)
    bindings: BTreeMap<String, (String, String)>,
    policy: AllocationPolicy,
    contention: ContentionStats,
}

impl RegistryInner {
    /// Records one lock acquisition spanning the whole device + binding
    /// tables (the view-materialization paths).
    fn note_full_span(&mut self) {
        let span = (self.devices.len() + self.bindings.len()) as u64;
        self.contention.note(span);
    }
}

/// A device's bindings detached for a shard-map rebalance: everything the
/// receiving shard needs to re-home the device without re-placement.
pub(crate) struct DeviceExport {
    pub(crate) device: Arc<dyn RegistryDevice>,
    pub(crate) manager: Option<DeviceManager>,
    pub(crate) utilization: f64,
    pub(crate) mean_op_latency_ms: f64,
    pub(crate) pending_reconfiguration: Option<String>,
    /// `(instance, function)` bindings that move with the device.
    pub(crate) bindings: Vec<(String, String)>,
}

/// Errors surfaced by registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The function was never registered.
    UnknownFunction(String),
    /// The device was never registered.
    UnknownDevice(String),
    /// Allocation failed.
    Allocate(AllocateError),
    /// A cluster operation failed during migration.
    Cluster(String),
    /// Reprogramming failed (bitstream missing from the catalog).
    Program(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownFunction(n) => write!(f, "function {n:?} is not registered"),
            RegistryError::UnknownDevice(d) => write!(f, "device {d:?} is not registered"),
            RegistryError::Allocate(e) => write!(f, "{e}"),
            RegistryError::Cluster(m) => write!(f, "cluster operation failed: {m}"),
            RegistryError::Program(m) => write!(f, "reprogramming failed: {m}"),
        }
    }
}

impl Error for RegistryError {}

impl From<AllocateError> for RegistryError {
    fn from(e: AllocateError) -> Self {
        RegistryError::Allocate(e)
    }
}

/// The central controller. Cloning yields another handle to the same
/// registry.
#[derive(Clone)]
pub struct Registry {
    registry: Arc<Mutex<RegistryInner>>,
    cluster: Arc<Mutex<Option<Cluster>>>,
    metrics: MetricsRegistry,
}

impl Registry {
    /// Creates a registry with the given allocation policy.
    pub fn new(policy: AllocationPolicy) -> Self {
        Registry {
            registry: Arc::new(Mutex::new(RegistryInner {
                devices: BTreeMap::new(),
                functions: BTreeMap::new(),
                bindings: BTreeMap::new(),
                policy,
                contention: ContentionStats::default(),
            })),
            cluster: Arc::new(Mutex::new(None)),
            metrics: MetricsRegistry::default(),
        }
    }

    /// The registry's own metrics (placement outcome counters).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Registers a device fronted by a live manager (Devices Service).
    pub fn register_device(&self, manager: DeviceManager) {
        self.insert_device(Arc::new(manager.clone()), Some(manager));
    }

    /// Registers a device through a bare [`RegistryDevice`] handle — the
    /// simulation/model path, where no manager event loop exists.
    pub fn register_device_handle(&self, device: Arc<dyn RegistryDevice>) {
        self.insert_device(device, None);
    }

    fn insert_device(&self, device: Arc<dyn RegistryDevice>, manager: Option<DeviceManager>) {
        let id = device.device_id().to_string();
        self.registry.lock().devices.insert(
            id,
            ManagedDevice {
                device,
                manager,
                utilization: 0.0,
                mean_op_latency_ms: 0.0,
                pending_reconfiguration: None,
            },
        );
    }

    /// Registers a function and its device query (Functions Service).
    pub fn register_function(&self, name: impl Into<String>, query: DeviceQuery) {
        let name = name.into();
        self.registry.lock().functions.insert(
            name.clone(),
            FunctionRecord {
                name,
                query,
                instances: Vec::new(),
            },
        );
    }

    /// Fetches a function record.
    pub fn function(&self, name: &str) -> Option<FunctionRecord> {
        self.registry.lock().functions.get(name).cloned()
    }

    /// The manager handle for a device id (what a function instance dials
    /// after reading `DEVICE_MANAGER_ADDRESS`). `None` for devices
    /// registered through a bare handle.
    pub fn manager(&self, device_id: &str) -> Option<DeviceManager> {
        self.registry
            .lock()
            .devices
            .get(device_id)
            .and_then(|d| d.manager.clone())
    }

    /// All registered device ids, pre-sized off the device table.
    pub fn device_ids(&self) -> Vec<String> {
        let inner = self.registry.lock();
        let mut ids = Vec::with_capacity(inner.devices.len());
        ids.extend(inner.devices.keys().cloned());
        ids
    }

    /// The device an instance is bound to.
    pub fn binding(&self, instance: &str) -> Option<String> {
        self.registry
            .lock()
            .bindings
            .get(instance)
            .map(|(_, d)| d.clone())
    }

    /// Pre-sized snapshot of `(device id, handle)` pairs — the only thing
    /// the gather path reads under the registry lock. Scrapes happen
    /// against the returned handles with no registry lock held.
    // bf-flow: entry(gatherer)
    fn device_handles(&self) -> Vec<(String, Arc<dyn RegistryDevice>)> {
        let mut inner = self.registry.lock();
        let span = inner.devices.len() as u64;
        inner.contention.note(span);
        let mut handles = Vec::with_capacity(inner.devices.len());
        for (id, d) in &inner.devices {
            handles.push((id.clone(), d.device.clone()));
        }
        handles
    }

    /// Metrics Gatherer: scrapes every manager's Prometheus text and
    /// refreshes the utilization the allocator orders by.
    ///
    /// Scrapes run outside the registry lock (they take each manager's
    /// own locks): the lock is held twice for pre-sized point work — the
    /// handle snapshot and the gauge write-back — never across a device
    /// round-trip.
    pub fn gather_metrics(&self) {
        let handles = self.device_handles();
        let mut scrapes = Vec::with_capacity(handles.len());
        for (id, device) in handles {
            scrapes.push((id, device.scrape()));
        }
        let mut inner = self.registry.lock();
        for (id, text) in scrapes {
            let samples = parse_scrape(&text);
            if let Some(util) = gauge_for_device(&samples, "bf_fpga_utilization", &id) {
                if let Some(dev) = inner.devices.get_mut(&id) {
                    dev.utilization = util;
                }
            }
            // Mean op latency from the histogram's _sum/_count pair.
            let sum = gauge_for_device(&samples, "bf_manager_op_latency_ms_sum", &id);
            let count = gauge_for_device(&samples, "bf_manager_op_latency_ms_count", &id);
            if let (Some(sum), Some(count)) = (sum, count) {
                if count > 0.0 {
                    if let Some(dev) = inner.devices.get_mut(&id) {
                        dev.mean_op_latency_ms = sum / count;
                    }
                }
            }
        }
    }

    /// Materializes the allocator's device views in one pass over the
    /// binding table and one over the devices — O(devices + bindings),
    /// where the old per-device binding scan was O(devices × bindings)
    /// and dominated every placement at federated-ladder scale.
    fn views(inner: &RegistryInner) -> Vec<DeviceView> {
        let mut connected: BTreeMap<&str, HashMap<String, Option<String>>> = BTreeMap::new();
        for (instance, (function, device)) in &inner.bindings {
            let needs = inner
                .functions
                .get(function)
                .and_then(|f| f.query.accelerator.clone());
            connected
                .entry(device.as_str())
                .or_default()
                .insert(instance.clone(), needs);
        }
        let mut views = Vec::with_capacity(inner.devices.len());
        for (id, d) in &inner.devices {
            let state = d.device.board_state();
            let pending = d.pending_reconfiguration.is_some();
            let effective_bitstream = d.pending_reconfiguration.clone().or(state.configured);
            views.push(DeviceView {
                id: id.clone(),
                node: d.device.node().id().clone(),
                vendor: "Intel".to_string(),
                platform: "Intel(R) FPGA SDK for OpenCL(TM)".to_string(),
                bitstream: effective_bitstream,
                warm_bitstreams: state.warm,
                connected: connected.remove(id.as_str()).unwrap_or_default(),
                utilization: d.utilization,
                mean_op_latency_ms: d.mean_op_latency_ms,
                pending_reconfiguration: pending,
            });
        }
        views
    }

    /// Runs Algorithm 1 for a new instance of `function` and applies the
    /// decision: binds the instance, and — when the chosen device needs a
    /// different bitstream — migrates the displaced tenants (through the
    /// cluster when attached) and reprograms the board.
    ///
    /// Returns the applied allocation.
    ///
    /// # Errors
    ///
    /// Fails when the function is unknown, no device survives Algorithm 1,
    /// or the reprogramming/migration fails.
    pub fn place_instance(
        &self,
        instance: &str,
        function: &str,
    ) -> Result<Allocation, RegistryError> {
        let (decision, device) = {
            let mut inner = self.registry.lock();
            inner.note_full_span();
            let query = inner
                .functions
                .get(function)
                .ok_or_else(|| RegistryError::UnknownFunction(function.to_string()))?
                .query
                .clone();
            let views = Self::views(&inner);
            let decision = allocate(&query, &views, &inner.policy)?;
            // Placement warmth accounting: did Algorithm 1 land on a
            // configured board, a warm-staged one, or a cold reprogram?
            let outcome = match &decision.reconfigure {
                None => "configured",
                Some(bitstream) => {
                    let warm = views.iter().any(|v| {
                        v.id == decision.device_id
                            && v.warm_bitstreams.iter().any(|w| w == bitstream)
                    });
                    if warm {
                        "warm"
                    } else {
                        "cold"
                    }
                }
            };
            self.metrics
                .counter("bf_registry_placements_total", &[("outcome", outcome)])
                .inc();
            // Bookkeeping: bind the new instance, unbind the displaced,
            // mark the pending reconfiguration so concurrent allocations
            // see the device's future bitstream.
            inner.bindings.insert(
                instance.to_string(),
                (function.to_string(), decision.device_id.clone()),
            );
            if let Some(rec) = inner.functions.get_mut(function) {
                rec.instances.push(instance.to_string());
            }
            for displaced in &decision.displaced {
                if let Some((func, _)) = inner.bindings.remove(displaced) {
                    if let Some(rec) = inner.functions.get_mut(&func) {
                        rec.instances.retain(|i| i != displaced);
                    }
                }
            }
            if let Some(bitstream) = &decision.reconfigure {
                if let Some(dev) = inner.devices.get_mut(&decision.device_id) {
                    dev.pending_reconfiguration = Some(bitstream.clone());
                }
            }
            // bf-taint: sanitized(decision.device_id was selected by the allocator from this very map's views under the same lock)
            let device = inner.devices[&decision.device_id].device.clone();
            (decision, device)
        };

        if let Some(bitstream) = &decision.reconfigure {
            // Migrate displaced tenants with create-before-delete (§III-C).
            let cluster = self.cluster.lock().clone();
            if let Some(cluster) = cluster {
                for displaced in &decision.displaced {
                    if let Some(id) = parse_pod_id(displaced) {
                        cluster
                            .replace_instance(bf_cluster::InstanceId(id))
                            .map_err(|e| RegistryError::Cluster(e.to_string()))?;
                    }
                }
            }
            device.program(bitstream).map_err(RegistryError::Program)?;
            if let Some(device) = self.registry.lock().devices.get_mut(&decision.device_id) {
                device.pending_reconfiguration = None;
            }
        }
        Ok(decision)
    }

    /// Removes an instance's binding (called when its pod is deleted).
    pub fn release_instance(&self, instance: &str) {
        let mut inner = self.registry.lock();
        if let Some((function, _)) = inner.bindings.remove(instance) {
            if let Some(rec) = inner.functions.get_mut(&function) {
                rec.instances.retain(|i| i != instance);
            }
        }
    }

    /// Registry-driven reconfiguration of a whole device: migrates every
    /// bound tenant away (create-before-delete through the cluster when
    /// attached), then reprograms the board.
    ///
    /// # Errors
    ///
    /// Fails on unknown devices or when reprogramming fails.
    pub fn reconfigure_device(
        &self,
        device_id: &str,
        bitstream: &str,
    ) -> Result<(), RegistryError> {
        let (device, tenants) = {
            let mut inner = self.registry.lock();
            let dev = inner
                .devices
                .get_mut(device_id)
                .ok_or_else(|| RegistryError::UnknownDevice(device_id.to_string()))?;
            dev.pending_reconfiguration = Some(bitstream.to_string());
            let device = dev.device.clone();
            let tenants: Vec<String> = inner
                .bindings
                .iter()
                .filter(|(_, (_, d))| d == device_id)
                .map(|(i, _)| i.clone())
                .collect();
            for t in &tenants {
                if let Some((func, _)) = inner.bindings.remove(t) {
                    if let Some(rec) = inner.functions.get_mut(&func) {
                        rec.instances.retain(|i| i != t);
                    }
                }
            }
            (device, tenants)
        };
        let cluster = self.cluster.lock().clone();
        if let Some(cluster) = cluster {
            for t in &tenants {
                if let Some(id) = parse_pod_id(t) {
                    cluster
                        .replace_instance(bf_cluster::InstanceId(id))
                        .map_err(|e| RegistryError::Cluster(e.to_string()))?;
                }
            }
        }
        device.program(bitstream).map_err(RegistryError::Program)?;
        if let Some(device) = self.registry.lock().devices.get_mut(device_id) {
            device.pending_reconfiguration = None;
        }
        Ok(())
    }

    /// Handles a device failure (node crash, board fault): the device is
    /// removed from the Devices Service and every bound instance is
    /// migrated with create-before-delete semantics — re-admission places
    /// the replacements on the surviving devices.
    ///
    /// Returns the names of the instances that were migrated.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::UnknownDevice`] for unregistered ids, or a
    /// cluster/allocation failure when a tenant cannot be rehomed (the
    /// device stays deregistered either way — it is gone).
    pub fn handle_device_failure(&self, device_id: &str) -> Result<Vec<String>, RegistryError> {
        let tenants = {
            let mut inner = self.registry.lock();
            if inner.devices.remove(device_id).is_none() {
                return Err(RegistryError::UnknownDevice(device_id.to_string()));
            }
            let tenants: Vec<String> = inner
                .bindings
                .iter()
                .filter(|(_, (_, d))| d == device_id)
                .map(|(i, _)| i.clone())
                .collect();
            for t in &tenants {
                if let Some((func, _)) = inner.bindings.remove(t) {
                    if let Some(rec) = inner.functions.get_mut(&func) {
                        rec.instances.retain(|i| i != t);
                    }
                }
            }
            tenants
        };
        let cluster = self.cluster.lock().clone();
        if let Some(cluster) = cluster {
            for t in &tenants {
                if let Some(id) = parse_pod_id(t) {
                    cluster
                        .replace_instance(bf_cluster::InstanceId(id))
                        .map_err(|e| RegistryError::Cluster(e.to_string()))?;
                }
            }
        }
        Ok(tenants)
    }

    /// The validator Device Managers consult for client-initiated
    /// reconfiguration requests: approved only when the requesting
    /// instance is actually allocated to that device.
    pub fn reconfig_validator(&self) -> Arc<dyn Fn(&ReconfigRequest) -> bool + Send + Sync> {
        crate::service::reconfig_validator(Arc::new(self.clone()))
    }

    /// Wires the registry into a cluster: installs the admission hook that
    /// intercepts instance creation (allocating a device, injecting
    /// `DEVICE_MANAGER_ADDRESS` and the shm volume, forcing the host) and
    /// spawns a watcher that releases bindings on pod deletion.
    pub fn attach_cluster(&self, cluster: &Cluster) {
        crate::service::attach_placement(cluster, Arc::new(self.clone()));
    }

    /// Stores the cluster handle used for displaced-tenant migration.
    pub(crate) fn bind_cluster_handle(&self, cluster: &Cluster) {
        *self.cluster.lock() = Some(cluster.clone());
    }

    /// Snapshot of the allocator's device views (diagnostics, tests).
    pub fn device_views(&self) -> Vec<DeviceView> {
        let mut inner = self.registry.lock();
        inner.note_full_span();
        Self::views(&inner)
    }

    /// Nodes currently hosting at least one registered device.
    pub fn device_nodes(&self) -> Vec<NodeId> {
        let inner = self.registry.lock();
        let mut nodes = Vec::with_capacity(inner.devices.len());
        nodes.extend(inner.devices.values().map(|d| d.device.node().id().clone()));
        nodes
    }

    /// The aggregate load summary a federated router sees for this shard:
    /// counts, mean utilization, and the configured/warm bitstream hint
    /// sets — never per-device state.
    pub fn load_summary(&self, shard: usize) -> ShardLoadSummary {
        let mut inner = self.registry.lock();
        inner.note_full_span();
        let mut configured = BTreeSet::new();
        let mut warm = BTreeSet::new();
        let mut pending = 0usize;
        let mut utilization_sum = 0.0f64;
        for d in inner.devices.values() {
            let state = d.device.board_state();
            if let Some(b) = state.configured {
                configured.insert(b);
            }
            for w in state.warm {
                warm.insert(w);
            }
            if let Some(p) = &d.pending_reconfiguration {
                // The device's future bitstream counts as configured for
                // routing purposes — concurrent placements should chase it.
                configured.insert(p.clone());
                pending += 1;
            }
            utilization_sum += d.utilization;
        }
        let devices = inner.devices.len();
        ShardLoadSummary {
            shard,
            devices,
            bindings: inner.bindings.len(),
            pending_reconfigurations: pending,
            mean_utilization: if devices == 0 {
                0.0
            } else {
                utilization_sum / devices as f64
            },
            configured,
            warm,
        }
    }

    /// Placement outcome totals from this registry's metrics.
    pub fn placement_outcomes(&self) -> PlacementOutcomes {
        let read = |outcome: &str| {
            self.metrics
                .counter_value("bf_registry_placements_total", &[("outcome", outcome)])
                .unwrap_or(0.0) as u64
        };
        PlacementOutcomes {
            configured: read("configured"),
            warm: read("warm"),
            cold: read("cold"),
        }
    }

    /// Lock-contention accounting for this registry's lock.
    pub fn contention(&self, shard: usize) -> ContentionReport {
        let stats = self.registry.lock().contention;
        ContentionReport { shard, stats }
    }

    /// Detaches `device_id` and its bindings for a shard-map rebalance.
    /// Unlike [`handle_device_failure`](Self::handle_device_failure) the
    /// bindings survive — the importing shard re-homes them unchanged.
    pub(crate) fn export_device(&self, device_id: &str) -> Option<DeviceExport> {
        let mut inner = self.registry.lock();
        let d = inner.devices.remove(device_id)?;
        let moved: Vec<(String, String)> = inner
            .bindings
            .iter()
            .filter(|(_, (_, dev))| dev == device_id)
            .map(|(i, (f, _))| (i.clone(), f.clone()))
            .collect();
        for (instance, function) in &moved {
            inner.bindings.remove(instance);
            if let Some(rec) = inner.functions.get_mut(function) {
                rec.instances.retain(|i| i != instance);
            }
        }
        Some(DeviceExport {
            device: d.device,
            manager: d.manager,
            utilization: d.utilization,
            mean_op_latency_ms: d.mean_op_latency_ms,
            pending_reconfiguration: d.pending_reconfiguration,
            bindings: moved,
        })
    }

    /// Re-homes a device exported from another shard, bindings included.
    pub(crate) fn import_device(&self, export: DeviceExport) {
        let mut inner = self.registry.lock();
        let id = export.device.device_id().to_string();
        for (instance, function) in &export.bindings {
            inner
                .bindings
                .insert(instance.clone(), (function.clone(), id.clone()));
            if let Some(rec) = inner.functions.get_mut(function) {
                rec.instances.push(instance.clone());
            }
        }
        inner.devices.insert(
            id,
            ManagedDevice {
                device: export.device,
                manager: export.manager,
                utilization: export.utilization,
                mean_op_latency_ms: export.mean_op_latency_ms,
                pending_reconfiguration: export.pending_reconfiguration,
            },
        );
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.registry.lock();
        f.debug_struct("Registry")
            .field("devices", &inner.devices.len())
            .field("functions", &inner.functions.len())
            .field("bindings", &inner.bindings.len())
            .finish()
    }
}

/// Instance names produced by the cluster integration are pod ids
/// (`pod-N`); parse the numeric part back.
pub(crate) fn parse_pod_id(instance: &str) -> Option<u64> {
    instance.strip_prefix("pod-").and_then(|s| s.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pod_id_round_trip() {
        assert_eq!(parse_pod_id("pod-17"), Some(17));
        assert_eq!(parse_pod_id("sobel-1"), None);
        assert_eq!(
            parse_pod_id(&bf_cluster::InstanceId(3).to_string()),
            Some(3)
        );
    }
}
