//! The Metrics Gatherer: scrapes each Device Manager's Prometheus text
//! exposition and extracts the gauges the allocator consumes.

use std::collections::BTreeMap;

/// One parsed sample line: metric name, labels, value.
#[derive(Debug, Clone, PartialEq)]
pub struct ScrapeSample {
    /// Metric name.
    pub name: String,
    /// Label set.
    pub labels: BTreeMap<String, String>,
    /// Sample value.
    pub value: f64,
}

/// Parses the Prometheus text exposition format (the subset our managers
/// emit: `name{label="v",...} value` lines, `#` comments, blank lines).
/// Malformed lines are skipped — a scraper must tolerate partial garbage.
pub fn parse_scrape(text: &str) -> Vec<ScrapeSample> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(sample) = parse_line(line) {
            out.push(sample);
        }
    }
    out
}

fn parse_line(line: &str) -> Option<ScrapeSample> {
    let (series, value) = line.rsplit_once(' ')?;
    let value: f64 = value.parse().ok()?;
    let (name, labels) = match series.find('{') {
        None => (series.to_string(), BTreeMap::new()),
        Some(open) => {
            let name = series[..open].to_string();
            let body = series[open + 1..].strip_suffix('}')?;
            let mut labels = BTreeMap::new();
            if !body.is_empty() {
                for pair in split_label_pairs(body) {
                    let (k, v) = pair.split_once('=')?;
                    let v = v.strip_prefix('"')?.strip_suffix('"')?;
                    labels.insert(k.to_string(), v.to_string());
                }
            }
            (name, labels)
        }
    };
    if name.is_empty() {
        return None;
    }
    Some(ScrapeSample {
        name,
        labels,
        value,
    })
}

/// Splits `a="x",b="y"` on commas outside quotes.
fn split_label_pairs(body: &str) -> Vec<&str> {
    let mut pairs = Vec::new();
    let mut depth_quote = false;
    let mut start = 0;
    for (i, c) in body.char_indices() {
        match c {
            '"' => depth_quote = !depth_quote,
            ',' if !depth_quote => {
                pairs.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    pairs.push(&body[start..]);
    pairs
}

/// Extracts a gauge value by name and device label from parsed samples.
pub fn gauge_for_device(samples: &[ScrapeSample], name: &str, device: &str) -> Option<f64> {
    samples
        .iter()
        .find(|s| s.name == name && s.labels.get("device").map(String::as_str) == Some(device))
        .map(|s| s.value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_and_labelled_series() {
        let text = "\
# HELP bf_fpga_utilization busy fraction
bf_fpga_utilization{device=\"fpga-b\"} 0.42
bf_manager_tasks_total 17

garbage line without value x
bf_fpga_busy_seconds{device=\"fpga-b\",window=\"all\"} 1.5
";
        let samples = parse_scrape(text);
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].name, "bf_fpga_utilization");
        assert_eq!(
            samples[0].labels.get("device").map(String::as_str),
            Some("fpga-b")
        );
        assert_eq!(samples[0].value, 0.42);
        assert_eq!(samples[1].labels.len(), 0);
        assert_eq!(samples[2].labels.len(), 2);
    }

    #[test]
    fn labels_with_commas_inside_quotes_survive() {
        let samples = parse_scrape("m{k=\"a,b\"} 1");
        assert_eq!(samples[0].labels.get("k").map(String::as_str), Some("a,b"));
    }

    #[test]
    fn gauge_lookup_by_device() {
        let samples = parse_scrape(
            "bf_fpga_utilization{device=\"fpga-a\"} 0.1\nbf_fpga_utilization{device=\"fpga-b\"} 0.9\n",
        );
        assert_eq!(
            gauge_for_device(&samples, "bf_fpga_utilization", "fpga-b"),
            Some(0.9)
        );
        assert_eq!(
            gauge_for_device(&samples, "bf_fpga_utilization", "fpga-z"),
            None
        );
        assert_eq!(gauge_for_device(&samples, "nope", "fpga-b"), None);
    }

    #[test]
    fn round_trips_a_real_manager_scrape() {
        // The format written by bf-metrics must parse back.
        let reg = bf_metrics::MetricsRegistry::new();
        reg.gauge("bf_fpga_utilization", &[("device", "fpga-x")])
            .set(0.25);
        reg.counter("bf_manager_ops_total", &[("device", "fpga-x")])
            .inc_by(3.0);
        let samples = parse_scrape(&reg.scrape());
        assert_eq!(
            gauge_for_device(&samples, "bf_fpga_utilization", "fpga-x"),
            Some(0.25)
        );
        assert_eq!(
            gauge_for_device(&samples, "bf_manager_ops_total", "fpga-x"),
            Some(3.0)
        );
    }
}
