//! The typed placement API: the trait boundary between callers (gateway,
//! autoscaler, cluster admission, the DES harnesses) and whatever
//! allocates devices behind it.
//!
//! [`PlacementService`] is exactly the surface the single [`Registry`]
//! already exposed — place / release / reconfigure / failure / views —
//! lifted to a trait so a [`ShardedRegistry`](crate::ShardedRegistry)
//! (or anything else) can stand in without callers changing. Cross-shard
//! coordination happens only through [`ShardLoadSummary`] aggregates:
//! a federated router never sees per-device state, mirroring funcX's
//! endpoint federation, and the warm-bitstream hint sets keep Cloudburst
//! style locality (and the PR-8 cache wins) across the shard boundary.

use std::collections::BTreeSet;
use std::sync::Arc;

use bf_cluster::{Cluster, WatchEvent};
use bf_devmgr::{DeviceManager, ReconfigRequest};
use bf_model::NodeId;

use crate::allocation::{Allocation, DeviceView};
use crate::device::RegistryDevice;
use crate::query::DeviceQuery;
use crate::registry::{
    ContentionStats, FunctionRecord, Registry, RegistryError, ENV_DEVICE_MANAGER, SHM_VOLUME_PREFIX,
};

/// The aggregate load a federated router sees for one shard.
///
/// This is the *entire* cross-shard protocol: counts, a mean, and two
/// bitstream hint sets. No device ids, no bindings, no per-instance
/// state — a shard can change everything behind its lock without the
/// federation layer noticing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardLoadSummary {
    /// Shard index in the federation.
    pub shard: usize,
    /// Registered devices.
    pub devices: usize,
    /// Live instance bindings.
    pub bindings: usize,
    /// Devices mid-reconfiguration.
    pub pending_reconfigurations: usize,
    /// Mean scraped utilization across the shard's devices.
    pub mean_utilization: f64,
    /// Bitstreams configured on at least one board (including pending
    /// reconfigurations — the board's imminent state).
    pub configured: BTreeSet<String>,
    /// Bitstreams staged warm in at least one board's cache.
    pub warm: BTreeSet<String>,
}

impl ShardLoadSummary {
    /// Mean bindings per device — the load metric the federated router
    /// breaks warmth ties with.
    pub fn load(&self) -> f64 {
        if self.devices == 0 {
            f64::INFINITY
        } else {
            self.bindings as f64 / self.devices as f64
        }
    }

    /// Routing warmth of this shard for `accelerator`: 2 when some board
    /// is configured with it, 1 when it is staged warm somewhere, else 0.
    pub fn warmth_for(&self, accelerator: Option<&str>) -> u8 {
        match accelerator {
            None => 0,
            Some(b) => {
                if self.configured.contains(b) {
                    2
                } else if self.warm.contains(b) {
                    1
                } else {
                    0
                }
            }
        }
    }
}

/// Placement outcome totals (the `bf_registry_placements_total` counter
/// read back by outcome label).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlacementOutcomes {
    /// Placements that landed on an already-configured board.
    pub configured: u64,
    /// Placements satisfied from a board's warm bitstream cache.
    pub warm: u64,
    /// Placements that forced a cold reprogram.
    pub cold: u64,
}

impl PlacementOutcomes {
    /// Total placements across all outcomes.
    pub fn total(&self) -> u64 {
        self.configured + self.warm + self.cold
    }
}

/// Per-shard lock-contention report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContentionReport {
    /// Shard index.
    pub shard: usize,
    /// The shard's registry-lock accounting.
    pub stats: ContentionStats,
}

/// The typed placement API the rest of the system programs against.
///
/// [`Registry`] implements it directly (one shard, the paper's
/// Algorithm 1); [`ShardedRegistry`](crate::ShardedRegistry) implements
/// it by routing on [`ShardLoadSummary`] aggregates. Callers that used
/// to take `&Registry` take `&dyn PlacementService` (or an
/// `Arc<dyn PlacementService>`) and cannot tell the difference.
pub trait PlacementService: Send + Sync {
    /// Registers a device through a bare handle (Devices Service).
    fn register_device_handle(&self, device: Arc<dyn RegistryDevice>);

    /// Registers a function and its device query (Functions Service).
    fn register_function(&self, name: &str, query: DeviceQuery);

    /// Fetches a function record (instances aggregated across shards).
    fn function(&self, name: &str) -> Option<FunctionRecord>;

    /// The live manager for a device id, when one exists.
    fn manager(&self, device_id: &str) -> Option<DeviceManager>;

    /// All registered device ids.
    fn device_ids(&self) -> Vec<String>;

    /// Snapshot of the allocator's device views (diagnostics, tests).
    fn device_views(&self) -> Vec<DeviceView>;

    /// Nodes currently hosting at least one registered device.
    fn device_nodes(&self) -> Vec<NodeId>;

    /// The device an instance is bound to.
    fn binding(&self, instance: &str) -> Option<String>;

    /// Runs placement for a new instance of `function`.
    ///
    /// # Errors
    ///
    /// Fails when the function is unknown, no device survives the
    /// allocation, or reprogramming/migration fails.
    fn place_instance(&self, instance: &str, function: &str) -> Result<Allocation, RegistryError>;

    /// Removes an instance's binding.
    fn release_instance(&self, instance: &str);

    /// Migrates a device's tenants away and reprograms it.
    ///
    /// # Errors
    ///
    /// Fails on unknown devices or when reprogramming fails.
    fn reconfigure_device(&self, device_id: &str, bitstream: &str) -> Result<(), RegistryError>;

    /// Deregisters a failed device and migrates its tenants.
    ///
    /// # Errors
    ///
    /// Fails on unknown devices or when a tenant cannot be rehomed.
    fn handle_device_failure(&self, device_id: &str) -> Result<Vec<String>, RegistryError>;

    /// Refreshes the utilization metrics the allocator orders by.
    fn gather_metrics(&self);

    /// Per-shard aggregate load summaries (one entry for a plain
    /// registry).
    fn load_summaries(&self) -> Vec<ShardLoadSummary>;

    /// Placement outcome totals summed across shards.
    fn placement_outcomes(&self) -> PlacementOutcomes;

    /// Per-shard lock-contention reports.
    fn contention(&self) -> Vec<ContentionReport>;

    /// Stores the cluster handle used for displaced-tenant migration.
    /// Callers normally go through [`attach_placement`], which also
    /// installs the admission hook and deletion watcher.
    fn bind_cluster(&self, cluster: &Cluster);
}

impl PlacementService for Registry {
    fn register_device_handle(&self, device: Arc<dyn RegistryDevice>) {
        Registry::register_device_handle(self, device);
    }

    fn register_function(&self, name: &str, query: DeviceQuery) {
        Registry::register_function(self, name, query);
    }

    fn function(&self, name: &str) -> Option<FunctionRecord> {
        Registry::function(self, name)
    }

    fn manager(&self, device_id: &str) -> Option<DeviceManager> {
        Registry::manager(self, device_id)
    }

    fn device_ids(&self) -> Vec<String> {
        Registry::device_ids(self)
    }

    fn device_views(&self) -> Vec<DeviceView> {
        Registry::device_views(self)
    }

    fn device_nodes(&self) -> Vec<NodeId> {
        Registry::device_nodes(self)
    }

    fn binding(&self, instance: &str) -> Option<String> {
        Registry::binding(self, instance)
    }

    fn place_instance(&self, instance: &str, function: &str) -> Result<Allocation, RegistryError> {
        Registry::place_instance(self, instance, function)
    }

    fn release_instance(&self, instance: &str) {
        Registry::release_instance(self, instance);
    }

    fn reconfigure_device(&self, device_id: &str, bitstream: &str) -> Result<(), RegistryError> {
        Registry::reconfigure_device(self, device_id, bitstream)
    }

    fn handle_device_failure(&self, device_id: &str) -> Result<Vec<String>, RegistryError> {
        Registry::handle_device_failure(self, device_id)
    }

    fn gather_metrics(&self) {
        Registry::gather_metrics(self);
    }

    fn load_summaries(&self) -> Vec<ShardLoadSummary> {
        vec![self.load_summary(0)]
    }

    fn placement_outcomes(&self) -> PlacementOutcomes {
        Registry::placement_outcomes(self)
    }

    fn contention(&self) -> Vec<ContentionReport> {
        vec![Registry::contention(self, 0)]
    }

    fn bind_cluster(&self, cluster: &Cluster) {
        self.bind_cluster_handle(cluster);
    }
}

/// The validator Device Managers consult for client-initiated
/// reconfiguration requests: approved only when the requesting instance
/// is actually allocated to that device.
pub fn reconfig_validator(
    service: Arc<dyn PlacementService>,
) -> Arc<dyn Fn(&ReconfigRequest) -> bool + Send + Sync> {
    Arc::new(move |req: &ReconfigRequest| {
        service.binding(&req.client_name).as_deref() == Some(req.device_id.as_str())
    })
}

/// Wires a placement service into a cluster: installs the admission hook
/// that intercepts instance creation (allocating a device, injecting
/// `DEVICE_MANAGER_ADDRESS` and the shm volume, forcing the host) and
/// spawns a watcher that releases bindings on pod deletion.
pub fn attach_placement(cluster: &Cluster, service: Arc<dyn PlacementService>) {
    service.bind_cluster(cluster);
    let admission = service.clone();
    cluster.set_admission_hook(Arc::new(move |spec| {
        let instance = spec.id.to_string();
        let placement = admission
            .place_instance(&instance, &spec.function)
            .map_err(|e| e.to_string())?;
        spec.env
            .insert(ENV_DEVICE_MANAGER.to_string(), placement.device_id.clone());
        spec.volumes
            .push(format!("{SHM_VOLUME_PREFIX}{}", placement.device_id));
        spec.node = Some(placement.node.clone());
        Ok(())
    }));
    let mut watch = cluster.watch();
    std::thread::Builder::new()
        .name("bf-registry-watch".to_string())
        .spawn(move || {
            while let Some(event) = watch.next_blocking() {
                if let WatchEvent::Deleted(id) = event {
                    service.release_instance(&id.to_string());
                }
            }
        })
        // bf-lint: allow(panic): thread-spawn failure is OS resource
        // exhaustion at registry startup — no caller can recover.
        .expect("spawn registry watch thread");
}
