//! Device queries: what a function instance asks of the allocator.

/// The compatibility requirements a function declares (vendor, platform,
/// accelerator) — the inputs of `filterby_compatibility` in Algorithm 1.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeviceQuery {
    /// Required vendor substring (`None` = any).
    pub vendor: Option<String>,
    /// Required platform substring (`None` = any).
    pub platform: Option<String>,
    /// Required accelerator: the bitstream id the function's kernels live
    /// in (`None` = any).
    pub accelerator: Option<String>,
}

impl DeviceQuery {
    /// Matches any device.
    pub fn any() -> Self {
        Self::default()
    }

    /// Requires a specific accelerator bitstream.
    pub fn for_accelerator(bitstream: impl Into<String>) -> Self {
        DeviceQuery {
            accelerator: Some(bitstream.into()),
            ..Default::default()
        }
    }

    /// Additionally requires a vendor.
    pub fn with_vendor(mut self, vendor: impl Into<String>) -> Self {
        self.vendor = Some(vendor.into());
        self
    }

    /// Additionally requires a platform.
    pub fn with_platform(mut self, platform: impl Into<String>) -> Self {
        self.platform = Some(platform.into());
        self
    }

    /// Hardware compatibility: vendor and platform match (the accelerator
    /// is *soft* — a mismatch is fixable by reconfiguration and only
    /// affects ordering, per Algorithm 1).
    pub fn hardware_matches(&self, vendor: &str, platform: &str) -> bool {
        let v_ok = self.vendor.as_deref().is_none_or(|v| vendor.contains(v));
        let p_ok = self
            .platform
            .as_deref()
            .is_none_or(|p| platform.contains(p));
        v_ok && p_ok
    }

    /// Accelerator compatibility: the device's configured bitstream serves
    /// this query without reconfiguration.
    pub fn accelerator_matches(&self, bitstream: Option<&str>) -> bool {
        match (&self.accelerator, bitstream) {
            (None, _) => true,
            (Some(want), Some(have)) => want == have,
            (Some(_), None) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_matches_everything() {
        let q = DeviceQuery::any();
        assert!(q.hardware_matches("Intel", "FPGA SDK"));
        assert!(q.accelerator_matches(None));
        assert!(q.accelerator_matches(Some("whatever")));
    }

    #[test]
    fn hardware_filters_are_substrings() {
        let q = DeviceQuery::any()
            .with_vendor("Intel")
            .with_platform("FPGA");
        assert!(q.hardware_matches("Intel Corp.", "Intel(R) FPGA SDK"));
        assert!(!q.hardware_matches("Xilinx", "Vitis"));
        assert!(!q.hardware_matches("Intel Corp.", "Vitis"));
    }

    #[test]
    fn accelerator_match_requires_exact_bitstream() {
        let q = DeviceQuery::for_accelerator("spector-sobel");
        assert!(q.accelerator_matches(Some("spector-sobel")));
        assert!(!q.accelerator_matches(Some("spector-mm")));
        assert!(
            !q.accelerator_matches(None),
            "a blank board needs programming"
        );
    }
}
