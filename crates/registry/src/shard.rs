//! Sharded, federated control plane: N independent [`Registry`] shards
//! behind one [`PlacementService`], partitioned by rendezvous hashing.
//!
//! Devices are assigned to shards by highest-random-weight (HRW) hashing
//! of their id against the live shard-id set: every observer computes the
//! same owner from the membership alone, and changing membership by one
//! shard moves only the ~1/N of devices whose argmax changed — all of
//! them to (or from) the joining (leaving) shard. Functions are
//! broadcast to every shard; bindings live in the shard that owns their
//! device and move with it on rebalance, unchanged — a rebalance is a
//! bookkeeping transfer, never a re-placement or a reprogram.
//!
//! Placement routes through [`FederatedAllocator`]: a stateless ranking
//! over per-shard [`ShardLoadSummary`] aggregates that prefers shards
//! already configured with (then warm for) the function's accelerator —
//! the funcX-style thin coordinator, with Cloudburst-style locality
//! hints so cross-shard routing doesn't forfeit bitstream-cache wins.

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::sync::Arc;

use bf_cluster::Cluster;
use bf_devmgr::DeviceManager;
use bf_model::NodeId;
use bf_race::sync::Mutex;

use crate::allocation::{Allocation, AllocationPolicy, DeviceView};
use crate::device::RegistryDevice;
use crate::query::DeviceQuery;
use crate::registry::{FunctionRecord, Registry, RegistryError};
use crate::service::{ContentionReport, PlacementOutcomes, PlacementService, ShardLoadSummary};

/// FNV-1a over the shard id and key (separated so `("ab","c")` and
/// `("a","bc")` score differently), run through a splitmix64-style
/// finalizer: raw FNV leaves the high bits — which the HRW argmax is
/// decided by — barely mixed for short suffix-varying keys.
fn hrw_score(shard_id: &str, key: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for byte in shard_id.bytes().chain([0xff]).chain(key.bytes()) {
        h ^= u64::from(byte);
        h = h.wrapping_mul(PRIME);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    h
}

/// The shard owning `key` under rendezvous hashing: the index whose
/// `(score, id)` pair is highest. Pure in the membership set — every
/// caller computes the same owner with no coordination.
pub fn hrw_owner(shard_ids: &[String], key: &str) -> Option<usize> {
    shard_ids
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| {
            (hrw_score(a, key), a.as_str()).cmp(&(hrw_score(b, key), b.as_str()))
        })
        .map(|(i, _)| i)
}

/// Stateless federated router: ranks shards for a placement from their
/// aggregate summaries alone.
///
/// Within the **load bound** — mean federation load scaled by
/// [`FederatedAllocator::LOAD_BOUND`], plus one binding of slack — the
/// ranking is warmth first (configured > warm > neither, mirroring
/// Algorithm 1's accelerator-warmth ordering one level up), then least
/// load, then shard index for determinism. Shards above the bound rank
/// strictly after every in-bound shard regardless of warmth: unbounded
/// warmth affinity would funnel every popular accelerator onto the one
/// shard that configured it first and rebuild the single-registry
/// convoy the federation exists to break up.
pub struct FederatedAllocator;

impl FederatedAllocator {
    /// A shard is routable-by-warmth while its load (bindings per
    /// device) is at most `mean * LOAD_BOUND + 1.0` — the bounded-load
    /// rule from consistent-hashing-with-bounded-loads, applied to
    /// warmth affinity.
    pub const LOAD_BOUND: f64 = 1.1;

    /// Shard indexes in routing order for `accelerator`.
    pub fn route(accelerator: Option<&str>, summaries: &[ShardLoadSummary]) -> Vec<usize> {
        let devices: usize = summaries.iter().map(|s| s.devices).sum();
        let bindings: usize = summaries.iter().map(|s| s.bindings).sum();
        let mean = if devices == 0 {
            0.0
        } else {
            bindings as f64 / devices as f64
        };
        let bound = mean * Self::LOAD_BOUND + 1.0;
        let mut order: Vec<usize> = (0..summaries.len()).collect();
        order.sort_by(|&a, &b| {
            let (sa, sb) = (&summaries[a], &summaries[b]);
            let (ia, ib) = (sa.load() <= bound, sb.load() <= bound);
            ib.cmp(&ia)
                .then(sb.warmth_for(accelerator).cmp(&sa.warmth_for(accelerator)))
                .then(sa.load().partial_cmp(&sb.load()).unwrap_or(Ordering::Equal))
                .then(sa.shard.cmp(&sb.shard))
        });
        order
    }
}

/// Shard membership plus the shard handles themselves. Guarded by the
/// `shard_map` lock (ranked above `federation` and every registry lock).
struct ShardMapState {
    /// Stable shard ids, position-aligned with `shards`. HRW owners are
    /// a pure function of this vector's contents.
    ids: Vec<String>,
    shards: Vec<Registry>,
    /// Monotonic counter so re-added shards get fresh ids.
    next_id: usize,
    cluster: Option<Cluster>,
}

/// Federation-level bookkeeping: which shard holds each instance, and
/// the function catalog to replay into joining shards. Guarded by the
/// `federation` lock, ranked between `shard_map` and the shard registry
/// locks — never acquired while any shard's registry lock is held.
#[derive(Default)]
struct FederationState {
    /// instance name → owning shard id.
    instances: BTreeMap<String, String>,
    /// function name → device query (broadcast on shard join).
    functions: BTreeMap<String, DeviceQuery>,
}

/// N [`Registry`] shards behind the [`PlacementService`] surface.
///
/// Cloning yields another handle to the same federation.
#[derive(Clone)]
pub struct ShardedRegistry {
    shard_map: Arc<Mutex<ShardMapState>>,
    federation: Arc<Mutex<FederationState>>,
    policy: AllocationPolicy,
}

impl ShardedRegistry {
    /// A federation of `shards` empty registries sharing `policy`.
    pub fn new(policy: AllocationPolicy, shards: usize) -> Self {
        let shards = shards.max(1);
        let ids: Vec<String> = (0..shards).map(|i| format!("shard-{i}")).collect();
        let registries: Vec<Registry> = ids.iter().map(|_| Registry::new(policy.clone())).collect();
        ShardedRegistry {
            shard_map: Arc::new(Mutex::new(ShardMapState {
                ids,
                shards: registries,
                next_id: shards,
                cluster: None,
            })),
            federation: Arc::new(Mutex::new(FederationState::default())),
            policy,
        }
    }

    /// Live shard count.
    pub fn shard_count(&self) -> usize {
        self.shard_map.lock().shards.len()
    }

    /// Current shard ids, in index order.
    pub fn shard_ids(&self) -> Vec<String> {
        self.shard_map.lock().ids.clone()
    }

    /// Adds one shard and deterministically rebalances: exactly the
    /// devices whose HRW argmax became the new shard move to it,
    /// bindings riding along. Returns `(shard id, devices moved)`.
    pub fn add_shard(&self) -> (String, u64) {
        let mut state = self.shard_map.lock();
        let id = format!("shard-{}", state.next_id);
        state.next_id += 1;
        let registry = Registry::new(self.policy.clone());
        // Replay the function catalog so the new shard can place and
        // import bindings for every known function.
        let functions: Vec<(String, DeviceQuery)> = {
            let federation = self.federation.lock();
            federation
                .functions
                .iter()
                .map(|(n, q)| (n.clone(), q.clone()))
                .collect()
        };
        for (name, query) in functions {
            registry.register_function(name, query);
        }
        if let Some(cluster) = &state.cluster {
            registry.bind_cluster_handle(cluster);
        }
        state.ids.push(id.clone());
        state.shards.push(registry);
        let moves = Self::rebalance_locked(&mut state, &self.federation);
        (id, moves)
    }

    /// Removes the shard named `id`, migrating every one of its devices
    /// (bindings included) to the surviving HRW owners. Returns the
    /// number of devices moved, or `None` when `id` is unknown or the
    /// last shard.
    pub fn remove_shard(&self, id: &str) -> Option<u64> {
        let mut state = self.shard_map.lock();
        if state.shards.len() <= 1 {
            return None;
        }
        let idx = state.ids.iter().position(|i| i == id)?;
        state.ids.remove(idx);
        let removed = state.shards.remove(idx);
        let mut moves = 0u64;
        for device_id in removed.device_ids() {
            if let Some(export) = removed.export_device(&device_id) {
                moves += 1;
                let moved: Vec<String> = export.bindings.iter().map(|(i, _)| i.clone()).collect();
                // Owner under the *new* membership; the map is non-empty.
                if let Some(owner) = hrw_owner(&state.ids, &device_id) {
                    state.shards[owner].import_device(export);
                    let owner_id = state.ids[owner].clone();
                    let mut federation = self.federation.lock();
                    for instance in moved {
                        federation.instances.insert(instance, owner_id.clone());
                    }
                }
            }
        }
        Some(moves)
    }

    /// Moves every device to its HRW owner under the current membership.
    /// Holds `shard_map` throughout; shard registry locks are taken one
    /// export/import at a time and `federation` only between them.
    fn rebalance_locked(state: &mut ShardMapState, federation: &Mutex<FederationState>) -> u64 {
        let mut moves = 0u64;
        for src in 0..state.shards.len() {
            for device_id in state.shards[src].device_ids() {
                let owner = match hrw_owner(&state.ids, &device_id) {
                    Some(owner) => owner,
                    None => continue,
                };
                if owner == src {
                    continue;
                }
                if let Some(export) = state.shards[src].export_device(&device_id) {
                    moves += 1;
                    let moved: Vec<String> =
                        export.bindings.iter().map(|(i, _)| i.clone()).collect();
                    state.shards[owner].import_device(export);
                    let owner_id = state.ids[owner].clone();
                    let mut federation = federation.lock();
                    for instance in moved {
                        federation.instances.insert(instance, owner_id.clone());
                    }
                }
            }
        }
        moves
    }

    /// The shard index currently responsible for `device_id`.
    fn owner_of(state: &ShardMapState, device_id: &str) -> Option<usize> {
        hrw_owner(&state.ids, device_id)
    }
}

impl PlacementService for ShardedRegistry {
    fn register_device_handle(&self, device: Arc<dyn RegistryDevice>) {
        let state = self.shard_map.lock();
        if let Some(owner) = Self::owner_of(&state, device.device_id()) {
            // bf-taint: sanitized(hrw_owner enumerates state.ids, position-aligned with state.shards, so owner < shards.len())
            state.shards[owner].register_device_handle(device);
        }
    }

    fn register_function(&self, name: &str, query: DeviceQuery) {
        let state = self.shard_map.lock();
        for shard in &state.shards {
            shard.register_function(name, query.clone());
        }
        self.federation
            .lock()
            .functions
            .insert(name.to_string(), query);
    }

    fn function(&self, name: &str) -> Option<FunctionRecord> {
        let state = self.shard_map.lock();
        let mut merged: Option<FunctionRecord> = None;
        for shard in &state.shards {
            if let Some(record) = shard.function(name) {
                match &mut merged {
                    None => merged = Some(record),
                    Some(m) => m.instances.extend(record.instances),
                }
            }
        }
        merged
    }

    fn manager(&self, device_id: &str) -> Option<DeviceManager> {
        let state = self.shard_map.lock();
        let owner = Self::owner_of(&state, device_id)?;
        // bf-taint: sanitized(hrw_owner enumerates state.ids, position-aligned with state.shards, so owner < shards.len())
        state.shards[owner].manager(device_id)
    }

    fn device_ids(&self) -> Vec<String> {
        let state = self.shard_map.lock();
        let mut ids = Vec::new();
        for shard in &state.shards {
            ids.extend(shard.device_ids());
        }
        ids.sort_unstable();
        ids
    }

    fn device_views(&self) -> Vec<DeviceView> {
        let state = self.shard_map.lock();
        let mut views = Vec::new();
        for shard in &state.shards {
            views.extend(shard.device_views());
        }
        views.sort_unstable_by(|a, b| a.id.cmp(&b.id));
        views
    }

    fn device_nodes(&self) -> Vec<NodeId> {
        let state = self.shard_map.lock();
        let mut nodes = Vec::new();
        for shard in &state.shards {
            nodes.extend(shard.device_nodes());
        }
        nodes
    }

    fn binding(&self, instance: &str) -> Option<String> {
        let state = self.shard_map.lock();
        let shard_id = self.federation.lock().instances.get(instance).cloned()?;
        let idx = state.ids.iter().position(|i| *i == shard_id)?;
        state.shards[idx].binding(instance)
    }

    fn place_instance(&self, instance: &str, function: &str) -> Result<Allocation, RegistryError> {
        let state = self.shard_map.lock();
        let accelerator = {
            let federation = self.federation.lock();
            match federation.functions.get(function) {
                Some(query) => query.accelerator.clone(),
                None => return Err(RegistryError::UnknownFunction(function.to_string())),
            }
        };
        // Aggregate summaries only: the federation layer never reads a
        // shard's per-device state to route.
        let summaries: Vec<ShardLoadSummary> = state
            .shards
            .iter()
            .enumerate()
            .map(|(i, shard)| shard.load_summary(i))
            .collect();
        let mut last_err = None;
        for idx in FederatedAllocator::route(accelerator.as_deref(), &summaries) {
            match state.shards[idx].place_instance(instance, function) {
                Ok(allocation) => {
                    let shard_id = state.ids[idx].clone();
                    self.federation
                        .lock()
                        .instances
                        .insert(instance.to_string(), shard_id);
                    return Ok(allocation);
                }
                // This shard can't host it (no device passed the filter);
                // fall through to the next-ranked shard.
                Err(e @ RegistryError::Allocate(_)) => last_err = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last_err.unwrap_or_else(|| RegistryError::UnknownFunction(function.to_string())))
    }

    fn release_instance(&self, instance: &str) {
        let state = self.shard_map.lock();
        let shard_id = self.federation.lock().instances.remove(instance);
        if let Some(shard_id) = shard_id {
            if let Some(idx) = state.ids.iter().position(|i| *i == shard_id) {
                state.shards[idx].release_instance(instance);
            }
        }
    }

    fn reconfigure_device(&self, device_id: &str, bitstream: &str) -> Result<(), RegistryError> {
        let state = self.shard_map.lock();
        let owner = Self::owner_of(&state, device_id)
            .ok_or_else(|| RegistryError::UnknownDevice(device_id.to_string()))?;
        // bf-taint: sanitized(hrw_owner enumerates state.ids, position-aligned with state.shards, so owner < shards.len())
        state.shards[owner].reconfigure_device(device_id, bitstream)
    }

    fn handle_device_failure(&self, device_id: &str) -> Result<Vec<String>, RegistryError> {
        let state = self.shard_map.lock();
        let owner = Self::owner_of(&state, device_id)
            .ok_or_else(|| RegistryError::UnknownDevice(device_id.to_string()))?;
        // bf-taint: sanitized(hrw_owner enumerates state.ids, position-aligned with state.shards, so owner < shards.len())
        let tenants = state.shards[owner].handle_device_failure(device_id)?;
        let mut federation = self.federation.lock();
        for t in &tenants {
            federation.instances.remove(t);
        }
        Ok(tenants)
    }

    fn gather_metrics(&self) {
        let state = self.shard_map.lock();
        for shard in &state.shards {
            shard.gather_metrics();
        }
    }

    fn load_summaries(&self) -> Vec<ShardLoadSummary> {
        let state = self.shard_map.lock();
        state
            .shards
            .iter()
            .enumerate()
            .map(|(i, shard)| shard.load_summary(i))
            .collect()
    }

    fn placement_outcomes(&self) -> PlacementOutcomes {
        let state = self.shard_map.lock();
        let mut total = PlacementOutcomes::default();
        for shard in &state.shards {
            let o = shard.placement_outcomes();
            total.configured += o.configured;
            total.warm += o.warm;
            total.cold += o.cold;
        }
        total
    }

    fn contention(&self) -> Vec<ContentionReport> {
        let state = self.shard_map.lock();
        state
            .shards
            .iter()
            .enumerate()
            .map(|(i, shard)| shard.contention(i))
            .collect()
    }

    fn bind_cluster(&self, cluster: &Cluster) {
        let mut state = self.shard_map.lock();
        state.cluster = Some(cluster.clone());
        for shard in &state.shards {
            shard.bind_cluster_handle(cluster);
        }
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;
    use std::sync::Arc;

    use bf_model::{node_a, node_b};
    use proptest::prelude::*;

    use super::*;
    use crate::device::StaticDevice;
    use crate::query::DeviceQuery;

    fn shard_ids(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("shard-{i}")).collect()
    }

    #[test]
    fn hrw_assignment_is_deterministic_and_total() {
        let ids = shard_ids(4);
        for key in ["fpga-0", "fpga-1", "dev", ""] {
            let a = hrw_owner(&ids, key);
            let b = hrw_owner(&ids, key);
            assert_eq!(a, b);
            assert!(a.is_some_and(|i| i < ids.len()));
        }
        assert_eq!(hrw_owner(&[], "fpga-0"), None);
    }

    #[test]
    fn hrw_spreads_keys_near_uniformly() {
        let ids = shard_ids(4);
        let mut counts = [0usize; 4];
        for i in 0..1000 {
            // bf-lint: allow(panic): four shards are always non-empty.
            let owner = hrw_owner(&ids, &format!("fpga-{i}")).expect("non-empty map");
            counts[owner] += 1;
        }
        for c in counts {
            // Mean 250/shard: a 2x band catches gross skew without
            // flaking on hash variance.
            assert!((125..=375).contains(&c), "skewed shard load: {counts:?}");
        }
    }

    #[test]
    fn adding_one_shard_moves_about_one_in_n_keys() {
        let before = shard_ids(4);
        let mut after = before.clone();
        after.push("shard-4".to_string());
        let keys: Vec<String> = (0..1000).map(|i| format!("fpga-{i}")).collect();
        let mut moved = 0usize;
        for key in &keys {
            if hrw_owner(&before, key) != hrw_owner(&after, key) {
                moved += 1;
            }
        }
        // Expected 1000/5 = 200 moves; the band is generous but rules
        // out both full reshuffles and no-op maps.
        assert!((100..=300).contains(&moved), "moved {moved} of 1000");
    }

    proptest! {
        /// Joining a shard only ever moves keys *to* the joiner: every
        /// key whose owner changed is owned by the new shard after.
        #[test]
        fn join_moves_keys_only_to_the_new_shard(
            n in 1usize..8,
            keys in proptest::collection::vec("[a-z0-9]{1,12}", 1..64),
        ) {
            let before = shard_ids(n);
            let mut after = before.clone();
            after.push("shard-new".to_string());
            for key in &keys {
                let old = hrw_owner(&before, key);
                let new = hrw_owner(&after, key);
                if new != old {
                    prop_assert_eq!(new, Some(n), "key {} moved to an old shard", key);
                }
            }
        }

        /// Leaving only moves the leaver's keys: a key not owned by the
        /// removed shard keeps its owner (by id) across the removal.
        #[test]
        fn leave_moves_only_the_leavers_keys(
            n in 2usize..8,
            removed in 0usize..8,
            keys in proptest::collection::vec("[a-z0-9]{1,12}", 1..64),
        ) {
            let removed = removed % n;
            let before = shard_ids(n);
            let mut after = before.clone();
            let removed_id = after.remove(removed);
            for key in &keys {
                // bf-lint: allow(panic): both maps are non-empty.
                let old = hrw_owner(&before, key).expect("non-empty");
                let new = hrw_owner(&after, key).expect("non-empty");
                if before[old] != removed_id {
                    prop_assert_eq!(&after[new], &before[old], "key {} switched owner", key);
                }
            }
        }
    }

    fn sharded_with_devices(shards: usize, devices: usize) -> ShardedRegistry {
        let sharded = ShardedRegistry::new(AllocationPolicy::paper(), shards);
        for i in 0..devices {
            let node = if i % 2 == 0 { node_a() } else { node_b() };
            sharded.register_device_handle(
                StaticDevice::new(format!("fpga-{i}"), node, Some("blank")).handle(),
            );
        }
        sharded
    }

    #[test]
    fn rebalance_moves_devices_and_bindings_together() {
        let sharded = sharded_with_devices(2, 8);
        sharded.register_function("sobel", DeviceQuery::for_accelerator("sobel-bs"));
        for i in 0..8 {
            // bf-lint: allow(panic): eight blank devices always place.
            sharded
                .place_instance(&format!("inst-{i}"), "sobel")
                .expect("placement succeeds");
        }
        let bound_before: BTreeMap<String, String> = (0..8)
            .map(|i| {
                let inst = format!("inst-{i}");
                // bf-lint: allow(panic): placed above.
                let dev = sharded.binding(&inst).expect("bound");
                (inst, dev)
            })
            .collect();
        let (_, joined_moves) = sharded.add_shard();
        let removed = sharded.shard_ids()[0].clone();
        let removed_moves = sharded.remove_shard(&removed);
        assert!(removed_moves.is_some());
        assert!(joined_moves <= 8);
        // Every binding still resolves, to the same device, through the
        // federation index — rebalance is pure bookkeeping.
        for (inst, dev) in bound_before {
            assert_eq!(sharded.binding(&inst).as_ref(), Some(&dev));
        }
        assert_eq!(sharded.device_ids().len(), 8);
    }

    #[test]
    fn removing_the_last_shard_is_refused() {
        let sharded = sharded_with_devices(1, 2);
        let id = sharded.shard_ids()[0].clone();
        assert_eq!(sharded.remove_shard(&id), None);
        assert_eq!(sharded.device_ids().len(), 2);
    }

    #[test]
    fn federated_routing_prefers_configured_then_warm_shards() {
        let mut cold = ShardLoadSummary {
            shard: 0,
            devices: 4,
            bindings: 0,
            ..ShardLoadSummary::default()
        };
        let mut warm = cold.clone();
        warm.shard = 1;
        warm.warm.insert("sobel-bs".to_string());
        let mut configured = cold.clone();
        configured.shard = 2;
        configured.configured.insert("sobel-bs".to_string());
        cold.bindings = 0;
        let order = FederatedAllocator::route(Some("sobel-bs"), &[cold, warm, configured]);
        assert_eq!(order, vec![2, 1, 0]);
    }

    #[test]
    fn routing_breaks_warmth_ties_by_load_then_index() {
        let empty = |shard: usize, devices: usize, bindings: usize| ShardLoadSummary {
            shard,
            devices,
            bindings,
            ..ShardLoadSummary::default()
        };
        let order = FederatedAllocator::route(
            Some("x"),
            &[
                empty(0, 2, 4),
                empty(1, 2, 0),
                empty(2, 2, 0),
                empty(3, 0, 0),
            ],
        );
        // Loaded shard 0 drops behind idle 1 and 2; the empty shard
        // (infinite load) sorts last.
        assert_eq!(order, vec![1, 2, 0, 3]);
    }
}
