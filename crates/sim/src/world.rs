//! The simulated cluster state and the per-request event chain.
//!
//! Each request walks the same path the real system walks: gateway
//! forward → function host processing → per-task payload staging and
//! control hop → FIFO execution on the device → completion hop →
//! response. Devices execute one operation at a time; cross-tenant
//! contention is resolved strictly in virtual-time arrival order, which is
//! exactly what the Device Manager's central queue does.

use bf_metrics::BusyTracker;
use bf_model::{NodeSpec, VirtualDuration, VirtualTime};
use bf_rpc::PathCosts;
use bf_serverless::{ClosedLoopPacer, Invocation};
use bf_simkit::{Engine, Samples, SimRng};
use bf_workloads::{OpProfile, RequestProfile};

/// How a function reaches its device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum PathMode {
    /// Direct PCIe (the Native baseline): no control hops, no extra copy.
    Native,
    /// Through a Device Manager with the given remoting costs.
    Remote(PathCosts),
}

impl PathMode {
    fn hop(&self) -> VirtualDuration {
        match self {
            PathMode::Native => VirtualDuration::ZERO,
            PathMode::Remote(costs) => costs.control_hop(),
        }
    }

    fn outbound(&self, bytes: u64) -> VirtualDuration {
        match self {
            PathMode::Native => VirtualDuration::ZERO,
            PathMode::Remote(_) if bytes == 0 => VirtualDuration::ZERO,
            PathMode::Remote(costs) => costs.outbound_payload_cost(bytes),
        }
    }

    fn inbound(&self, bytes: u64) -> VirtualDuration {
        match self {
            PathMode::Native => VirtualDuration::ZERO,
            PathMode::Remote(costs) if bytes == 0 => VirtualDuration::ZERO,
            PathMode::Remote(costs) => costs.inbound_payload_cost(bytes),
        }
    }
}

pub(crate) struct SimDevice {
    pub id: String,
    pub node: NodeSpec,
    /// One entry per accelerator region (1 = pure time-sharing). Each slot
    /// is a serial server with its own busy horizon and busy accounting.
    pub slot_busy_until: Vec<VirtualTime>,
    pub slot_busy: Vec<BusyTracker>,
    /// Kernel slowdown under space-sharing (area cost of splitting).
    pub kernel_slowdown: f64,
}

impl SimDevice {
    pub fn with_slots(
        id: impl Into<String>,
        node: NodeSpec,
        slots: u32,
        kernel_slowdown: f64,
    ) -> Self {
        assert!(slots >= 1, "a device needs at least one region");
        SimDevice {
            id: id.into(),
            node,
            slot_busy_until: vec![VirtualTime::ZERO; slots as usize],
            slot_busy: (0..slots).map(|_| BusyTracker::new()).collect(),
            kernel_slowdown,
        }
    }

    fn op_duration(&self, op: &OpProfile) -> VirtualDuration {
        match op {
            OpProfile::Write { bytes } | OpProfile::Read { bytes } => {
                self.node.pcie().transfer_time(*bytes)
            }
            OpProfile::Kernel { duration } => duration.mul_f64(self.kernel_slowdown),
        }
    }

    /// The region that frees up first (FIFO dispatch across regions).
    fn best_slot(&self) -> usize {
        self.slot_busy_until
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Total busy time caused by `owner` in `[from, to)`, across regions.
    pub fn busy_of_in(&self, from: VirtualTime, to: VirtualTime, owner: &str) -> f64 {
        self.slot_busy
            .iter()
            .map(|b| b.utilization_of(from, to, owner))
            .sum()
    }

    /// Total busy fraction in `[from, to)` across regions (may exceed 1.0
    /// with multiple regions).
    pub fn utilization_in(&self, from: VirtualTime, to: VirtualTime) -> f64 {
        self.slot_busy.iter().map(|b| b.utilization(from, to)).sum()
    }
}

pub(crate) struct SimFunction {
    pub name: String,
    pub device: usize,
    pub target: f64,
    pub pacer: ClosedLoopPacer,
    pub profile: RequestProfile,
    pub path: PathMode,
    pub latencies: Samples,
    pub processed: u64,
}

pub(crate) struct World {
    pub devices: Vec<SimDevice>,
    pub functions: Vec<SimFunction>,
    pub rng: SimRng,
    pub jitter: f64,
    pub gateway_forward: VirtualDuration,
    pub response_overhead: VirtualDuration,
    pub window_start: VirtualTime,
    pub horizon: VirtualTime,
}

/// Schedules a request issue for function `f_idx` at `issue`.
pub(crate) fn schedule_request(engine: &mut Engine<World>, f_idx: usize, issue: VirtualTime) {
    engine.schedule_at(issue, move |world, engine| {
        begin_request(world, engine, f_idx)
    });
}

fn begin_request(world: &mut World, engine: &mut Engine<World>, f_idx: usize) {
    // The typed request–response contract the direct-mode gateway speaks:
    // the invocation carries its issue instant and payload size through
    // the whole event chain instead of a bare timestamp.
    let invocation = Invocation::at(engine.now())
        .with_payload_bytes(world.functions[f_idx].profile.bytes_moved());
    let node = world.devices[world.functions[f_idx].device].node.clone();
    let j = world.rng.jitter(world.jitter);
    let ready = invocation.issued_at + world.gateway_forward + node.host_overhead().mul_f64(j);
    submit_task(world, engine, f_idx, 0, ready, invocation);
}

fn submit_task(
    world: &mut World,
    engine: &mut Engine<World>,
    f_idx: usize,
    task_idx: usize,
    ready: VirtualTime,
    invocation: Invocation,
) {
    let f = &world.functions[f_idx];
    let task = &f.profile.tasks[task_idx];
    // Payload staging (shm copy or serialization+copies) happens on the
    // client before the task can travel; the control hop carries it over.
    let arrival = ready + f.path.outbound(task.bytes_written()) + f.path.hop();
    engine.schedule_at(arrival, move |world, engine| {
        exec_task(world, engine, f_idx, task_idx, invocation);
    });
}

fn exec_task(
    world: &mut World,
    engine: &mut Engine<World>,
    f_idx: usize,
    task_idx: usize,
    invocation: Invocation,
) {
    let arrival = engine.now();
    let (dev_idx, name, path, task_count) = {
        let f = &world.functions[f_idx];
        (f.device, f.name.clone(), f.path, f.profile.tasks.len())
    };
    let (end, inbound) = {
        let ops = world.functions[f_idx].profile.tasks[task_idx].ops.clone();
        let read_bytes = world.functions[f_idx].profile.tasks[task_idx].bytes_read();
        let device = &mut world.devices[dev_idx];
        // FIFO dispatch onto the earliest-free region (one region = the
        // paper's pure time-sharing; more = the space-sharing ablation).
        let slot = device.best_slot();
        let start = arrival.max(device.slot_busy_until[slot]);
        let mut cursor = start;
        for op in &ops {
            cursor += device.op_duration(op);
        }
        if cursor > start {
            device.slot_busy[slot].record(start, cursor, &name);
        }
        device.slot_busy_until[slot] = cursor;
        (cursor, path.inbound(read_bytes))
    };
    let observed = end + path.hop() + inbound;
    if task_idx + 1 < task_count {
        submit_task(world, engine, f_idx, task_idx + 1, observed, invocation);
    } else {
        let done = observed + world.response_overhead + world.gateway_forward;
        engine.schedule_at(done, move |world, engine| {
            finish_request(world, engine, f_idx, invocation)
        });
    }
}

fn finish_request(
    world: &mut World,
    engine: &mut Engine<World>,
    f_idx: usize,
    invocation: Invocation,
) {
    let done = engine.now();
    let horizon = world.horizon;
    let window_start = world.window_start;
    let f = &mut world.functions[f_idx];
    if invocation.issued_at >= window_start && done <= horizon {
        f.latencies
            .record((done - invocation.issued_at).as_millis_f64());
        f.processed += 1;
    }
    let next = f.pacer.next_issue(done);
    if next < horizon {
        schedule_request(engine, f_idx, next);
    }
}
