//! Scenario configuration for the multi-tenant cluster experiments.

use bf_model::{DataPathKind, VirtualDuration};
use bf_serverless::{LoadLevel, UseCase};
use bf_workloads::RequestProfile;

/// How functions reach the FPGAs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Deployment {
    /// BlastFunction sharing: five functions over three devices through
    /// Device Managers, with the chosen bulk data path.
    BlastFunction {
        /// gRPC or shared memory.
        data_path: DataPathKind,
    },
    /// Native baseline: one function per device, direct PCIe access
    /// (only the first three Table I columns apply).
    Native,
}

impl Deployment {
    /// The deployment label used in the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            Deployment::BlastFunction {
                data_path: DataPathKind::SharedMemory,
            } => "BlastFunction",
            Deployment::BlastFunction {
                data_path: DataPathKind::Grpc,
            } => "BlastFunction (gRPC)",
            Deployment::Native => "Native",
        }
    }

    /// Number of functions this deployment runs (paper §IV-B: five for
    /// BlastFunction, three for Native).
    pub fn function_count(&self) -> usize {
        match self {
            Deployment::BlastFunction { .. } => 5,
            Deployment::Native => 3,
        }
    }
}

/// One multi-tenant experiment (a row group of Tables II–IV).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// Which benchmark function.
    pub use_case: UseCase,
    /// Which Table I load level.
    pub level: LoadLevel,
    /// BlastFunction sharing or the native baseline.
    pub deployment: Deployment,
    /// Measurement window (after warm-up).
    pub duration: VirtualDuration,
    /// Warm-up excluded from statistics.
    pub warmup: VirtualDuration,
    /// RNG seed (host-side jitter).
    pub seed: u64,
    /// Relative jitter applied to host-side costs (0 disables).
    pub jitter: f64,
    /// Overrides the Algorithm-1 placement with explicit device indices
    /// (0 = node A, 1 = B, 2 = C), for placement ablations.
    pub placement_override: Option<Vec<usize>>,
    /// Overrides the per-request profile, for task-granularity ablations.
    pub profile_override: Option<RequestProfile>,
    /// Space-sharing ablation (the paper's future work): number of
    /// independent accelerator regions per board (1 = the paper's pure
    /// time-sharing).
    pub space_slots: u32,
    /// Kernel slowdown factor under space-sharing: each region holds a
    /// smaller replica of the accelerator, so kernels run slower.
    pub space_kernel_slowdown: f64,
}

impl ScenarioConfig {
    /// The defaults used to regenerate the paper's tables: 60 s of
    /// measurement after 5 s of warm-up, mild (8%) host jitter.
    pub fn new(use_case: UseCase, level: LoadLevel, deployment: Deployment) -> Self {
        ScenarioConfig {
            use_case,
            level,
            deployment,
            duration: VirtualDuration::from_secs(60),
            warmup: VirtualDuration::from_secs(5),
            seed: 0xB1A5_7F00 ^ seed_component(use_case, level, deployment),
            jitter: 0.08,
            placement_override: None,
            profile_override: None,
            space_slots: 1,
            space_kernel_slowdown: 1.0,
        }
    }

    /// Enables the space-sharing ablation: `slots` independent regions per
    /// board, each running kernels `kernel_slowdown`× slower (the area
    /// cost of splitting the accelerator).
    ///
    /// # Panics
    ///
    /// Panics when `slots` is zero or `kernel_slowdown < 1`.
    pub fn with_space_sharing(mut self, slots: u32, kernel_slowdown: f64) -> Self {
        assert!(slots >= 1, "at least one region");
        assert!(kernel_slowdown >= 1.0, "splitting cannot speed a kernel up");
        self.space_slots = slots;
        self.space_kernel_slowdown = kernel_slowdown;
        self
    }

    /// Forces an explicit placement (device index per function).
    pub fn with_placement(mut self, placement: Vec<usize>) -> Self {
        self.placement_override = Some(placement);
        self
    }

    /// Forces a custom per-request profile.
    pub fn with_profile(mut self, profile: RequestProfile) -> Self {
        self.profile_override = Some(profile);
        self
    }

    /// Overrides the measurement duration.
    pub fn with_duration(mut self, duration: VirtualDuration) -> Self {
        self.duration = duration;
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the jitter spread.
    ///
    /// # Panics
    ///
    /// Panics if `jitter` is not in `[0, 1)`.
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        assert!((0.0..1.0).contains(&jitter), "jitter must be in [0, 1)");
        self.jitter = jitter;
        self
    }
}

fn seed_component(use_case: UseCase, level: LoadLevel, deployment: Deployment) -> u64 {
    let u = match use_case {
        UseCase::Sobel => 1,
        UseCase::Mm => 2,
        UseCase::AlexNet => 3,
    };
    let l = match level {
        LoadLevel::Low => 1,
        LoadLevel::Medium => 2,
        LoadLevel::High => 3,
    };
    let d = match deployment {
        Deployment::BlastFunction {
            data_path: DataPathKind::SharedMemory,
        } => 1,
        Deployment::BlastFunction {
            data_path: DataPathKind::Grpc,
        } => 2,
        Deployment::Native => 3,
    };
    (u << 8) | (l << 4) | d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn function_counts_match_the_paper() {
        assert_eq!(
            Deployment::BlastFunction {
                data_path: DataPathKind::SharedMemory
            }
            .function_count(),
            5
        );
        assert_eq!(Deployment::Native.function_count(), 3);
    }

    #[test]
    fn distinct_scenarios_get_distinct_seeds() {
        let a = ScenarioConfig::new(UseCase::Sobel, LoadLevel::Low, Deployment::Native);
        let b = ScenarioConfig::new(UseCase::Mm, LoadLevel::Low, Deployment::Native);
        assert_ne!(a.seed, b.seed);
    }
}
