//! Chrome-trace (Catapult/Perfetto) export of a scenario's device
//! timeline: open the JSON in `chrome://tracing` or <https://ui.perfetto.dev>
//! to see every task every tenant ran on every board region.

use serde::Serialize;

/// One executed task interval on a device region.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TraceSpan {
    /// Device id (`fpga-a`…).
    pub device: String,
    /// Region index (0 for pure time-sharing).
    pub slot: u32,
    /// Function that caused the work.
    pub owner: String,
    /// Start (ms on the virtual timeline).
    pub start_ms: f64,
    /// End (ms).
    pub end_ms: f64,
}

#[derive(Serialize)]
struct ChromeEvent<'a> {
    name: &'a str,
    cat: &'a str,
    ph: &'a str,
    ts: f64,
    #[serde(skip_serializing_if = "Option::is_none")]
    dur: Option<f64>,
    pid: u64,
    tid: u64,
    #[serde(skip_serializing_if = "Option::is_none")]
    args: Option<serde_json::Value>,
}

/// Renders spans in the Chrome trace-event JSON-array format.
///
/// Devices map to processes, regions to threads; a metadata event names
/// each process so the UI shows `fpga-a` instead of `pid 0`.
pub fn to_chrome_trace(spans: &[TraceSpan]) -> String {
    let mut devices: Vec<&str> = spans.iter().map(|s| s.device.as_str()).collect();
    devices.sort_unstable();
    devices.dedup();
    let pid_of = |device: &str| devices.iter().position(|d| *d == device).unwrap_or(0) as u64;

    let mut events = Vec::with_capacity(spans.len() + devices.len());
    for device in &devices {
        events.push(ChromeEvent {
            name: "process_name",
            cat: "__metadata",
            ph: "M",
            ts: 0.0,
            dur: None,
            pid: pid_of(device),
            tid: 0,
            args: Some(serde_json::json!({ "name": device })),
        });
    }
    for span in spans {
        events.push(ChromeEvent {
            name: &span.owner,
            cat: "device",
            ph: "X",
            ts: span.start_ms * 1_000.0, // Chrome traces use microseconds
            dur: Some((span.end_ms - span.start_ms) * 1_000.0),
            pid: pid_of(&span.device),
            tid: u64::from(span.slot),
            args: None,
        });
    }
    // bf-lint: allow(panic): serializing an in-memory event tree is
    // infallible — there is no I/O and no non-finite-only failure path.
    serde_json::to_string_pretty(&events).expect("trace events serialize")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(device: &str, slot: u32, owner: &str, start: f64, end: f64) -> TraceSpan {
        TraceSpan {
            device: device.to_string(),
            slot,
            owner: owner.to_string(),
            start_ms: start,
            end_ms: end,
        }
    }

    #[test]
    fn chrome_trace_contains_metadata_and_spans() {
        let spans = vec![
            span("fpga-a", 0, "sobel-1", 1.0, 3.5),
            span("fpga-b", 0, "sobel-2", 2.0, 4.0),
            span("fpga-b", 1, "sobel-3", 2.0, 4.0),
        ];
        let json = to_chrome_trace(&spans);
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid json");
        let events = parsed.as_array().expect("array");
        // 2 metadata (one per device) + 3 spans.
        assert_eq!(events.len(), 5);
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"sobel-3\""));
        let x_events: Vec<_> = events.iter().filter(|e| e["ph"] == "X").collect();
        assert_eq!(x_events.len(), 3);
        assert_eq!(x_events[0]["ts"], 1_000.0);
        assert_eq!(x_events[0]["dur"], 2_500.0);
    }

    #[test]
    fn empty_trace_is_an_empty_array() {
        let parsed: serde_json::Value =
            serde_json::from_str(&to_chrome_trace(&[])).expect("valid json");
        assert_eq!(parsed.as_array().map(Vec::len), Some(0));
    }
}
