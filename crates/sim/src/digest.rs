//! FNV-1a 64 trace digest — the byte-identical replay certificate shared
//! by the scale and federation harnesses. The algorithm (offset basis,
//! prime, little-endian u64 feeding) is frozen: archived digests in
//! `experiments/` compare against it byte for byte.

/// FNV-1a 64 over an event stream fed as `u64` words.
pub(crate) struct Digest(u64);

impl Digest {
    pub(crate) fn new() -> Digest {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// Feeds a string by length + bytes (length first so `("ab","c")`
    /// and `("a","bc")` digest differently).
    pub(crate) fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        for b in s.bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    pub(crate) fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}
