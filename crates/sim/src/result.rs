//! Scenario results, shaped like the rows of Tables II–IV.

use bf_model::VirtualDuration;
use serde::Serialize;

use crate::trace::{to_chrome_trace, TraceSpan};

/// One row of a Table II-style per-function breakdown.
#[derive(Debug, Clone, Serialize)]
pub struct FunctionResult {
    /// Function name (`sobel-1`, …).
    pub function: String,
    /// Node hosting its device.
    pub node: String,
    /// Device id.
    pub device: String,
    /// FPGA time utilization this function caused on its device, as a
    /// fraction of the measurement window.
    pub utilization: f64,
    /// Mean end-to-end latency (ms).
    pub mean_latency_ms: f64,
    /// 95th-percentile latency (ms).
    pub p95_latency_ms: f64,
    /// Achieved request rate (rq/s).
    pub processed_rps: f64,
    /// Target request rate (rq/s).
    pub target_rps: f64,
}

impl FunctionResult {
    /// Relative shortfall versus the target, in percent (the quantity the
    /// paper discusses as "difference w.r.t. the target").
    pub fn target_miss_pct(&self) -> f64 {
        if self.target_rps == 0.0 {
            return 0.0;
        }
        ((self.target_rps - self.processed_rps) / self.target_rps * 100.0).max(0.0)
    }
}

/// Aggregate row (Tables III–IV).
#[derive(Debug, Clone, Serialize)]
pub struct Aggregate {
    /// Sum of per-device utilizations, in percent ("overall maximum 300%").
    pub utilization_pct: f64,
    /// Processed-weighted mean latency (ms).
    pub mean_latency_ms: f64,
    /// Total achieved rate (rq/s).
    pub processed_rps: f64,
    /// Total target rate (rq/s).
    pub target_rps: f64,
}

impl Aggregate {
    /// Relative shortfall versus the target, in percent.
    pub fn target_miss_pct(&self) -> f64 {
        if self.target_rps == 0.0 {
            return 0.0;
        }
        ((self.target_rps - self.processed_rps) / self.target_rps * 100.0).max(0.0)
    }
}

/// The outcome of one scenario run.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioResult {
    /// Deployment label ("BlastFunction" / "Native").
    pub deployment: String,
    /// Use-case label ("Sobel" / "MM" / "AlexNet").
    pub use_case: String,
    /// Load-level label.
    pub level: String,
    /// Measurement window.
    pub window: VirtualDuration,
    /// Per-function rows.
    pub functions: Vec<FunctionResult>,
    /// Per-device total utilization fractions, keyed by device id.
    pub device_utilization: Vec<(String, f64)>,
    /// The aggregate row.
    pub aggregate: Aggregate,
    /// Every task interval executed on every device region (the material
    /// for [`ScenarioResult::to_chrome_trace`]). Skipped by serde — table
    /// artifacts stay small; export the trace explicitly when needed.
    #[serde(skip)]
    pub timeline: Vec<TraceSpan>,
}

impl ScenarioResult {
    /// Renders the device timeline in the Chrome trace-event format; open
    /// it in `chrome://tracing` or Perfetto.
    pub fn to_chrome_trace(&self) -> String {
        to_chrome_trace(&self.timeline)
    }

    /// Renders a Table II-style block.
    pub fn render_per_function(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<16} {:<12} {:<10} {:>6} {:>8} {:>10} {:>11} {:>11}\n",
            "Type", "Config", "Function", "Node", "Util.", "Latency", "Processed", "Target"
        ));
        for f in &self.functions {
            out.push_str(&format!(
                "{:<16} {:<12} {:<10} {:>6} {:>7.2}% {:>8.2}ms {:>6.2} rq/s {:>6.2} rq/s\n",
                self.deployment,
                self.level,
                f.function,
                f.node,
                f.utilization * 100.0,
                f.mean_latency_ms,
                f.processed_rps,
                f.target_rps,
            ));
        }
        out
    }

    /// Renders a Table III/IV-style aggregate row.
    pub fn render_aggregate(&self) -> String {
        format!(
            "{:<16} {:<12} {:>10.2}% {:>9.2}ms {:>7.2} rq/s {:>7.2} rq/s\n",
            self.deployment,
            self.level,
            self.aggregate.utilization_pct,
            self.aggregate.mean_latency_ms,
            self.aggregate.processed_rps,
            self.aggregate.target_rps,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_miss_percentages() {
        let f = FunctionResult {
            function: "sobel-1".into(),
            node: "B".into(),
            device: "fpga-b".into(),
            utilization: 0.2,
            mean_latency_ms: 20.0,
            p95_latency_ms: 30.0,
            processed_rps: 45.0,
            target_rps: 60.0,
        };
        assert!((f.target_miss_pct() - 25.0).abs() < 1e-9);
        let agg = Aggregate {
            utilization_pct: 100.0,
            mean_latency_ms: 10.0,
            processed_rps: 100.0,
            target_rps: 100.0,
        };
        assert_eq!(agg.target_miss_pct(), 0.0);
    }

    #[test]
    fn rendering_contains_the_columns() {
        let r = ScenarioResult {
            deployment: "BlastFunction".into(),
            use_case: "Sobel".into(),
            level: "Low Load".into(),
            window: VirtualDuration::from_secs(60),
            functions: vec![FunctionResult {
                function: "sobel-1".into(),
                node: "B".into(),
                device: "fpga-b".into(),
                utilization: 0.2195,
                mean_latency_ms: 21.43,
                p95_latency_ms: 25.0,
                processed_rps: 17.25,
                target_rps: 20.0,
            }],
            device_utilization: vec![("fpga-b".into(), 0.3)],
            aggregate: Aggregate {
                utilization_pct: 43.49,
                mean_latency_ms: 12.55,
                processed_rps: 76.96,
                target_rps: 77.0,
            },
            timeline: Vec::new(),
        };
        let table = r.render_per_function();
        assert!(table.contains("sobel-1"));
        assert!(table.contains("21.95%"));
        let agg = r.render_aggregate();
        assert!(agg.contains("43.49%"));
    }
}
