#![forbid(unsafe_code)]

//! # bf-sim — the multi-tenant cluster simulation (Tables I–IV)
//!
//! Deterministic discrete-event reproduction of the paper's §IV-B
//! experiments: three FPGA nodes (A gen2, B/C gen3), five BlastFunction
//! functions (or three native ones), `hey`-style closed-loop load at the
//! Table I rates, FIFO device sharing with the calibrated remoting costs,
//! and per-function utilization attribution.
//!
//! ```
//! use bf_model::{DataPathKind, VirtualDuration};
//! use bf_serverless::{LoadLevel, UseCase};
//! use bf_sim::{run_scenario, Deployment, ScenarioConfig};
//!
//! let cfg = ScenarioConfig::new(
//!     UseCase::Sobel,
//!     LoadLevel::Low,
//!     Deployment::BlastFunction { data_path: DataPathKind::SharedMemory },
//! )
//! .with_duration(VirtualDuration::from_secs(5));
//! let result = run_scenario(&cfg);
//! assert_eq!(result.functions.len(), 5);
//! ```

mod config;
mod digest;
mod federation;
mod result;
mod scale;
mod scenario;
mod trace;
mod world;

pub use config::{Deployment, ScenarioConfig};
pub use federation::{run_federation, FederationConfig, FederationResult, SimFpgaDevice};
pub use result::{Aggregate, FunctionResult, ScenarioResult};
pub use scale::{run_scale, FaultPlan, ScaleConfig, ScaleResult, ShedStorm, WatchDelay};
pub use scenario::{request_profile, run_scenario};
pub use trace::{to_chrome_trace, TraceSpan};

#[cfg(test)]
mod tests {
    use bf_model::{DataPathKind, VirtualDuration};
    use bf_serverless::{LoadLevel, UseCase};

    use super::*;

    fn bf(use_case: UseCase, level: LoadLevel) -> ScenarioResult {
        run_scenario(
            &ScenarioConfig::new(
                use_case,
                level,
                Deployment::BlastFunction {
                    data_path: DataPathKind::SharedMemory,
                },
            )
            .with_duration(VirtualDuration::from_secs(30)),
        )
    }

    fn native(use_case: UseCase, level: LoadLevel) -> ScenarioResult {
        run_scenario(
            &ScenarioConfig::new(use_case, level, Deployment::Native)
                .with_duration(VirtualDuration::from_secs(30)),
        )
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = ScenarioConfig::new(
            UseCase::Sobel,
            LoadLevel::Medium,
            Deployment::BlastFunction {
                data_path: DataPathKind::SharedMemory,
            },
        )
        .with_duration(VirtualDuration::from_secs(10));
        let a = run_scenario(&cfg);
        let b = run_scenario(&cfg);
        assert_eq!(a.aggregate.processed_rps, b.aggregate.processed_rps);
        assert_eq!(a.aggregate.mean_latency_ms, b.aggregate.mean_latency_ms);
        for (fa, fb) in a.functions.iter().zip(&b.functions) {
            assert_eq!(fa.utilization, fb.utilization);
        }
    }

    #[test]
    fn sobel_low_load_meets_targets_in_both_deployments() {
        for result in [
            bf(UseCase::Sobel, LoadLevel::Low),
            native(UseCase::Sobel, LoadLevel::Low),
        ] {
            for f in &result.functions {
                assert!(
                    f.target_miss_pct() < 10.0,
                    "{} {} missed its target by {:.1}%",
                    result.deployment,
                    f.function,
                    f.target_miss_pct()
                );
            }
        }
    }

    #[test]
    fn sobel_latencies_are_in_the_paper_band() {
        // Table II reports 17-32 ms across every configuration.
        for result in [
            bf(UseCase::Sobel, LoadLevel::Low),
            native(UseCase::Sobel, LoadLevel::Low),
        ] {
            for f in &result.functions {
                assert!(
                    (15.0..40.0).contains(&f.mean_latency_ms),
                    "{} {}: {:.2} ms",
                    result.deployment,
                    f.function,
                    f.mean_latency_ms
                );
            }
        }
    }

    #[test]
    fn sobel_high_load_shows_the_papers_shape() {
        let bf = bf(UseCase::Sobel, LoadLevel::High);
        let native = native(UseCase::Sobel, LoadLevel::High);
        // BlastFunction serves more absolute load (5 functions vs 3).
        assert!(
            bf.aggregate.processed_rps > native.aggregate.processed_rps,
            "bf {:.1} <= native {:.1}",
            bf.aggregate.processed_rps,
            native.aggregate.processed_rps
        );
        // Sharing lifts aggregate utilization.
        assert!(
            bf.aggregate.utilization_pct > native.aggregate.utilization_pct,
            "bf {:.1}% <= native {:.1}%",
            bf.aggregate.utilization_pct,
            native.aggregate.utilization_pct
        );
        // Node A saturates under native: its function misses the target
        // substantially (paper: 38.36 of 60 rq/s).
        let native_a = native
            .functions
            .iter()
            .find(|f| f.node == "A")
            .expect("a native function runs on node A");
        assert!(
            native_a.target_miss_pct() > 15.0,
            "node A should saturate, missed only {:.1}%",
            native_a.target_miss_pct()
        );
    }

    #[test]
    fn mm_native_misses_targets_much_more_than_bf_at_high_load() {
        let bf = bf(UseCase::Mm, LoadLevel::High);
        let native = native(UseCase::Mm, LoadLevel::High);
        // Paper: 39.97% native miss vs 1.22% BlastFunction miss. The
        // reproduction preserves the ordering and a clear separation (the
        // paper's native-MM latencies are anomalously high and are not
        // fully explained by its own cost model; see EXPERIMENTS.md).
        assert!(
            native.aggregate.target_miss_pct() > 2.0 * bf.aggregate.target_miss_pct().max(1.0),
            "native miss {:.1}% vs bf miss {:.1}%",
            native.aggregate.target_miss_pct(),
            bf.aggregate.target_miss_pct()
        );
        assert!(
            bf.aggregate.target_miss_pct() < 5.0,
            "bf should nearly meet its targets"
        );
        assert!(bf.aggregate.processed_rps > native.aggregate.processed_rps);
    }

    #[test]
    fn alexnet_bf_pays_multi_kernel_control_overhead_but_serves_more() {
        let bf = bf(UseCase::AlexNet, LoadLevel::Medium);
        let native = native(UseCase::AlexNet, LoadLevel::Medium);
        let delta = bf.aggregate.mean_latency_ms - native.aggregate.mean_latency_ms;
        // Paper: 132.89 − 94.29 ≈ 39 ms. Our delta runs higher (~68 ms):
        // ~31 ms of per-layer control round trips plus queueing, because the
        // per-inference busy time is calibrated to the paper's *native*
        // utilization anchor (~81 ms/inference) while its BF rows imply only
        // ~70 ms — the paper's own Table IV is internally inconsistent. See
        // EXPERIMENTS.md D5.
        assert!(
            (15.0..80.0).contains(&delta),
            "latency delta {delta:.1} ms (bf {:.1}, native {:.1})",
            bf.aggregate.mean_latency_ms,
            native.aggregate.mean_latency_ms
        );
        // Sharing still serves more requests and reaches higher utilization.
        assert!(bf.aggregate.processed_rps > native.aggregate.processed_rps);
        assert!(bf.aggregate.utilization_pct > native.aggregate.utilization_pct);
    }

    #[test]
    fn grpc_data_path_is_slower_than_shm_for_sobel() {
        let shm = bf(UseCase::Sobel, LoadLevel::Low);
        let grpc = run_scenario(
            &ScenarioConfig::new(
                UseCase::Sobel,
                LoadLevel::Low,
                Deployment::BlastFunction {
                    data_path: DataPathKind::Grpc,
                },
            )
            .with_duration(VirtualDuration::from_secs(30)),
        );
        assert!(
            grpc.aggregate.mean_latency_ms > shm.aggregate.mean_latency_ms + 3.0,
            "grpc {:.2} ms vs shm {:.2} ms",
            grpc.aggregate.mean_latency_ms,
            shm.aggregate.mean_latency_ms
        );
    }

    #[test]
    fn space_sharing_trades_latency_for_capacity() {
        // The future-work ablation: AlexNet at high load saturates under
        // pure time-sharing; two half-size regions (1.6x slower kernels)
        // serve more requests at higher per-request latency.
        let base = ScenarioConfig::new(
            UseCase::AlexNet,
            LoadLevel::High,
            Deployment::BlastFunction {
                data_path: DataPathKind::SharedMemory,
            },
        )
        .with_duration(VirtualDuration::from_secs(20));
        let time_shared = run_scenario(&base);
        let space_shared = run_scenario(&base.clone().with_space_sharing(2, 1.6));
        assert!(
            space_shared.aggregate.processed_rps > time_shared.aggregate.processed_rps,
            "2 regions {:.2} rq/s <= 1 region {:.2} rq/s",
            space_shared.aggregate.processed_rps,
            time_shared.aggregate.processed_rps
        );
        assert!(
            space_shared.aggregate.mean_latency_ms > time_shared.aggregate.mean_latency_ms * 0.9,
            "slower kernels must not magically cut latency"
        );
    }

    #[test]
    fn timeline_spans_are_well_formed_and_exportable() {
        let result = bf(UseCase::Sobel, LoadLevel::Low);
        assert!(!result.timeline.is_empty());
        // Per (device, slot) the spans never overlap (one board region is
        // one serial server) and are chronologically ordered.
        let mut by_region: std::collections::BTreeMap<(String, u32), Vec<&TraceSpan>> =
            std::collections::BTreeMap::new();
        for span in &result.timeline {
            assert!(span.end_ms >= span.start_ms);
            by_region
                .entry((span.device.clone(), span.slot))
                .or_default()
                .push(span);
        }
        for spans in by_region.values() {
            for pair in spans.windows(2) {
                assert!(
                    pair[1].start_ms >= pair[0].end_ms - 1e-9,
                    "overlap: {:?} then {:?}",
                    pair[0],
                    pair[1]
                );
            }
        }
        let json = result.to_chrome_trace();
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid trace json");
        assert!(parsed.as_array().expect("array").len() > result.timeline.len());
    }

    #[test]
    fn utilization_attribution_sums_to_device_totals() {
        let result = bf(UseCase::Sobel, LoadLevel::Medium);
        for (device, total) in &result.device_utilization {
            let sum: f64 = result
                .functions
                .iter()
                .filter(|f| &f.device == device)
                .map(|f| f.utilization)
                .sum();
            assert!(
                (sum - total).abs() < 1e-9,
                "{device}: per-function {sum} != device {total}"
            );
        }
    }
}
