//! Scenario assembly and execution.

use bf_model::{node_a, node_b, node_c, DataPathKind, VirtualDuration, VirtualTime};
use bf_registry::{AllocationPolicy, DeviceQuery, PlacementService, Registry, StaticDevice};
use bf_rpc::PathCosts;
use bf_serverless::{table1_rates, ClosedLoopPacer, UseCase};
use bf_simkit::{Engine, Samples, SimRng};
use bf_workloads::{mm, sobel, CnnNetwork, RequestProfile};

use crate::config::{Deployment, ScenarioConfig};
use crate::result::{Aggregate, FunctionResult, ScenarioResult};
use crate::world::{schedule_request, PathMode, SimDevice, SimFunction, World};

/// The workload parameters the paper's Tables II–IV run with.
///
/// * Sobel: 1920×1080 frames (the largest Fig. 4(b) point);
/// * MM: 448×448 matrices (service times consistent with Table III);
/// * AlexNet: the standard 227×227×3 network.
pub fn request_profile(use_case: UseCase) -> RequestProfile {
    match use_case {
        UseCase::Sobel => sobel::request_profile(1920, 1080),
        UseCase::Mm => mm::request_profile(448),
        UseCase::AlexNet => CnnNetwork::alexnet().request_profile(),
    }
}

fn function_prefix(use_case: UseCase) -> &'static str {
    match use_case {
        UseCase::Sobel => "sobel",
        UseCase::Mm => "mm",
        UseCase::AlexNet => "alexnet",
    }
}

fn accelerator_id(use_case: UseCase) -> &'static str {
    match use_case {
        UseCase::Sobel => sobel::SOBEL_BITSTREAM,
        UseCase::Mm => mm::MM_BITSTREAM,
        UseCase::AlexNet => "pipecnn-alexnet",
    }
}

/// Places the BlastFunction functions onto the three devices by running
/// the registry's Algorithm 1 (paper policy) as each function is created,
/// through the same typed [`PlacementService`] surface the cluster uses —
/// so the scenario exercises the production admission path, not a replay
/// of it. Returns device indices (0 = A, 1 = B, 2 = C) per function.
fn blastfunction_placement(use_case: UseCase, count: usize) -> Vec<usize> {
    let bitstream = accelerator_id(use_case);
    let ids = ["fpga-a", "fpga-b", "fpga-c"];
    let nodes = [node_a(), node_b(), node_c()];
    let registry = Registry::new(AllocationPolicy::paper());
    for (id, node) in ids.iter().zip(nodes) {
        // Each board starts with the use case's bitstream configured, as
        // the hand-rolled views did before: placement never reprograms.
        registry.register_device_handle(StaticDevice::new(*id, node, Some(bitstream)).handle());
    }
    let placement_service: &dyn PlacementService = &registry;
    let mut placement = Vec::with_capacity(count);
    for i in 0..count {
        let function = format!("fn-{i}");
        placement_service.register_function(&function, DeviceQuery::for_accelerator(bitstream));
        // bf-lint: allow(panic): the scenario's fixed three-device topology
        // always has capacity for the requested placements by construction.
        let allocation = placement_service
            .place_instance(&function, &function)
            .expect("three devices always suffice");
        assert!(
            allocation.reconfigure.is_none(),
            "pre-configured boards never reprogram"
        );
        // bf-lint: allow(panic): `allocation.device_id` is drawn from `ids`.
        let idx = ids
            .iter()
            .position(|id| *id == allocation.device_id)
            .expect("known id");
        placement.push(idx);
    }
    placement
}

/// Runs one multi-tenant scenario and returns its table rows.
///
/// # Panics
///
/// Panics for configurations the paper does not define (AlexNet low load).
pub fn run_scenario(config: &ScenarioConfig) -> ScenarioResult {
    let rates = table1_rates(config.use_case, config.level).unwrap_or_else(|| {
        panic!(
            "{} {} is not a paper configuration",
            config.use_case, config.level
        )
    });
    let nodes = [node_a(), node_b(), node_c()];
    let ids = ["fpga-a", "fpga-b", "fpga-c"];
    let devices: Vec<SimDevice> = ids
        .iter()
        .zip(nodes.iter())
        .map(|(id, node)| {
            SimDevice::with_slots(
                *id,
                node.clone(),
                config.space_slots,
                config.space_kernel_slowdown,
            )
        })
        .collect();

    let profile = config
        .profile_override
        .clone()
        .unwrap_or_else(|| request_profile(config.use_case));
    let prefix = function_prefix(config.use_case);
    let count = config.deployment.function_count();

    let (placement, path): (Vec<usize>, PathMode) = match config.deployment {
        Deployment::Native => ((0..count).collect(), PathMode::Native),
        Deployment::BlastFunction { data_path } => {
            let costs = match data_path {
                DataPathKind::SharedMemory => PathCosts::local_shm(),
                DataPathKind::Grpc => PathCosts::local_grpc(),
            };
            (
                blastfunction_placement(config.use_case, count),
                PathMode::Remote(costs),
            )
        }
    };
    let placement = match &config.placement_override {
        Some(explicit) => {
            assert_eq!(
                explicit.len(),
                count,
                "placement override must cover every function"
            );
            assert!(explicit.iter().all(|d| *d < 3), "device indices are 0..3");
            explicit.clone()
        }
        None => placement,
    };

    let mut rng = SimRng::seed_from_u64(config.seed);
    let functions: Vec<SimFunction> = (0..count)
        .map(|i| {
            // Stagger connection start-up the way independent hey processes
            // start: a few milliseconds apart.
            let start = VirtualTime::from_secs_f64(rng.uniform(0.0, 0.25));
            SimFunction {
                name: format!("{prefix}-{}", i + 1),
                device: placement[i],
                target: rates[i],
                pacer: ClosedLoopPacer::new(rates[i], start),
                profile: profile.clone(),
                path,
                latencies: Samples::new(),
                processed: 0,
            }
        })
        .collect();

    let window_start = VirtualTime::ZERO + config.warmup;
    let horizon = window_start + config.duration;
    let mut world = World {
        devices,
        functions,
        rng,
        jitter: config.jitter,
        gateway_forward: VirtualDuration::from_micros(300),
        response_overhead: VirtualDuration::from_micros(500),
        window_start,
        horizon,
    };

    let mut engine: Engine<World> = Engine::new();
    for f_idx in 0..count {
        let first = world.functions[f_idx].pacer.first_issue();
        schedule_request(&mut engine, f_idx, first);
    }
    engine.run(&mut world);

    collect(config, world)
}

fn collect(config: &ScenarioConfig, world: World) -> ScenarioResult {
    let window = world.horizon - world.window_start;
    let window_secs = window.as_secs_f64();

    let functions: Vec<FunctionResult> = world
        .functions
        .iter()
        .map(|f| {
            let device = &world.devices[f.device];
            FunctionResult {
                function: f.name.clone(),
                node: device.node.id().to_string(),
                device: device.id.clone(),
                utilization: device.busy_of_in(world.window_start, world.horizon, &f.name),
                mean_latency_ms: f.latencies.mean().unwrap_or(0.0),
                p95_latency_ms: f.latencies.quantile(0.95).unwrap_or(0.0),
                processed_rps: f.processed as f64 / window_secs,
                target_rps: f.target,
            }
        })
        .collect();

    let device_utilization: Vec<(String, f64)> = world
        .devices
        .iter()
        .map(|d| {
            (
                d.id.clone(),
                d.utilization_in(world.window_start, world.horizon),
            )
        })
        .collect();

    let timeline: Vec<crate::trace::TraceSpan> = world
        .devices
        .iter()
        .flat_map(|d| {
            d.slot_busy
                .iter()
                .enumerate()
                .flat_map(move |(slot, tracker)| {
                    tracker
                        .intervals()
                        .iter()
                        .map(move |iv| crate::trace::TraceSpan {
                            device: d.id.clone(),
                            slot: slot as u32,
                            owner: iv.owner.clone(),
                            start_ms: iv.start.as_millis_f64(),
                            end_ms: iv.end.as_millis_f64(),
                        })
                })
        })
        .collect();

    let total_processed: f64 = functions.iter().map(|f| f.processed_rps).sum();
    let total_target: f64 = functions.iter().map(|f| f.target_rps).sum();
    let pooled: Samples = world
        .functions
        .iter()
        .flat_map(|f| f.latencies.values().iter().copied())
        .collect();

    ScenarioResult {
        deployment: config.deployment.label().to_string(),
        use_case: config.use_case.to_string(),
        level: config.level.to_string(),
        window,
        functions,
        device_utilization: device_utilization.clone(),
        aggregate: Aggregate {
            utilization_pct: device_utilization.iter().map(|(_, u)| u * 100.0).sum(),
            mean_latency_ms: pooled.mean().unwrap_or(0.0),
            processed_rps: total_processed,
            target_rps: total_target,
        },
        timeline,
    }
}

#[cfg(test)]
mod tests {
    use bf_serverless::LoadLevel;

    use super::*;

    #[test]
    fn bf_placement_balances_two_two_one() {
        let p = blastfunction_placement(UseCase::Sobel, 5);
        let count = |d: usize| p.iter().filter(|x| **x == d).count();
        assert_eq!(count(1), 2, "two on B: {p:?}");
        assert_eq!(count(0), 2, "two on A: {p:?}");
        assert_eq!(count(2), 1, "one on C: {p:?}");
    }

    #[test]
    fn native_uses_one_device_per_function() {
        let cfg = ScenarioConfig::new(UseCase::Sobel, LoadLevel::Low, Deployment::Native);
        let result = run_scenario(&cfg);
        assert_eq!(result.functions.len(), 3);
        let devices: std::collections::HashSet<_> =
            result.functions.iter().map(|f| f.device.clone()).collect();
        assert_eq!(devices.len(), 3);
    }
}
