//! The "production day" scale scenario: open-loop diurnal traffic with
//! Zipf function popularity over thousands of functions and 1000+
//! simulated nodes, driven entirely by simkit virtual time.
//!
//! Unlike the Table I–IV scenarios (three nodes, closed-loop `hey`
//! clients), this harness exercises the *control plane* at the scale the
//! ROADMAP north-star requires: a real [`bf_cluster::Cluster`] with an
//! admission hook placing one instance per function, real
//! [`bf_metrics::MetricsRegistry`] series per function and node, and a
//! real [`bf_rpc::Poller`] with one waker per client session. The data
//! plane is abstracted to per-node serial servers with bounded queues so
//! runs with hundreds of thousands of requests finish in seconds.
//!
//! A seeded fault-injection layer rides on top: node loss (instances
//! migrate via `replace_instance`, in-flight work fails), slow consumers
//! (session backlog growth up to forced disconnect), shed storms (an
//! offered-rate multiplier window) and delayed watch-event consumption.
//! Every random stream is split from the scenario seed with
//! [`SimRng::split`], so the fault injector draws from its own streams
//! and cannot perturb the traffic trace — and every run replays
//! byte-identically from its seed, which [`ScaleResult::trace_digest`]
//! certifies.

use std::collections::{HashMap, VecDeque};
use std::f64::consts::PI;
use std::sync::Arc;
use std::time::Duration;

use bf_cluster::{Cluster, InstanceId, InstanceTemplate, WatchEvent, WatchStream};
use bf_metrics::MetricsRegistry;
use bf_model::{
    MemcpyModel, NodeId, NodeSpec, PcieGeneration, PcieLink, VirtualDuration, VirtualTime,
};
use bf_rpc::{PollEvent, Poller, Token, Waker};
use bf_simkit::{Engine, Samples, SimRng, ZipfSampler};
use parking_lot::Mutex;
use serde::Serialize;

use crate::digest::Digest;

/// Stream-split keys: one sub-stream per subsystem, so adding draws to
/// one cannot perturb another (see the `simkit::rng` proptests).
const STREAM_TRAFFIC: u64 = 1;
const STREAM_SERVICE: u64 = 2;
const STREAM_FAULTS: u64 = 3;

/// A session whose backlog exceeds this is forcibly disconnected (the
/// Device Manager's slow-consumer policy, abstracted).
const SLOW_BACKLOG_LIMIT: u32 = 32;

/// Abstracted per-node payload-cache capacity, in distinct function
/// payloads. Mirrors the Device Manager's content-addressed cache: the
/// Zipf head stays resident, the tail churns through the slots.
const NODE_CACHE_SLOTS: usize = 256;

/// An offered-rate multiplier window (a flash crowd) that drives node
/// queues past capacity and exercises shedding under overload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShedStorm {
    /// Window start, as a fraction of the day.
    pub start_frac: f64,
    /// Window length, as a fraction of the day.
    pub len_frac: f64,
    /// Offered-rate multiplier inside the window.
    pub factor: f64,
}

/// A window during which the harness stops consuming watch events (a
/// stalled watcher), so delivery backs up and drains in one burst.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchDelay {
    /// Window start, as a fraction of the day.
    pub start_frac: f64,
    /// Window length, as a fraction of the day.
    pub len_frac: f64,
}

/// The seeded fault-injection plan. All schedule and victim draws come
/// from the fault stream, independent of the traffic stream.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Node-death events spread across the day. Each victim's instances
    /// migrate via `replace_instance` (create-before-delete) and its
    /// in-flight requests fail as typed losses.
    pub node_losses: u32,
    /// Slow-consumer episodes: the afflicted session drains one
    /// completion per reactor tick instead of all, until its backlog
    /// forces a disconnect or the episode ends.
    pub slow_consumers: u32,
    /// Optional flash-crowd window.
    pub shed_storm: Option<ShedStorm>,
    /// Optional stalled-watcher window.
    pub watch_delay: Option<WatchDelay>,
}

impl FaultPlan {
    /// No injected faults.
    pub fn none() -> FaultPlan {
        FaultPlan {
            node_losses: 0,
            slow_consumers: 0,
            shed_storm: None,
            watch_delay: None,
        }
    }

    /// The full fault battery, scaled for the production-day sweep.
    pub fn production() -> FaultPlan {
        FaultPlan {
            node_losses: 20,
            slow_consumers: 50,
            shed_storm: Some(ShedStorm {
                start_frac: 0.45,
                len_frac: 0.10,
                factor: 3.0,
            }),
            watch_delay: Some(WatchDelay {
                start_frac: 0.70,
                len_frac: 0.05,
            }),
        }
    }
}

/// Configuration of one production-day run. Every field participates in
/// determinism: same config + same seed → byte-identical trace.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Root seed; all streams are split from it.
    pub seed: u64,
    /// Cluster size (one serial accelerator server per node).
    pub nodes: usize,
    /// Function catalog size (one instance each, Zipf-popular).
    pub functions: usize,
    /// Client sessions (one poller waker each); function `f` belongs to
    /// session `f % sessions`.
    pub sessions: usize,
    /// Compressed virtual day length.
    pub day: VirtualDuration,
    /// Trough aggregate arrival rate (rq/s).
    pub base_rps: f64,
    /// Peak-to-trough ratio of the diurnal curve.
    pub peak_factor: f64,
    /// Zipf popularity exponent over the function catalog.
    pub zipf_exponent: f64,
    /// Per-node in-system cap; arrivals beyond it are shed.
    pub queue_capacity: usize,
    /// Reactor cadence: watch streams and the poller are drained at
    /// this virtual period.
    pub reactor_tick: VirtualDuration,
    /// Watch-delivery coalescing window applied to the cluster; 1 keeps
    /// per-event delivery semantics.
    pub watch_coalesce: usize,
    /// Record the full event trace (for the replay regression test);
    /// the digest is always computed.
    pub record_trace: bool,
    /// Injected faults.
    pub faults: FaultPlan,
}

impl ScaleConfig {
    /// The CI smoke point around `seed`: 100 nodes / 1k functions / 1k
    /// sessions over a 12 s compressed day, full fault battery.
    pub fn smoke(seed: u64) -> ScaleConfig {
        ScaleConfig {
            seed,
            nodes: 100,
            functions: 1_000,
            sessions: 1_000,
            day: VirtualDuration::from_secs(12),
            base_rps: 150.0,
            peak_factor: 5.0,
            zipf_exponent: 1.2,
            queue_capacity: 64,
            reactor_tick: VirtualDuration::from_millis(10),
            // Delivery coalescing amortizes per-watcher sends across the
            // deploy-storm and migration bursts; the harness flushes every
            // reactor tick, so consumers still see events within one tick.
            watch_coalesce: 64,
            record_trace: false,
            faults: FaultPlan::production(),
        }
    }

    /// The archived sweep's headline point: 1000 nodes / 10k functions /
    /// 10k sessions over a 60 s compressed day (~170k arrivals), full
    /// fault battery.
    pub fn production_day(seed: u64) -> ScaleConfig {
        ScaleConfig {
            nodes: 1_000,
            functions: 10_000,
            sessions: 10_000,
            day: VirtualDuration::from_secs(60),
            base_rps: 800.0,
            peak_factor: 6.0,
            ..ScaleConfig::smoke(seed)
        }
    }

    /// Builder: cluster size.
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Builder: function catalog size.
    pub fn with_functions(mut self, functions: usize) -> Self {
        self.functions = functions;
        self
    }

    /// Builder: session count.
    pub fn with_sessions(mut self, sessions: usize) -> Self {
        self.sessions = sessions;
        self
    }

    /// Builder: day length.
    pub fn with_day(mut self, day: VirtualDuration) -> Self {
        self.day = day;
        self
    }

    /// Builder: trough arrival rate.
    pub fn with_base_rps(mut self, base_rps: f64) -> Self {
        self.base_rps = base_rps;
        self
    }

    /// Builder: fault plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Builder: watch coalescing window.
    pub fn with_watch_coalesce(mut self, n: usize) -> Self {
        self.watch_coalesce = n;
        self
    }

    /// Builder: record the full event trace.
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Aggregate offered rate at virtual time `t`: a diurnal sinusoid
    /// from `base_rps` at the trough to `base_rps * peak_factor` at
    /// midday, times any active storm multiplier.
    fn rate_at(&self, t: VirtualTime) -> f64 {
        let x = t.as_secs_f64() / self.day.as_secs_f64();
        let diurnal = 1.0 + (self.peak_factor - 1.0) * 0.5 * (1.0 - (2.0 * PI * x).cos());
        let storm = match &self.faults.shed_storm {
            Some(s) if x >= s.start_frac && x < s.start_frac + s.len_frac => s.factor,
            _ => 1.0,
        };
        self.base_rps * diurnal * storm
    }

    fn day_end(&self) -> VirtualTime {
        VirtualTime::ZERO + self.day
    }
}

/// Summary of one production-day run. Every field is deterministic:
/// same seed + config → identical struct, the JSON of which is archived
/// and CI-compared.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct ScaleResult {
    /// Cluster size.
    pub nodes: u64,
    /// Function catalog size.
    pub functions: u64,
    /// Client sessions (poller wakers).
    pub sessions: u64,
    /// Requests that arrived inside the day.
    pub arrivals: u64,
    /// Requests completed successfully.
    pub processed: u64,
    /// Requests shed at a full node queue.
    pub shed: u64,
    /// Requests lost in flight to a node death.
    pub failed_inflight: u64,
    /// Node-death events executed.
    pub node_losses: u64,
    /// Instances migrated off dead nodes.
    pub rerouted: u64,
    /// Sessions forcibly disconnected for slow consumption.
    pub force_disconnects: u64,
    /// Mean end-to-end latency (ms) over completed requests.
    pub latency_mean_ms: f64,
    /// Median latency (ms).
    pub latency_p50_ms: f64,
    /// 95th-percentile latency (ms).
    pub latency_p95_ms: f64,
    /// 99th-percentile latency (ms).
    pub latency_p99_ms: f64,
    /// Completed `Poller::poll` calls.
    pub poller_polls: u64,
    /// Slots examined across all poller scans (the hot-path work the
    /// ready-list change removes).
    pub poller_slots_scanned: u64,
    /// Ready events the poller delivered.
    pub poller_ready_events: u64,
    /// Watch events generated by the cluster.
    pub watch_events: u64,
    /// Watch channel deliveries performed (the work coalescing
    /// amortizes across events).
    pub watch_deliveries: u64,
    /// Admitted requests whose input payload was already resident in the
    /// target node's abstracted payload cache (no wire transfer needed).
    pub cache_hits: u64,
    /// Admitted requests that had to move their payload (and populated
    /// the node's cache for later hits).
    pub cache_misses: u64,
    /// Payload-cache hit ratio over admitted requests (0 when none).
    pub cache_hit_ratio: f64,
    /// Wire bytes the payload cache elided across the day.
    pub cache_bytes_saved: u64,
    /// Watch events the harness consumed.
    pub watch_seen: u64,
    /// Largest single-tick watch drain (the delayed-watch burst).
    pub max_watch_drain: u64,
    /// Metric series registered.
    pub metrics_series: u64,
    /// Registry shards.
    pub metrics_shards: u64,
    /// Series behind the most loaded registry shard's lock (the
    /// critical-section footprint sharding shrinks).
    pub metrics_max_shard: u64,
    /// Simulation events executed (arrivals + completions + ticks +
    /// faults).
    pub events_executed: u64,
    /// FNV-1a 64 digest over the full event trace: the byte-identical
    /// replay certificate.
    pub trace_digest: String,
    /// The full event trace when [`ScaleConfig::record_trace`] was set.
    #[serde(skip)]
    pub trace: Vec<String>,
}

/// Shared placement state between the harness and the cluster's
/// admission hook. The hook runs without the cluster lock held (see
/// `Cluster::create_instance`), so locking this inside it is safe — and
/// the DES is single-threaded besides.
struct Placement {
    alive: Vec<bool>,
    round_robin: usize,
    /// Function index → current node index.
    fn_node: Vec<usize>,
}

struct Session {
    waker: Waker,
    token: Token,
    /// Completions delivered but not yet consumed by the session.
    backlog: u32,
    /// Slow-consumer episode horizon; while `now < slow_until` the
    /// session drains one completion per tick.
    slow_until: VirtualTime,
}

struct ScaleWorld {
    cfg: ScaleConfig,
    cluster: Cluster,
    placement: Arc<Mutex<Placement>>,
    registry: MetricsRegistry,
    poller: Poller,
    sessions: Vec<Session>,
    token_session: HashMap<Token, usize>,
    watches: Vec<WatchStream>,
    fn_instance: Vec<InstanceId>,
    fn_epoch: Vec<u64>,
    fn_labels: Vec<String>,
    node_labels: Vec<String>,
    /// Per-node serial-server state.
    busy_until: Vec<VirtualTime>,
    in_system: Vec<u32>,
    /// Abstracted per-node payload cache: function indices whose input
    /// payload is resident, FIFO-bounded at [`NODE_CACHE_SLOTS`].
    node_cache: Vec<VecDeque<usize>>,
    /// Split randomness: one stream per subsystem.
    traffic: SimRng,
    service: SimRng,
    faults: SimRng,
    zipf: ZipfSampler,
    /// Measurement.
    latencies: Samples,
    digest: Digest,
    trace: Vec<String>,
    arrivals: u64,
    processed: u64,
    shed: u64,
    failed_inflight: u64,
    node_losses: u64,
    rerouted: u64,
    force_disconnects: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_bytes_saved: u64,
    poller_ready_events: u64,
    watch_seen: u64,
    max_watch_drain: u64,
    events_executed: u64,
}

impl ScaleWorld {
    fn record(&mut self, t: VirtualTime, kind: &'static str, tag: u64, a: u64, b: u64) {
        self.digest.u64(t.as_nanos());
        self.digest.u64(tag);
        self.digest.u64(a);
        self.digest.u64(b);
        if self.cfg.record_trace {
            self.trace.push(format!("{} {kind} {a} {b}", t.as_nanos()));
        }
    }

    /// Function service-time tiers: 1.5–3.5 ms across the catalog.
    fn service_base(&self, f: usize) -> VirtualDuration {
        VirtualDuration::from_micros(1_500 + 500 * (f % 5) as u64)
    }

    fn session_of(&self, f: usize) -> usize {
        f % self.sessions.len()
    }

    /// Deterministic input-payload size for function `f`: what one
    /// request moves over the wire when the cache misses.
    fn payload_bytes(f: usize) -> u64 {
        4_096 + 1_024 * (f % 13) as u64
    }

    /// The abstracted per-node payload-cache lookup, run once per
    /// admitted request. Pure bookkeeping over already-drawn state — no
    /// RNG draws and no digest records — so the trace digest is
    /// invariant under this accounting.
    fn note_cache_lookup(&mut self, n: usize, f: usize) {
        let cache = &mut self.node_cache[n];
        if cache.contains(&f) {
            self.cache_hits += 1;
            self.cache_bytes_saved += Self::payload_bytes(f);
            return;
        }
        self.cache_misses += 1;
        if cache.len() >= NODE_CACHE_SLOTS {
            cache.pop_front();
        }
        cache.push_back(f);
    }

    /// Drains both watch streams (unless inside the stalled-watcher
    /// window) after asking the cluster to flush any coalesced-pending
    /// events, so the events a tick observes are independent of the
    /// coalescing window.
    fn drain_watches(&mut self, now: VirtualTime) {
        if let Some(d) = &self.cfg.faults.watch_delay {
            let x = now.as_secs_f64() / self.cfg.day.as_secs_f64();
            if x >= d.start_frac && x < d.start_frac + d.len_frac {
                return;
            }
        }
        self.cluster.flush_watch();
        for w_idx in 0..self.watches.len() {
            let mut drained = 0u64;
            while let Some(event) = self.watches[w_idx].try_next() {
                drained += 1;
                // Fold the event kind into the digest so reordered or
                // dropped deliveries are caught, not just miscounts.
                let kind = match event {
                    WatchEvent::Created(_) => 1,
                    WatchEvent::Patched(_) => 2,
                    WatchEvent::Deleted(_) => 3,
                };
                self.digest.u64(kind);
            }
            if drained > 0 {
                self.watch_seen += drained;
                self.max_watch_drain = self.max_watch_drain.max(drained);
                self.record(now, "watch_drain", 6, w_idx as u64, drained);
            }
        }
    }

    /// Drains the poller with a zero timeout: every ready session
    /// consumes its backlog (one completion per tick when slow). Slow
    /// sessions with residual backlog are re-armed only after the loop,
    /// so one tick services each ready session exactly once.
    fn drain_poller(&mut self, now: VirtualTime) {
        let mut rearm: Vec<usize> = Vec::new();
        loop {
            match self.poller.poll(Some(Duration::ZERO)) {
                PollEvent::Ready(token) => {
                    self.poller_ready_events += 1;
                    let Some(&s) = self.token_session.get(&token) else {
                        // Unreachable by construction: every registered
                        // waker has a session entry.
                        continue;
                    };
                    let slow = now < self.sessions[s].slow_until;
                    let consumed = if slow {
                        let backlog = {
                            let sess = &mut self.sessions[s];
                            sess.backlog = sess.backlog.saturating_sub(1);
                            sess.backlog
                        };
                        if backlog > SLOW_BACKLOG_LIMIT {
                            self.force_disconnect(now, s);
                        } else if backlog > 0 {
                            rearm.push(s);
                        }
                        1
                    } else {
                        let sess = &mut self.sessions[s];
                        let n = sess.backlog;
                        sess.backlog = 0;
                        n
                    };
                    self.record(now, "ack", 7, s as u64, u64::from(consumed));
                }
                PollEvent::TimedOut => break,
            }
        }
        for s in rearm {
            self.sessions[s].waker.wake();
        }
    }

    /// The slow-consumer policy: tear the session down, drop its
    /// backlog, and reconnect with a fresh waker (exercising poller
    /// deregister/claim-slot reuse at scale).
    fn force_disconnect(&mut self, now: VirtualTime, s: usize) {
        self.force_disconnects += 1;
        let old = self.sessions[s].token;
        self.token_session.remove(&old);
        self.poller.deregister(old);
        let (token, waker) = self.poller.add_waker();
        self.token_session.insert(token, s);
        let sess = &mut self.sessions[s];
        sess.token = token;
        sess.waker = waker;
        sess.backlog = 0;
        sess.slow_until = VirtualTime::ZERO;
        self.record(now, "force_disconnect", 8, s as u64, 0);
    }
}

fn node_name(i: usize) -> String {
    format!("n{i:04}")
}

fn synthetic_nodes(n: usize) -> Vec<NodeSpec> {
    (0..n)
        .map(|i| {
            NodeSpec::new(
                NodeId::new(node_name(i)),
                PcieLink::new(PcieGeneration::Gen3, 8),
                MemcpyModel::paper(),
                1.0,
                VirtualDuration::from_millis_f64(3.5),
            )
        })
        .collect()
}

/// Installs the admission hook: forced placement on the next alive node
/// round-robin, with the device-manager env injected the way the real
/// registry hook does it.
fn install_admission(cluster: &Cluster, placement: &Arc<Mutex<Placement>>, node_ids: &[NodeId]) {
    let placement = placement.clone();
    let node_ids: Vec<NodeId> = node_ids.to_vec();
    cluster.set_admission_hook(Arc::new(move |spec| {
        let f: usize = spec
            .function
            .strip_prefix('f')
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("unparseable function name {:?}", spec.function))?;
        let mut p = placement.lock();
        let n = p.alive.len();
        let mut placed = None;
        for step in 0..n {
            let cand = (p.round_robin + step) % n;
            if p.alive[cand] {
                placed = Some(cand);
                p.round_robin = cand + 1;
                break;
            }
        }
        let idx = placed.ok_or_else(|| "no alive node to place on".to_string())?;
        p.fn_node[f] = idx;
        drop(p);
        spec.node = Some(node_ids[idx].clone());
        spec.env.insert(
            "DEVICE_MANAGER_ADDRESS".to_string(),
            node_ids[idx].to_string(),
        );
        Ok(())
    }));
}

/// Runs one production day and returns its deterministic summary.
///
/// # Panics
///
/// Panics if the config is degenerate (zero nodes, functions or
/// sessions) or the initial deployment fails — both are harness bugs,
/// never runtime conditions.
pub fn run_scale(cfg: &ScaleConfig) -> ScaleResult {
    assert!(
        cfg.nodes > 0 && cfg.functions > 0 && cfg.sessions > 0,
        "degenerate scale config"
    );
    let root = SimRng::seed_from_u64(cfg.seed);
    let traffic = root.split(STREAM_TRAFFIC);
    let service = root.split(STREAM_SERVICE);
    let mut faults = root.split(STREAM_FAULTS);

    let nodes = synthetic_nodes(cfg.nodes);
    let node_ids: Vec<NodeId> = nodes.iter().map(|n| n.id().clone()).collect();
    let node_labels: Vec<String> = node_ids.iter().map(|n| n.to_string()).collect();
    let cluster = Cluster::new(nodes).with_watch_coalescing(cfg.watch_coalesce);
    let placement = Arc::new(Mutex::new(Placement {
        alive: vec![true; cfg.nodes],
        round_robin: 0,
        fn_node: vec![0; cfg.functions],
    }));
    install_admission(&cluster, &placement, &node_ids);

    // Watch consumers connect before the deploy storm, so delivering
    // the storm itself is part of what the harness measures.
    let watches = vec![cluster.watch(), cluster.watch()];

    // Deploy storm: one instance per function, placed by the hook.
    let mut fn_instance = Vec::with_capacity(cfg.functions);
    let mut fn_labels = Vec::with_capacity(cfg.functions);
    for f in 0..cfg.functions {
        let name = format!("f{f}");
        let spec = cluster
            .create_instance(InstanceTemplate::new(name.clone()))
            // bf-lint: allow(panic): deployment against an all-alive
            // cluster cannot be denied; failure is a harness bug.
            .unwrap_or_else(|e| panic!("deploy {name}: {e}"));
        fn_instance.push(spec.id);
        fn_labels.push(name);
    }

    let mut poller = Poller::new();
    let mut token_session = HashMap::new();
    let sessions: Vec<Session> = (0..cfg.sessions)
        .map(|s| {
            let (token, waker) = poller.add_waker();
            token_session.insert(token, s);
            Session {
                waker,
                token,
                backlog: 0,
                slow_until: VirtualTime::ZERO,
            }
        })
        .collect();

    // Fault schedule: every time and duration pre-drawn from the fault
    // stream in a fixed order; fire-time victim picks continue the same
    // stream inside the world.
    let mut engine: Engine<ScaleWorld> = Engine::new();
    for _ in 0..cfg.faults.node_losses {
        let at = VirtualTime::from_secs_f64(faults.uniform(0.05, 0.95) * cfg.day.as_secs_f64());
        engine.schedule_at(at, move |w: &mut ScaleWorld, e: &mut Engine<ScaleWorld>| {
            node_loss(w, e);
        });
    }
    for _ in 0..cfg.faults.slow_consumers {
        let at = VirtualTime::from_secs_f64(faults.uniform(0.05, 0.90) * cfg.day.as_secs_f64());
        let dur =
            VirtualDuration::from_secs_f64(faults.uniform(0.02, 0.08) * cfg.day.as_secs_f64());
        engine.schedule_at(at, move |w: &mut ScaleWorld, e: &mut Engine<ScaleWorld>| {
            slow_episode(w, e, dur);
        });
    }

    // Reactor ticks across the day plus a drain tail for late
    // completions and their acks.
    let tail = VirtualDuration::from_secs(2);
    let end = cfg.day_end() + tail;
    let mut t = VirtualTime::ZERO;
    while t <= end {
        engine.schedule_at(t, |w: &mut ScaleWorld, e: &mut Engine<ScaleWorld>| {
            w.events_executed += 1;
            let now = e.now();
            w.drain_watches(now);
            w.drain_poller(now);
        });
        t += cfg.reactor_tick;
    }

    // First arrival opens the open-loop chain.
    engine.schedule_at(VirtualTime::ZERO, |w, e| next_arrival(w, e));

    let mut world = ScaleWorld {
        cluster,
        placement,
        registry: MetricsRegistry::new(),
        poller,
        sessions,
        token_session,
        watches,
        fn_instance,
        fn_epoch: vec![0; cfg.functions],
        fn_labels,
        node_labels,
        busy_until: vec![VirtualTime::ZERO; cfg.nodes],
        in_system: vec![0; cfg.nodes],
        node_cache: vec![VecDeque::new(); cfg.nodes],
        traffic,
        service,
        faults,
        zipf: ZipfSampler::new(cfg.functions, cfg.zipf_exponent),
        latencies: Samples::new(),
        digest: Digest::new(),
        trace: Vec::new(),
        arrivals: 0,
        processed: 0,
        shed: 0,
        failed_inflight: 0,
        node_losses: 0,
        rerouted: 0,
        force_disconnects: 0,
        cache_hits: 0,
        cache_misses: 0,
        cache_bytes_saved: 0,
        poller_ready_events: 0,
        watch_seen: 0,
        max_watch_drain: 0,
        events_executed: 0,
        cfg: cfg.clone(),
    };

    engine.run(&mut world);

    // Final flush: anything completed after the last tick.
    world.drain_watches(end);
    world.drain_poller(end);

    let poll_stats = world.poller.stats();
    let watch_stats = world.cluster.watch_stats();
    ScaleResult {
        nodes: cfg.nodes as u64,
        functions: cfg.functions as u64,
        sessions: cfg.sessions as u64,
        arrivals: world.arrivals,
        processed: world.processed,
        shed: world.shed,
        failed_inflight: world.failed_inflight,
        node_losses: world.node_losses,
        rerouted: world.rerouted,
        force_disconnects: world.force_disconnects,
        latency_mean_ms: world.latencies.mean().unwrap_or(0.0),
        latency_p50_ms: world.latencies.quantile(0.50).unwrap_or(0.0),
        latency_p95_ms: world.latencies.quantile(0.95).unwrap_or(0.0),
        latency_p99_ms: world.latencies.quantile(0.99).unwrap_or(0.0),
        cache_hits: world.cache_hits,
        cache_misses: world.cache_misses,
        cache_hit_ratio: {
            let total = world.cache_hits + world.cache_misses;
            if total == 0 {
                0.0
            } else {
                world.cache_hits as f64 / total as f64
            }
        },
        cache_bytes_saved: world.cache_bytes_saved,
        poller_polls: poll_stats.polls,
        poller_slots_scanned: poll_stats.slots_scanned,
        poller_ready_events: world.poller_ready_events,
        watch_events: watch_stats.events,
        watch_deliveries: watch_stats.deliveries,
        watch_seen: world.watch_seen,
        max_watch_drain: world.max_watch_drain,
        metrics_series: world.registry.series_count() as u64,
        metrics_shards: world.registry.shard_count() as u64,
        metrics_max_shard: world.registry.max_shard_len() as u64,
        events_executed: world.events_executed,
        trace_digest: world.digest.hex(),
        trace: world.trace,
    }
}

fn next_arrival(world: &mut ScaleWorld, engine: &mut Engine<ScaleWorld>) {
    let now = engine.now();
    if now >= world.cfg.day_end() {
        return;
    }
    world.events_executed += 1;
    // Traffic stream only: function pick, then inter-arrival gap. The
    // fault and service streams never interleave here, so the arrival
    // trace is invariant under fault-plan changes.
    let f = world.zipf.sample(&mut world.traffic);
    let rate = world.cfg.rate_at(now);
    let gap = VirtualDuration::from_secs_f64(world.traffic.exponential(rate));
    engine.schedule_at(now + gap, |w, e| next_arrival(w, e));

    world.arrivals += 1;
    let n = world.placement.lock().fn_node[f];
    world.record(now, "arrival", 1, f as u64, n as u64);
    if world.in_system[n] as usize >= world.cfg.queue_capacity {
        world.shed += 1;
        world
            .registry
            .counter(
                "bf_scale_shed_total",
                &[("node", world.node_labels[n].as_str())],
            )
            .inc();
        world.record(now, "shed", 2, f as u64, n as u64);
        return;
    }
    world.in_system[n] += 1;
    world.note_cache_lookup(n, f);
    // Service stream: one jitter draw per admitted request.
    let svc = world.service_base(f).mul_f64(world.service.jitter(0.3));
    let start = now.max(world.busy_until[n]);
    let done = start + svc;
    world.busy_until[n] = done;
    let epoch = world.fn_epoch[f];
    let issued = now;
    engine.schedule_at(done, move |w, e| complete(w, e, f, n, epoch, issued));
}

fn complete(
    world: &mut ScaleWorld,
    engine: &mut Engine<ScaleWorld>,
    f: usize,
    n: usize,
    epoch: u64,
    issued: VirtualTime,
) {
    world.events_executed += 1;
    let now = engine.now();
    world.in_system[n] = world.in_system[n].saturating_sub(1);
    if world.fn_epoch[f] != epoch {
        // The node died while this request was in flight: a typed
        // failure, never a silent loss.
        world.failed_inflight += 1;
        world.record(now, "failed_inflight", 4, f as u64, n as u64);
        return;
    }
    world.processed += 1;
    let latency_ms = (now - issued).as_millis_f64();
    world.latencies.record(latency_ms);
    // Real registry lookups on the completion hot path: one counter per
    // function (10k series at full scale), a histogram, and one gauge
    // per node — the workload that motivates registry sharding.
    world
        .registry
        .counter(
            "bf_scale_completions_total",
            &[("function", world.fn_labels[f].as_str())],
        )
        .inc();
    world
        .registry
        .histogram("bf_scale_latency_ms", &[])
        .observe(latency_ms);
    world
        .registry
        .gauge(
            "bf_scale_inflight",
            &[("node", world.node_labels[n].as_str())],
        )
        .set(f64::from(world.in_system[n]));
    let s = world.session_of(f);
    world.sessions[s].backlog += 1;
    world.sessions[s].waker.wake();
    world.record(now, "complete", 3, f as u64, n as u64);
}

fn node_loss(world: &mut ScaleWorld, engine: &mut Engine<ScaleWorld>) {
    world.events_executed += 1;
    let now = engine.now();
    let alive_nodes: Vec<usize> = {
        let p = world.placement.lock();
        (0..p.alive.len()).filter(|&i| p.alive[i]).collect()
    };
    // Never kill the last two nodes: placement must stay possible.
    if alive_nodes.len() <= 2 {
        return;
    }
    // Losses prefer nodes with in-flight work (the interesting case: a
    // busy node dying strands typed in-flight failures, not just empty
    // slots), falling back to any alive node when the cluster is idle.
    let busy: Vec<usize> = alive_nodes
        .iter()
        .copied()
        .filter(|&i| world.in_system[i] > 0)
        .collect();
    let pool = if busy.is_empty() { &alive_nodes } else { &busy };
    let victim = pool[world.faults.index(pool.len())];
    world.placement.lock().alive[victim] = false;
    // The node's manager dies with it: its payload cache is gone, so a
    // replacement serving the same functions starts cold.
    world.node_cache[victim].clear();
    world.node_losses += 1;
    world.record(now, "node_loss", 5, victim as u64, 0);
    // Every instance on the victim migrates (create-before-delete);
    // in-flight work on the victim is invalidated via the epoch.
    let moved: Vec<usize> = {
        let p = world.placement.lock();
        (0..p.fn_node.len())
            .filter(|&f| p.fn_node[f] == victim)
            .collect()
    };
    for f in moved {
        world.fn_epoch[f] += 1;
        let replacement = world
            .cluster
            .replace_instance(world.fn_instance[f])
            // bf-lint: allow(panic): replacement against a cluster with
            // alive nodes cannot fail; failure is a harness bug.
            .unwrap_or_else(|e| panic!("replace f{f}: {e}"));
        world.fn_instance[f] = replacement.id;
        world.rerouted += 1;
    }
}

fn slow_episode(world: &mut ScaleWorld, engine: &mut Engine<ScaleWorld>, dur: VirtualDuration) {
    world.events_executed += 1;
    let now = engine.now();
    let s = world.faults.index(world.sessions.len());
    world.sessions[s].slow_until = now + dur;
    world.record(now, "slow_episode", 9, s as u64, dur.as_nanos());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(seed: u64) -> ScaleConfig {
        ScaleConfig {
            nodes: 20,
            functions: 200,
            sessions: 200,
            day: VirtualDuration::from_secs(4),
            base_rps: 80.0,
            peak_factor: 5.0,
            faults: FaultPlan {
                node_losses: 4,
                slow_consumers: 10,
                ..FaultPlan::production()
            },
            ..ScaleConfig::smoke(seed)
        }
    }

    #[test]
    fn conservation_holds_with_faults() {
        let r = run_scale(&tiny(7));
        assert_eq!(
            r.arrivals,
            r.processed + r.shed + r.failed_inflight,
            "{r:?}"
        );
        assert!(r.arrivals > 100, "{r:?}");
    }

    #[test]
    fn same_seed_same_result() {
        let a = run_scale(&tiny(11));
        let b = run_scale(&tiny(11));
        assert_eq!(a.trace_digest, b.trace_digest);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_diverge() {
        let a = run_scale(&tiny(1));
        let b = run_scale(&tiny(2));
        assert_ne!(a.trace_digest, b.trace_digest);
    }

    #[test]
    fn node_loss_reroutes_instances() {
        let r = run_scale(&tiny(5));
        assert!(r.node_losses > 0, "{r:?}");
        assert!(r.rerouted > 0, "{r:?}");
    }

    #[test]
    fn watch_streams_see_the_deploy_storm() {
        let r = run_scale(&tiny(3));
        // Two watchers, ≥ one Created per function each.
        assert!(r.watch_seen >= 2 * r.functions, "{r:?}");
        assert!(r.watch_events >= r.functions, "{r:?}");
    }

    #[test]
    fn no_faults_means_no_failures() {
        let cfg = tiny(9).with_faults(FaultPlan::none());
        let r = run_scale(&cfg);
        assert_eq!(r.failed_inflight, 0);
        assert_eq!(r.node_losses, 0);
        assert_eq!(r.force_disconnects, 0);
        assert_eq!(r.arrivals, r.processed + r.shed);
    }

    #[test]
    fn fault_plan_does_not_perturb_the_arrival_count() {
        // The traffic stream is split from the fault stream, so the
        // arrival process (count included) is invariant under fault-plan
        // changes that do not alter the offered rate.
        let with_faults = run_scale(&tiny(21).with_faults(FaultPlan {
            shed_storm: None,
            ..FaultPlan::production()
        }));
        let without = run_scale(&tiny(21).with_faults(FaultPlan::none()));
        assert_eq!(with_faults.arrivals, without.arrivals);
    }

    #[test]
    fn cache_counters_cover_every_admitted_request() {
        let r = run_scale(&tiny(23));
        // Every admitted request (processed or lost in flight) did
        // exactly one cache lookup; sheds never reach the cache.
        assert_eq!(
            r.cache_hits + r.cache_misses,
            r.processed + r.failed_inflight,
            "{r:?}"
        );
        // Zipf(1.2) reuse over a 200-function catalog keeps the head
        // resident: the day must be hit-dominated.
        assert!(r.cache_hits > r.cache_misses, "{r:?}");
        assert!(r.cache_hit_ratio > 0.5 && r.cache_hit_ratio <= 1.0, "{r:?}");
        assert!(r.cache_bytes_saved > 0, "{r:?}");
    }

    #[test]
    fn cache_accounting_never_perturbs_the_trace() {
        // The cache counters are derived bookkeeping: disabling faults
        // changes which nodes lose their caches, but the traffic trace
        // (and hence the digest) only depends on the split RNG streams.
        // Two identical runs agree on counters and digest alike.
        let a = run_scale(&tiny(29));
        let b = run_scale(&tiny(29));
        assert_eq!(a.cache_hits, b.cache_hits);
        assert_eq!(a.cache_bytes_saved, b.cache_bytes_saved);
        assert_eq!(a.trace_digest, b.trace_digest);
    }

    #[test]
    fn metrics_series_scale_with_catalog() {
        let r = run_scale(&tiny(13));
        // Function counters + node gauges/shed counters + histogram.
        assert!(r.metrics_series > r.functions / 2, "{r:?}");
        assert!(r.metrics_max_shard <= r.metrics_series);
    }

    #[test]
    fn diurnal_peak_outweighs_trough() {
        // Compare arrivals in the first sixth (trough) against the
        // midday sixth via the recorded trace.
        let r = run_scale(&tiny(17).with_trace());
        let day_ns = VirtualDuration::from_secs(4).as_nanos();
        let (mut trough, mut peak) = (0u64, 0u64);
        for line in &r.trace {
            let mut parts = line.split(' ');
            let (Some(t), Some(kind)) = (parts.next(), parts.next()) else {
                continue;
            };
            if kind != "arrival" {
                continue;
            }
            let t: u64 = t.parse().expect("trace timestamp");
            if t < day_ns / 6 {
                trough += 1;
            } else if t >= day_ns * 5 / 12 && t < day_ns * 7 / 12 {
                peak += 1;
            }
        }
        assert!(peak > 2 * trough, "peak {peak} vs trough {trough}");
    }

    #[test]
    fn zipf_head_dominates_completions() {
        let r = run_scale(&tiny(19).with_trace());
        let mut counts = vec![0u64; 200];
        for line in &r.trace {
            let parts: Vec<&str> = line.split(' ').collect();
            if parts.get(1) == Some(&"arrival") {
                let f: usize = parts[2].parse().expect("fn index");
                counts[f] += 1;
            }
        }
        let head: u64 = counts[..20].iter().sum();
        let total: u64 = counts.iter().sum();
        assert!(head * 2 > total, "head {head} of {total}");
    }
}
