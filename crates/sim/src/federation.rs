//! Federated control-plane ladder: the production-day scale harness
//! pointed at the sharded registry.
//!
//! Where `scale.rs` stresses the data/watch planes, this harness
//! stresses *placement*: a 1000-node / 10k-function day driven entirely
//! through the typed [`PlacementService`] API against a
//! [`ShardedRegistry`] at 1, 4 and 16 shards. Every operation feeds the
//! FNV-1a trace digest, so each ladder point is a byte-identical replay
//! certificate; the per-shard registry locks report their
//! max-span-per-acquisition, which is the "max per-lock contention"
//! number the ladder compares against the single-registry baseline.
//!
//! The run has four phases, all deterministic from the seed:
//!
//! 1. **placement storm** — one instance per function, Zipf-popular
//!    accelerators, counting configured/warm/cold outcomes;
//! 2. **churn** — release-and-replace cycles that exercise the warm
//!    bitstream caches (the PR-8 wins the federated router must keep);
//! 3. **failures** — device deaths whose tenants are re-placed through
//!    the federation;
//! 4. **rebalance** — one shard joins and one leaves, moving only the
//!    HRW-owed devices, bindings riding along.

use std::collections::VecDeque;
use std::sync::Arc;

use bf_model::{MemcpyModel, NodeId, NodeSpec, PcieGeneration, PcieLink, VirtualDuration};
use bf_registry::{
    AllocationPolicy, BoardState, DeviceQuery, PlacementService, RegistryDevice, ShardedRegistry,
};
use bf_simkit::{SimRng, ZipfSampler};
use parking_lot::Mutex;
use serde::Serialize;

use crate::digest::Digest;

/// Stream-split keys, disjoint per phase so draws in one phase cannot
/// perturb another.
const STREAM_ACCEL: u64 = 11;
const STREAM_CHURN: u64 = 12;
const STREAM_FAULTS: u64 = 13;

/// One federated ladder point.
#[derive(Debug, Clone, PartialEq)]
pub struct FederationConfig {
    /// Master seed; every stream splits off it.
    pub seed: u64,
    /// Registry shard count.
    pub shards: usize,
    /// Nodes (one FPGA device each).
    pub nodes: usize,
    /// Registered functions (and storm placements).
    pub functions: usize,
    /// Distinct accelerator bitstreams in the catalog.
    pub catalog: usize,
    /// Warm bitstream-cache slots per board.
    pub warm_slots: usize,
    /// Release-and-replace cycles after the storm.
    pub churn: usize,
    /// Device failures injected after churn.
    pub failures: usize,
    /// Zipf exponent for accelerator popularity.
    pub zipf_exponent: f64,
}

impl FederationConfig {
    /// The full production-day ladder point: 1000 nodes, 10k functions.
    pub fn ladder(shards: usize) -> FederationConfig {
        FederationConfig {
            seed: 42,
            shards,
            nodes: 1000,
            functions: 10_000,
            catalog: 64,
            warm_slots: 4,
            churn: 2_000,
            failures: 10,
            zipf_exponent: 1.1,
        }
    }

    /// The CI smoke point: 100 nodes, 1k functions, same phase mix.
    pub fn smoke(shards: usize) -> FederationConfig {
        FederationConfig {
            seed: 42,
            shards,
            nodes: 100,
            functions: 1_000,
            catalog: 16,
            warm_slots: 4,
            churn: 200,
            failures: 4,
            zipf_exponent: 1.1,
        }
    }
}

/// Counters and the replay digest for one ladder point.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FederationResult {
    /// Shards the point ran with.
    pub shards: usize,
    /// Nodes/devices.
    pub nodes: usize,
    /// Functions registered.
    pub functions: usize,
    /// Successful placements (storm + churn + failure re-homes).
    pub placed: u64,
    /// Placements that landed on an already-configured board.
    pub configured: u64,
    /// Placements satisfied from a warm bitstream cache.
    pub warm: u64,
    /// Placements that forced a cold reprogram.
    pub cold: u64,
    /// Board reprogram operations across all devices.
    pub reconfigurations: u64,
    /// Reprograms satisfied from a board's warm cache.
    pub warm_reprograms: u64,
    /// Tenants migrated off failed devices.
    pub migrated: u64,
    /// Devices moved by the join+leave rebalance pair.
    pub rebalance_moves: u64,
    /// Max devices+bindings walked under a single registry-lock
    /// acquisition, across all shards — the contention headline.
    pub max_lock_span: u64,
    /// Registry-lock acquisitions recorded across all shards.
    pub lock_acquisitions: u64,
    /// FNV-1a 64 digest over every control-plane event: the
    /// byte-identical replay certificate.
    pub trace_digest: String,
}

/// A simulated FPGA device behind the registry: a board with an LRU warm
/// bitstream cache, no manager event loop, no transport.
pub struct SimFpgaDevice {
    id: String,
    node: NodeSpec,
    warm_slots: usize,
    // Ranked as `board` in the lock hierarchy: taken below the shard's
    // registry lock on the view path, with nothing else held otherwise.
    board: Mutex<SimBoard>,
}

#[derive(Default)]
struct SimBoard {
    configured: Option<String>,
    warm: VecDeque<String>,
    programs: u64,
    warm_hits: u64,
}

impl SimFpgaDevice {
    /// A blank board on `node` with `warm_slots` cache slots.
    pub fn new(id: impl Into<String>, node: NodeSpec, warm_slots: usize) -> Arc<SimFpgaDevice> {
        Arc::new(SimFpgaDevice {
            id: id.into(),
            node,
            warm_slots,
            board: Mutex::new(SimBoard::default()),
        })
    }

    /// `(reprograms, warm-cache hits)` this board served.
    pub fn program_counts(&self) -> (u64, u64) {
        let board = self.board.lock();
        (board.programs, board.warm_hits)
    }
}

impl RegistryDevice for SimFpgaDevice {
    fn device_id(&self) -> &str {
        &self.id
    }

    fn node(&self) -> &NodeSpec {
        &self.node
    }

    fn board_state(&self) -> BoardState {
        let board = self.board.lock();
        BoardState {
            configured: board.configured.clone(),
            warm: board.warm.iter().cloned().collect(),
        }
    }

    fn program(&self, bitstream: &str) -> Result<(), String> {
        let mut board = self.board.lock();
        if board.configured.as_deref() == Some(bitstream) {
            return Ok(());
        }
        board.programs += 1;
        if let Some(pos) = board.warm.iter().position(|w| w == bitstream) {
            board.warm.remove(pos);
            board.warm_hits += 1;
        }
        if let Some(old) = board.configured.take() {
            board.warm.push_front(old);
            board.warm.truncate(self.warm_slots);
        }
        board.configured = Some(bitstream.to_string());
        Ok(())
    }

    fn scrape(&self) -> String {
        String::new()
    }
}

fn accel_name(i: usize) -> String {
    format!("acc-{i:03}")
}

/// Runs one federated ladder point. Deterministic: the same config
/// produces the same counters and the same trace digest, byte for byte.
pub fn run_federation(cfg: &FederationConfig) -> FederationResult {
    let sharded = ShardedRegistry::new(AllocationPolicy::paper(), cfg.shards);
    // Everything below drives the `PlacementService` surface — the
    // harness cannot tell a federation from a single registry.
    let service: &dyn PlacementService = &sharded;
    let mut digest = Digest::new();
    let root = SimRng::seed_from_u64(cfg.seed);
    let mut accel_rng = root.split(STREAM_ACCEL);
    let mut churn_rng = root.split(STREAM_CHURN);
    let mut fault_rng = root.split(STREAM_FAULTS);
    let zipf = ZipfSampler::new(cfg.catalog.max(1), cfg.zipf_exponent);

    // Devices: one per node, registered through the trait.
    let mut devices = Vec::with_capacity(cfg.nodes);
    for i in 0..cfg.nodes {
        let node = NodeSpec::new(
            NodeId::new(format!("n{i:04}")),
            PcieLink::new(PcieGeneration::Gen3, 8),
            MemcpyModel::paper(),
            1.0,
            VirtualDuration::from_millis_f64(3.5),
        );
        let device = SimFpgaDevice::new(format!("fpga-{i:04}"), node, cfg.warm_slots);
        devices.push(device.clone());
        service.register_device_handle(device);
    }

    // Functions: accelerator popularity is Zipf over the catalog.
    let mut fn_names = Vec::with_capacity(cfg.functions);
    for i in 0..cfg.functions {
        let accel = accel_name(zipf.sample(&mut accel_rng));
        let name = format!("fn-{i:05}");
        service.register_function(&name, DeviceQuery::for_accelerator(&accel));
        digest.str(&name);
        digest.str(&accel);
        fn_names.push(name);
    }

    // The harness's own tenancy ledger: instance -> function, kept so
    // failure re-homes know what to re-place. BTreeMap for deterministic
    // iteration everywhere it matters.
    let mut tenancy: std::collections::BTreeMap<String, String> = std::collections::BTreeMap::new();
    let mut placed = 0u64;
    let place = |tenancy: &mut std::collections::BTreeMap<String, String>,
                 digest: &mut Digest,
                 placed: &mut u64,
                 instance: &str,
                 function: &str| {
        match service.place_instance(instance, function) {
            Ok(allocation) => {
                *placed += 1;
                tenancy.insert(instance.to_string(), function.to_string());
                digest.str(instance);
                digest.str(&allocation.device_id);
                match &allocation.reconfigure {
                    Some(bitstream) => digest.str(bitstream),
                    None => digest.u64(0),
                }
            }
            Err(_) => digest.u64(u64::MAX),
        }
    };

    // Phase 1: placement storm, one instance per function.
    for (i, name) in fn_names.iter().enumerate() {
        place(
            &mut tenancy,
            &mut digest,
            &mut placed,
            &format!("inst-{i:05}"),
            name,
        );
    }

    // Phase 2: churn — release an instance, replace it for the same
    // function. Re-placements chase configured/warm boards, which is
    // where the warm-cache outcomes come from.
    for r in 0..cfg.churn {
        let victim = churn_rng.index(cfg.functions);
        let instance = format!("inst-{victim:05}");
        service.release_instance(&instance);
        tenancy.remove(&instance);
        digest.str(&instance);
        let function = fn_names[victim].clone();
        place(
            &mut tenancy,
            &mut digest,
            &mut placed,
            &format!("churn-{r:05}"),
            &function,
        );
    }

    // Phase 3: device failures; every tenant is re-placed through the
    // federation (create-before-delete is the cluster's job — here the
    // control plane only re-homes).
    let mut migrated = 0u64;
    for f in 0..cfg.failures {
        let ids = service.device_ids();
        if ids.is_empty() {
            break;
        }
        let dead = ids[fault_rng.index(ids.len())].clone();
        digest.str(&dead);
        if let Ok(tenants) = service.handle_device_failure(&dead) {
            for (t, tenant) in tenants.iter().enumerate() {
                let Some(function) = tenancy.remove(tenant) else {
                    continue;
                };
                migrated += 1;
                place(
                    &mut tenancy,
                    &mut digest,
                    &mut placed,
                    &format!("re-{f:02}-{t:03}"),
                    &function,
                );
            }
        }
    }

    // Phase 4: deterministic rebalance — one shard joins (stealing its
    // HRW share of devices, bindings riding along), then leaves again.
    let (joined, join_moves) = sharded.add_shard();
    let leave_moves = sharded.remove_shard(&joined).unwrap_or(0);
    let rebalance_moves = join_moves + leave_moves;
    digest.u64(join_moves);
    digest.u64(leave_moves);

    let outcomes = service.placement_outcomes();
    let contention = service.contention();
    let max_lock_span = contention
        .iter()
        .map(|c| c.stats.max_span)
        .max()
        .unwrap_or(0);
    let lock_acquisitions = contention.iter().map(|c| c.stats.acquisitions).sum();
    let (mut reconfigurations, mut warm_reprograms) = (0u64, 0u64);
    for device in &devices {
        let (programs, warm_hits) = device.program_counts();
        reconfigurations += programs;
        warm_reprograms += warm_hits;
    }

    FederationResult {
        shards: cfg.shards,
        nodes: cfg.nodes,
        functions: cfg.functions,
        placed,
        configured: outcomes.configured,
        warm: outcomes.warm,
        cold: outcomes.cold,
        reconfigurations,
        warm_reprograms,
        migrated,
        rebalance_moves,
        max_lock_span,
        lock_acquisitions,
        trace_digest: digest.hex(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(shards: usize) -> FederationConfig {
        FederationConfig {
            seed: 7,
            shards,
            nodes: 24,
            functions: 120,
            catalog: 8,
            warm_slots: 2,
            churn: 40,
            failures: 2,
            zipf_exponent: 1.1,
        }
    }

    #[test]
    fn same_seed_same_digest() {
        let a = run_federation(&tiny(4));
        let b = run_federation(&tiny(4));
        assert_eq!(a, b);
        assert_eq!(a.trace_digest, b.trace_digest);
    }

    #[test]
    fn storm_places_every_function() {
        let r = run_federation(&tiny(2));
        assert!(r.placed >= 120, "storm should place all functions: {r:?}");
        assert_eq!(r.configured + r.warm + r.cold, r.placed);
    }

    #[test]
    fn sharding_cuts_the_max_lock_span() {
        let one = run_federation(&tiny(1));
        let four = run_federation(&tiny(4));
        assert!(
            four.max_lock_span * 2 <= one.max_lock_span,
            "4 shards should at least halve the span: {} vs {}",
            four.max_lock_span,
            one.max_lock_span
        );
    }
}
