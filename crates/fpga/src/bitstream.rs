//! Bitstreams and the kernels they implement.
//!
//! A [`Bitstream`] is the unit of board (re)configuration: a named FPGA
//! image carrying one or more kernels. Each kernel couples a
//! [`KernelBehavior`] — its functional semantics plus a deterministic
//! latency model — with launch-argument validation.

use std::fmt;
use std::sync::Arc;

use bf_model::VirtualDuration;

use crate::error::FpgaError;
use crate::memory::{BufferId, DeviceMemory};

/// One argument of a kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelArg {
    /// A device buffer handle.
    Buffer(BufferId),
    /// A 32-bit unsigned scalar.
    U32(u32),
    /// A 32-bit signed scalar.
    I32(i32),
    /// A 64-bit unsigned scalar.
    U64(u64),
    /// A 32-bit float scalar.
    F32(f32),
}

impl KernelArg {
    /// Extracts a buffer handle.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::InvalidKernelArgs`] when the argument is a
    /// scalar.
    pub fn as_buffer(&self) -> Result<BufferId, FpgaError> {
        match self {
            KernelArg::Buffer(id) => Ok(*id),
            other => Err(FpgaError::InvalidKernelArgs(format!(
                "expected buffer, got {other:?}"
            ))),
        }
    }

    /// Extracts a `u32` scalar.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::InvalidKernelArgs`] for any other variant.
    pub fn as_u32(&self) -> Result<u32, FpgaError> {
        match self {
            KernelArg::U32(v) => Ok(*v),
            other => Err(FpgaError::InvalidKernelArgs(format!(
                "expected u32, got {other:?}"
            ))),
        }
    }
}

/// Highest kernel-argument index any backend accepts. Argument slots are
/// materialized positionally at launch (`0..=max_index`), so an unchecked
/// client-chosen index would turn one `SetKernelArg` frame into
/// `u32::MAX` iterations of launch-time work; real OpenCL kernels on
/// these boards take a handful of arguments. Enforced at both trust
/// boundaries: the device-manager session (wire) and the native backend.
pub const MAX_KERNEL_ARGS: u32 = 256;

/// A kernel launch: its arguments and NDRange size.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelInvocation {
    /// Positional launch arguments.
    pub args: Vec<KernelArg>,
    /// Global work size (OpenCL NDRange, up to 3 dimensions).
    pub global_work: [u64; 3],
}

impl KernelInvocation {
    /// Creates an invocation over a 1-D NDRange.
    pub fn new(args: Vec<KernelArg>, items: u64) -> Self {
        KernelInvocation {
            args,
            global_work: [items, 1, 1],
        }
    }

    /// Total number of work items.
    pub fn work_items(&self) -> u64 {
        self.global_work.iter().product()
    }

    /// Fetches argument `idx`.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::InvalidKernelArgs`] when out of range.
    pub fn arg(&self, idx: usize) -> Result<&KernelArg, FpgaError> {
        self.args
            .get(idx)
            .ok_or_else(|| FpgaError::InvalidKernelArgs(format!("missing argument {idx}")))
    }
}

/// Functional semantics and latency model of one synthesized kernel.
///
/// Implementations must be deterministic: the same invocation against the
/// same memory state produces the same output and the same duration —
/// hardware kernels are fixed-function pipelines.
pub trait KernelBehavior: Send + Sync {
    /// Latency of the launch on the configured device.
    fn duration(&self, invocation: &KernelInvocation) -> VirtualDuration;

    /// Runs the kernel functionally against device memory.
    ///
    /// Called only when every referenced buffer is materialized; timing-only
    /// launches (virtual buffers) skip it.
    ///
    /// # Errors
    ///
    /// Implementations return [`FpgaError::InvalidKernelArgs`] for malformed
    /// launches and may surface memory errors.
    fn execute(
        &self,
        invocation: &KernelInvocation,
        memory: &mut DeviceMemory,
    ) -> Result<(), FpgaError>;
}

/// A named kernel inside a bitstream.
#[derive(Clone)]
pub struct KernelDescriptor {
    name: String,
    behavior: Arc<dyn KernelBehavior>,
}

impl KernelDescriptor {
    /// Couples a kernel name with its behavior.
    pub fn new(name: impl Into<String>, behavior: Arc<dyn KernelBehavior>) -> Self {
        KernelDescriptor {
            name: name.into(),
            behavior,
        }
    }

    /// The kernel's name (as `clCreateKernel` would look it up).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The kernel's behavior.
    pub fn behavior(&self) -> &Arc<dyn KernelBehavior> {
        &self.behavior
    }
}

impl fmt::Debug for KernelDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KernelDescriptor")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

/// A synthesized FPGA image: the unit of (re)configuration.
#[derive(Debug, Clone)]
pub struct Bitstream {
    id: String,
    kernels: Vec<KernelDescriptor>,
}

impl Bitstream {
    /// Creates a bitstream named `id` with the given kernels.
    pub fn new(id: impl Into<String>, kernels: Vec<KernelDescriptor>) -> Self {
        Bitstream {
            id: id.into(),
            kernels,
        }
    }

    /// The bitstream identifier (e.g. `"spector-sobel"`).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The kernels the image contains.
    pub fn kernels(&self) -> &[KernelDescriptor] {
        &self.kernels
    }

    /// Looks up a kernel by name.
    pub fn kernel(&self, name: &str) -> Option<&KernelDescriptor> {
        self.kernels.iter().find(|k| k.name() == name)
    }
}

/// A [`KernelBehavior`] built from closures — convenient for tests and
/// simple accelerators.
pub struct FnKernel<D, E> {
    duration: D,
    execute: E,
}

impl<D, E> FnKernel<D, E>
where
    D: Fn(&KernelInvocation) -> VirtualDuration + Send + Sync,
    E: Fn(&KernelInvocation, &mut DeviceMemory) -> Result<(), FpgaError> + Send + Sync,
{
    /// Couples a duration closure with an execution closure.
    pub fn new(duration: D, execute: E) -> Self {
        FnKernel { duration, execute }
    }
}

impl<D, E> KernelBehavior for FnKernel<D, E>
where
    D: Fn(&KernelInvocation) -> VirtualDuration + Send + Sync,
    E: Fn(&KernelInvocation, &mut DeviceMemory) -> Result<(), FpgaError> + Send + Sync,
{
    fn duration(&self, invocation: &KernelInvocation) -> VirtualDuration {
        (self.duration)(invocation)
    }

    fn execute(
        &self,
        invocation: &KernelInvocation,
        memory: &mut DeviceMemory,
    ) -> Result<(), FpgaError> {
        (self.execute)(invocation, memory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noop_kernel(name: &str) -> KernelDescriptor {
        KernelDescriptor::new(
            name,
            Arc::new(FnKernel::new(
                |_inv| VirtualDuration::from_micros(10),
                |_inv, _mem| Ok(()),
            )),
        )
    }

    #[test]
    fn bitstream_lookup_by_name() {
        let bs = Bitstream::new("img", vec![noop_kernel("a"), noop_kernel("b")]);
        assert_eq!(bs.kernel("a").map(|k| k.name()), Some("a"));
        assert!(bs.kernel("missing").is_none());
        assert_eq!(bs.kernels().len(), 2);
    }

    #[test]
    fn invocation_counts_work_items() {
        let inv = KernelInvocation {
            args: vec![],
            global_work: [4, 3, 2],
        };
        assert_eq!(inv.work_items(), 24);
    }

    #[test]
    fn arg_extraction_is_typed() {
        let inv = KernelInvocation::new(vec![KernelArg::U32(7), KernelArg::Buffer(BufferId(1))], 1);
        assert_eq!(inv.arg(0).and_then(KernelArg::as_u32), Ok(7));
        assert_eq!(inv.arg(1).and_then(KernelArg::as_buffer), Ok(BufferId(1)));
        assert!(inv.arg(0).and_then(KernelArg::as_buffer).is_err());
        assert!(inv.arg(9).is_err());
    }

    #[test]
    fn fn_kernel_delegates() {
        let k = FnKernel::new(
            |inv: &KernelInvocation| VirtualDuration::from_nanos(inv.work_items()),
            |_inv, _mem| Ok(()),
        );
        let inv = KernelInvocation::new(vec![], 42);
        assert_eq!(k.duration(&inv), VirtualDuration::from_nanos(42));
    }
}
