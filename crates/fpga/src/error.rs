//! Error type for board operations.

use std::error::Error;
use std::fmt;

/// Errors raised by the simulated FPGA board.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FpgaError {
    /// The referenced buffer does not exist on the device.
    BufferNotFound(u64),
    /// An allocation would exceed the board's DDR capacity.
    OutOfMemory {
        /// Bytes requested by the allocation.
        requested: u64,
        /// Bytes still available on the board.
        available: u64,
    },
    /// A read or write touched bytes outside the buffer.
    OutOfBounds {
        /// The buffer that was accessed.
        buffer: u64,
        /// First byte of the access.
        offset: u64,
        /// Length of the access.
        len: u64,
        /// Allocated size of the buffer.
        size: u64,
    },
    /// An operation needs a configured bitstream but the board is blank.
    NoBitstream,
    /// The configured bitstream does not contain the requested kernel.
    KernelNotFound(String),
    /// The kernel rejected its launch arguments.
    InvalidKernelArgs(String),
}

impl fmt::Display for FpgaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FpgaError::BufferNotFound(id) => write!(f, "device buffer {id} not found"),
            FpgaError::OutOfMemory {
                requested,
                available,
            } => {
                write!(
                    f,
                    "device out of memory: requested {requested} bytes, {available} free"
                )
            }
            FpgaError::OutOfBounds {
                buffer,
                offset,
                len,
                size,
            } => write!(
                f,
                "access [{offset}, {}) out of bounds for buffer {buffer} of {size} bytes",
                offset + len
            ),
            FpgaError::NoBitstream => write!(f, "no bitstream configured on the board"),
            FpgaError::KernelNotFound(name) => {
                write!(f, "kernel {name:?} not present in the configured bitstream")
            }
            FpgaError::InvalidKernelArgs(msg) => write!(f, "invalid kernel arguments: {msg}"),
        }
    }
}

impl Error for FpgaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = FpgaError::OutOfBounds {
            buffer: 3,
            offset: 10,
            len: 20,
            size: 16,
        };
        let msg = e.to_string();
        assert!(msg.contains("buffer 3"));
        assert!(msg.contains("16 bytes"));
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FpgaError>();
    }
}
