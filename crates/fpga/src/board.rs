//! The board itself: a single-accelerator FPGA that executes operations one
//! at a time on a virtual timeline.

use std::sync::Arc;

use bf_metrics::BusyTracker;
use bf_model::{PcieLink, VirtualDuration, VirtualTime};

use crate::bitstream::{Bitstream, KernelInvocation};
use crate::error::FpgaError;
use crate::memory::{BufferId, DeviceMemory, Payload};

/// Static characteristics of a board model.
#[derive(Debug, Clone, PartialEq)]
pub struct BoardSpec {
    /// Marketing name of the board.
    pub model: String,
    /// DDR capacity in bytes.
    pub memory_bytes: u64,
    /// Logic-element count (informational, surfaced via device info).
    pub logic_elements: u64,
    /// Time to program a full bitstream over PCIe.
    pub reconfiguration_time: VirtualDuration,
    /// How many bitstream images the board keeps staged ("warm") in
    /// host-side flash after programming them once. Reprogramming to a
    /// warm image pays [`warm_reconfiguration_time`] instead of the full
    /// PCIe transfer. `0` (the default) disables the cache entirely, so
    /// every reprogram pays the full cost — the paper's DE5a-Net
    /// behavior.
    ///
    /// [`warm_reconfiguration_time`]: BoardSpec::warm_reconfiguration_time
    pub bitstream_cache_slots: usize,
    /// Reconfiguration time when the target image is warm-cached.
    /// Ignored while [`bitstream_cache_slots`] is `0`.
    ///
    /// [`bitstream_cache_slots`]: BoardSpec::bitstream_cache_slots
    pub warm_reconfiguration_time: VirtualDuration,
}

impl BoardSpec {
    /// The Terasic DE5a-Net used in the paper: Intel Arria 10 GX, 1150K
    /// logic elements, 8 GB DDR over two SODIMM sockets; full
    /// reconfiguration over PCIe takes a couple of seconds.
    pub fn de5a_net() -> Self {
        BoardSpec {
            model: "Terasic DE5a-Net (Intel Arria 10 GX)".to_string(),
            memory_bytes: 8 << 30,
            logic_elements: 1_150_000,
            reconfiguration_time: VirtualDuration::from_millis(2_200),
            bitstream_cache_slots: 0,
            warm_reconfiguration_time: VirtualDuration::from_millis(2_200),
        }
    }

    /// Enables the warm bitstream cache: `slots` staged images,
    /// `warm_time` to reprogram to one of them.
    pub fn with_bitstream_cache(mut self, slots: usize, warm_time: VirtualDuration) -> Self {
        self.bitstream_cache_slots = slots;
        self.warm_reconfiguration_time = warm_time;
        self
    }
}

impl Default for BoardSpec {
    fn default() -> Self {
        Self::de5a_net()
    }
}

/// Timing of one completed device operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpTiming {
    /// When the operation was handed to the board.
    pub issued_at: VirtualTime,
    /// When the board actually started it (>= `issued_at`; the board is
    /// serial, so a busy board delays the start).
    pub started_at: VirtualTime,
    /// When the operation finished.
    pub ended_at: VirtualTime,
}

impl OpTiming {
    /// Time spent waiting for the board.
    pub fn queue_delay(&self) -> VirtualDuration {
        self.started_at - self.issued_at
    }

    /// Time the board was busy with this operation.
    pub fn service_time(&self) -> VirtualDuration {
        self.ended_at - self.started_at
    }
}

/// A simulated PCIe-attached FPGA board.
///
/// The board is *serial*: operations execute one at a time in issue order,
/// exactly like a single compute-unit OpenCL accelerator fed by the Device
/// Manager's central queue. Every data movement charges the PCIe link and
/// every kernel launch charges its [`KernelBehavior`] duration; busy time
/// is attributed to the issuing owner for utilization accounting.
///
/// [`KernelBehavior`]: crate::KernelBehavior
#[derive(Debug)]
pub struct Board {
    spec: BoardSpec,
    pcie: PcieLink,
    bitstream: Option<Arc<Bitstream>>,
    memory: DeviceMemory,
    available_at: VirtualTime,
    busy: BusyTracker,
    reconfigurations: u64,
    /// Warm-cached bitstream ids in LRU order (most recent at the back);
    /// bounded by `spec.bitstream_cache_slots`, empty when disabled.
    warm_bitstreams: Vec<String>,
}

impl Board {
    /// Creates a board with the given spec behind the given PCIe link.
    pub fn new(spec: BoardSpec, pcie: PcieLink) -> Self {
        let memory = DeviceMemory::new(spec.memory_bytes);
        Board {
            spec,
            pcie,
            bitstream: None,
            memory,
            available_at: VirtualTime::ZERO,
            busy: BusyTracker::new(),
            reconfigurations: 0,
            warm_bitstreams: Vec::new(),
        }
    }

    /// The board spec.
    pub fn spec(&self) -> &BoardSpec {
        &self.spec
    }

    /// The PCIe link to the host.
    pub fn pcie(&self) -> &PcieLink {
        &self.pcie
    }

    /// The currently configured bitstream, if any.
    pub fn bitstream(&self) -> Option<&Arc<Bitstream>> {
        self.bitstream.as_ref()
    }

    /// Identifier of the configured bitstream, if any.
    pub fn bitstream_id(&self) -> Option<&str> {
        self.bitstream.as_ref().map(|b| b.id())
    }

    /// Number of reconfigurations performed.
    pub fn reconfigurations(&self) -> u64 {
        self.reconfigurations
    }

    /// Bitstream ids currently staged in the warm cache, least recently
    /// programmed first. Empty when the cache is disabled.
    pub fn warm_bitstreams(&self) -> &[String] {
        &self.warm_bitstreams
    }

    /// Whether programming `bitstream` would hit the warm cache (pay
    /// [`BoardSpec::warm_reconfiguration_time`] instead of the full
    /// transfer).
    pub fn is_warm(&self, bitstream: &str) -> bool {
        self.spec.bitstream_cache_slots > 0 && self.warm_bitstreams.iter().any(|b| b == bitstream)
    }

    /// The device memory (for tests and kernels).
    pub fn memory(&self) -> &DeviceMemory {
        &self.memory
    }

    /// Busy-time accounting for utilization metrics.
    pub fn busy_tracker(&self) -> &BusyTracker {
        &self.busy
    }

    /// The instant the board becomes idle.
    pub fn available_at(&self) -> VirtualTime {
        self.available_at
    }

    fn occupy(&mut self, now: VirtualTime, d: VirtualDuration, owner: &str) -> OpTiming {
        let started_at = now.max(self.available_at);
        let ended_at = started_at + d;
        self.busy.record(started_at, ended_at, owner);
        self.available_at = ended_at;
        OpTiming {
            issued_at: now,
            started_at,
            ended_at,
        }
    }

    /// Programs `bitstream` onto the board, wiping DDR content.
    ///
    /// Programming blocks the board for [`BoardSpec::reconfiguration_time`]
    /// — or [`BoardSpec::warm_reconfiguration_time`] when the image is
    /// staged in the warm bitstream cache; the busy interval is attributed
    /// to `owner` (usually the registry or the requesting function).
    pub fn program(
        &mut self,
        bitstream: Arc<Bitstream>,
        now: VirtualTime,
        owner: &str,
    ) -> OpTiming {
        let cost = if self.is_warm(bitstream.id()) {
            self.spec.warm_reconfiguration_time
        } else {
            self.spec.reconfiguration_time
        };
        let timing = self.occupy(now, cost, owner);
        self.memory.clear();
        self.touch_warm(bitstream.id());
        self.bitstream = Some(bitstream);
        self.reconfigurations += 1;
        timing
    }

    /// LRU-touches `id` in the warm cache, evicting the least recently
    /// programmed image past the slot budget. No-op while disabled.
    fn touch_warm(&mut self, id: &str) {
        if self.spec.bitstream_cache_slots == 0 {
            return;
        }
        self.warm_bitstreams.retain(|b| b != id);
        // bf-flow: allow(hot_alloc): bounded by bitstream_cache_slots —
        // the loop below evicts past the slot budget.
        self.warm_bitstreams.push(id.to_string());
        while self.warm_bitstreams.len() > self.spec.bitstream_cache_slots {
            self.warm_bitstreams.remove(0);
        }
    }

    /// Allocates a device buffer (no board time is charged; `clCreateBuffer`
    /// is a host-side bookkeeping call until data moves).
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::OutOfMemory`] when DDR is exhausted.
    pub fn alloc_buffer(&mut self, len: u64) -> Result<BufferId, FpgaError> {
        self.memory.alloc(len)
    }

    /// Frees a device buffer.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::BufferNotFound`] on a stale handle.
    pub fn free_buffer(&mut self, id: BufferId) -> Result<(), FpgaError> {
        self.memory.free(id)
    }

    /// Size of a device buffer.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::BufferNotFound`] on a stale handle.
    pub fn buffer_len(&self, id: BufferId) -> Result<u64, FpgaError> {
        self.memory.len_of(id)
    }

    /// DMA of `payload` into `buffer` at `offset`, charging the PCIe link.
    ///
    /// # Errors
    ///
    /// Returns memory errors; no board time is consumed on failure.
    pub fn write_buffer(
        &mut self,
        buffer: BufferId,
        offset: u64,
        payload: &Payload,
        now: VirtualTime,
        owner: &str,
    ) -> Result<OpTiming, FpgaError> {
        self.memory.write(buffer, offset, payload)?;
        let d = self.pcie.transfer_time(payload.len());
        Ok(self.occupy(now, d, owner))
    }

    /// DMA of `len` bytes out of `buffer` at `offset`, charging the PCIe
    /// link. Returns real bytes when the buffer is materialized.
    ///
    /// # Errors
    ///
    /// Returns memory errors; no board time is consumed on failure.
    pub fn read_buffer(
        &mut self,
        buffer: BufferId,
        offset: u64,
        len: u64,
        now: VirtualTime,
        owner: &str,
    ) -> Result<(OpTiming, Payload), FpgaError> {
        let payload = self.memory.read(buffer, offset, len)?;
        let d = self.pcie.transfer_time(len);
        Ok((self.occupy(now, d, owner), payload))
    }

    /// DDR-to-DDR copy between two device buffers (`clEnqueueCopyBuffer`):
    /// no PCIe traversal, charged at the board's DDR bandwidth.
    ///
    /// # Errors
    ///
    /// Returns memory errors; no board time is consumed on failure.
    #[allow(clippy::too_many_arguments)] // mirrors clEnqueueCopyBuffer's signature
    pub fn copy_buffer(
        &mut self,
        src: BufferId,
        dst: BufferId,
        src_offset: u64,
        dst_offset: u64,
        len: u64,
        now: VirtualTime,
        owner: &str,
    ) -> Result<OpTiming, FpgaError> {
        self.memory.copy(src, dst, src_offset, dst_offset, len)?;
        // Two DDR2 SODIMM channels: ~10 GB/s effective read+write.
        let d =
            VirtualDuration::from_micros(20) + VirtualDuration::from_secs_f64(len as f64 / 10.0e9);
        Ok(self.occupy(now, d, owner))
    }

    /// Launches a kernel from the configured bitstream.
    ///
    /// The launch charges the kernel's deterministic duration. Functional
    /// execution happens only when every buffer argument is materialized;
    /// otherwise the launch is timing-only (used by the large-transfer and
    /// DES experiments).
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::NoBitstream`], [`FpgaError::KernelNotFound`],
    /// or any error raised by the kernel itself. On failure no board time
    /// is consumed.
    pub fn launch_kernel(
        &mut self,
        name: &str,
        invocation: &KernelInvocation,
        now: VirtualTime,
        owner: &str,
    ) -> Result<OpTiming, FpgaError> {
        let bitstream = self.bitstream.clone().ok_or(FpgaError::NoBitstream)?;
        let kernel = bitstream
            .kernel(name)
            .ok_or_else(|| FpgaError::KernelNotFound(name.to_string()))?;
        // Functional execution requires real input data. Output buffers are
        // legitimately unwritten before the launch, so the gate is: run the
        // kernel's math when *some* referenced buffer holds real bytes (the
        // kernel materializes its outputs itself); an all-virtual launch is
        // timing-only.
        let buffer_args: Vec<_> = invocation
            .args
            .iter()
            .filter_map(|arg| match arg {
                crate::bitstream::KernelArg::Buffer(id) => Some(*id),
                _ => None,
            })
            .collect();
        let functional = buffer_args.is_empty()
            || buffer_args
                .iter()
                .any(|id| self.memory.is_materialized(*id));
        if functional {
            kernel.behavior().execute(invocation, &mut self.memory)?;
        }
        let d = kernel.behavior().duration(invocation);
        Ok(self.occupy(now, d, owner))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use bf_model::{PcieGeneration, VirtualDuration};

    use super::*;
    use crate::bitstream::{FnKernel, KernelArg, KernelDescriptor};

    fn test_board() -> Board {
        Board::new(
            BoardSpec::de5a_net(),
            PcieLink::new(PcieGeneration::Gen3, 8),
        )
    }

    fn incr_bitstream() -> Arc<Bitstream> {
        // A kernel that adds 1 to every byte of its single buffer argument.
        let behavior = FnKernel::new(
            |_inv: &KernelInvocation| VirtualDuration::from_micros(50),
            |inv: &KernelInvocation, mem: &mut DeviceMemory| {
                let buf = inv.arg(0)?.as_buffer()?;
                for b in mem.bytes_mut(buf)? {
                    *b = b.wrapping_add(1);
                }
                Ok(())
            },
        );
        Arc::new(Bitstream::new(
            "incr",
            vec![KernelDescriptor::new("incr", Arc::new(behavior))],
        ))
    }

    #[test]
    fn operations_serialize_on_the_board() {
        let mut board = test_board();
        let buf = board.alloc_buffer(1 << 20).expect("alloc");
        let t0 = VirtualTime::ZERO;
        let w1 = board
            .write_buffer(buf, 0, &Payload::Synthetic(1 << 20), t0, "f1")
            .expect("write 1");
        let w2 = board
            .write_buffer(buf, 0, &Payload::Synthetic(1 << 20), t0, "f2")
            .expect("write 2");
        assert_eq!(w2.started_at, w1.ended_at, "second op waits for the first");
        assert!(w2.queue_delay() > VirtualDuration::ZERO);
    }

    #[test]
    fn kernel_launch_is_functional_when_data_present() {
        let mut board = test_board();
        board.program(incr_bitstream(), VirtualTime::ZERO, "registry");
        let buf = board.alloc_buffer(4).expect("alloc");
        let now = board.available_at();
        board
            .write_buffer(buf, 0, &Payload::Data(vec![1, 2, 3, 4].into()), now, "f")
            .expect("write");
        let inv = KernelInvocation::new(vec![KernelArg::Buffer(buf)], 4);
        let now = board.available_at();
        board.launch_kernel("incr", &inv, now, "f").expect("launch");
        let now = board.available_at();
        let (_, out) = board.read_buffer(buf, 0, 4, now, "f").expect("read");
        assert_eq!(out, Payload::Data(vec![2, 3, 4, 5].into()));
    }

    #[test]
    fn kernel_launch_is_timing_only_on_virtual_buffers() {
        let mut board = test_board();
        board.program(incr_bitstream(), VirtualTime::ZERO, "registry");
        let buf = board.alloc_buffer(1 << 10).expect("alloc");
        let inv = KernelInvocation::new(vec![KernelArg::Buffer(buf)], 1 << 10);
        let now = board.available_at();
        let timing = board.launch_kernel("incr", &inv, now, "f").expect("launch");
        assert_eq!(timing.service_time(), VirtualDuration::from_micros(50));
        assert!(!board.memory().is_materialized(buf));
    }

    #[test]
    fn launch_without_bitstream_fails() {
        let mut board = test_board();
        let inv = KernelInvocation::new(vec![], 1);
        assert_eq!(
            board.launch_kernel("x", &inv, VirtualTime::ZERO, "f"),
            Err(FpgaError::NoBitstream)
        );
    }

    #[test]
    fn unknown_kernel_fails() {
        let mut board = test_board();
        board.program(incr_bitstream(), VirtualTime::ZERO, "r");
        let inv = KernelInvocation::new(vec![], 1);
        assert_eq!(
            board.launch_kernel("nope", &inv, board.available_at(), "f"),
            Err(FpgaError::KernelNotFound("nope".to_string()))
        );
    }

    #[test]
    fn reprogramming_wipes_memory_and_blocks_the_board() {
        let mut board = test_board();
        board.program(incr_bitstream(), VirtualTime::ZERO, "r");
        let buf = board.alloc_buffer(128).expect("alloc");
        let before = board.available_at();
        let timing = board.program(incr_bitstream(), before, "r");
        assert_eq!(timing.service_time(), board.spec().reconfiguration_time);
        assert_eq!(board.buffer_len(buf), Err(FpgaError::BufferNotFound(buf.0)));
        assert_eq!(board.reconfigurations(), 2);
    }

    fn named_bitstream(id: &str) -> Arc<Bitstream> {
        Arc::new(Bitstream::new(id, vec![]))
    }

    #[test]
    fn warm_bitstream_cache_cuts_reprogram_cost() {
        let warm_time = VirtualDuration::from_millis(200);
        let spec = BoardSpec::de5a_net().with_bitstream_cache(2, warm_time);
        let full_time = spec.reconfiguration_time;
        let mut board = Board::new(spec, PcieLink::new(PcieGeneration::Gen3, 8));
        let t1 = board.program(named_bitstream("a"), board.available_at(), "r");
        assert_eq!(t1.service_time(), full_time, "first program is cold");
        board.program(named_bitstream("b"), board.available_at(), "r");
        assert!(board.is_warm("a") && board.is_warm("b"));
        let t2 = board.program(named_bitstream("a"), board.available_at(), "r");
        assert_eq!(t2.service_time(), warm_time, "staged image reprograms fast");
    }

    #[test]
    fn warm_bitstream_cache_is_lru_bounded() {
        let spec = BoardSpec::de5a_net().with_bitstream_cache(2, VirtualDuration::from_millis(1));
        let mut board = Board::new(spec, PcieLink::new(PcieGeneration::Gen3, 8));
        for id in ["a", "b", "a", "c"] {
            board.program(named_bitstream(id), board.available_at(), "r");
        }
        // Touch order a, b, a, c: "b" is the LRU victim of the third slot.
        assert_eq!(board.warm_bitstreams(), ["a".to_string(), "c".to_string()]);
        assert!(!board.is_warm("b"));
    }

    #[test]
    fn warm_cache_disabled_by_default_keeps_full_reprogram_cost() {
        let mut board = test_board();
        board.program(named_bitstream("a"), board.available_at(), "r");
        let t = board.program(named_bitstream("a"), board.available_at(), "r");
        assert_eq!(t.service_time(), board.spec().reconfiguration_time);
        assert!(board.warm_bitstreams().is_empty());
    }

    #[test]
    fn busy_time_is_attributed_per_owner() {
        let mut board = test_board();
        let buf = board.alloc_buffer(1 << 20).expect("alloc");
        board
            .write_buffer(
                buf,
                0,
                &Payload::Synthetic(1 << 20),
                VirtualTime::ZERO,
                "f1",
            )
            .expect("w1");
        let now = board.available_at();
        board
            .write_buffer(buf, 0, &Payload::Synthetic(1 << 20), now, "f2")
            .expect("w2");
        let t = board.busy_tracker();
        assert!(t.busy_of("f1") > VirtualDuration::ZERO);
        assert_eq!(t.busy_of("f1"), t.busy_of("f2"));
        assert_eq!(t.total_busy(), t.busy_of("f1") + t.busy_of("f2"));
    }

    #[test]
    fn failed_ops_consume_no_board_time() {
        let mut board = test_board();
        let before = board.available_at();
        let err = board.read_buffer(BufferId(99), 0, 4, VirtualTime::ZERO, "f");
        assert!(err.is_err());
        assert_eq!(board.available_at(), before);
        assert!(board.busy_tracker().is_empty());
    }
}
