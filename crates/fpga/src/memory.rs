//! The board's on-card DDR memory.
//!
//! Buffers can be *materialized* (backed by real bytes so kernels execute
//! functionally) or *virtual* (size-only, used when only timing matters —
//! e.g. the 2 GB transfers of Fig. 4(a), which would be wasteful to
//! allocate for every sweep point). A virtual buffer is materialized lazily
//! the first time real data is written into it.

use std::collections::HashMap;

use crate::error::FpgaError;

/// Handle to a device buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BufferId(pub u64);

impl std::fmt::Display for BufferId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "buf#{}", self.0)
    }
}

/// Payload of a transfer: real bytes or a size-only placeholder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// Real data; kernels operating on it run functionally.
    Data(Vec<u8>),
    /// Size-only placeholder; the transfer is timed but carries no bytes.
    Synthetic(u64),
}

impl Payload {
    /// Number of bytes this payload represents.
    pub fn len(&self) -> u64 {
        match self {
            Payload::Data(d) => d.len() as u64,
            Payload::Synthetic(n) => *n,
        }
    }

    /// Whether the payload represents zero bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrows the real bytes, if any.
    pub fn as_data(&self) -> Option<&[u8]> {
        match self {
            Payload::Data(d) => Some(d),
            Payload::Synthetic(_) => None,
        }
    }
}

impl From<Vec<u8>> for Payload {
    fn from(d: Vec<u8>) -> Self {
        Payload::Data(d)
    }
}

impl From<&[u8]> for Payload {
    fn from(d: &[u8]) -> Self {
        Payload::Data(d.to_vec())
    }
}

#[derive(Debug)]
enum Storage {
    Virtual,
    Materialized(Vec<u8>),
}

#[derive(Debug)]
struct Allocation {
    len: u64,
    storage: Storage,
}

/// The DDR memory banks of one board.
#[derive(Debug)]
pub struct DeviceMemory {
    capacity: u64,
    used: u64,
    next_id: u64,
    allocations: HashMap<u64, Allocation>,
}

impl DeviceMemory {
    /// Creates a memory pool of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        DeviceMemory {
            capacity,
            used: 0,
            next_id: 1,
            allocations: HashMap::new(),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes still available.
    pub fn available(&self) -> u64 {
        self.capacity - self.used
    }

    /// Allocates a buffer of `len` bytes (virtual until data is written).
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::OutOfMemory`] when `len` exceeds the free space.
    pub fn alloc(&mut self, len: u64) -> Result<BufferId, FpgaError> {
        if len > self.available() {
            return Err(FpgaError::OutOfMemory {
                requested: len,
                available: self.available(),
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.used += len;
        self.allocations.insert(
            id,
            Allocation {
                len,
                storage: Storage::Virtual,
            },
        );
        Ok(BufferId(id))
    }

    /// Frees a buffer.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::BufferNotFound`] if the handle is stale.
    pub fn free(&mut self, id: BufferId) -> Result<(), FpgaError> {
        match self.allocations.remove(&id.0) {
            Some(alloc) => {
                self.used -= alloc.len;
                Ok(())
            }
            None => Err(FpgaError::BufferNotFound(id.0)),
        }
    }

    /// Size of a buffer.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::BufferNotFound`] if the handle is stale.
    pub fn len_of(&self, id: BufferId) -> Result<u64, FpgaError> {
        self.allocations
            .get(&id.0)
            .map(|a| a.len)
            .ok_or(FpgaError::BufferNotFound(id.0))
    }

    /// Writes `payload` into the buffer at `offset`. Real data materializes
    /// the buffer; synthetic payloads only validate bounds.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::BufferNotFound`] or [`FpgaError::OutOfBounds`].
    pub fn write(&mut self, id: BufferId, offset: u64, payload: &Payload) -> Result<(), FpgaError> {
        let alloc = self
            .allocations
            .get_mut(&id.0)
            .ok_or(FpgaError::BufferNotFound(id.0))?;
        let len = payload.len();
        check_bounds(id, offset, len, alloc.len)?;
        if let Payload::Data(data) = payload {
            let backing = match &mut alloc.storage {
                Storage::Materialized(v) => v,
                storage @ Storage::Virtual => {
                    *storage = Storage::Materialized(vec![0; alloc.len as usize]);
                    match storage {
                        Storage::Materialized(v) => v,
                        Storage::Virtual => unreachable!("just materialized"),
                    }
                }
            };
            backing[offset as usize..(offset + len) as usize].copy_from_slice(data);
        }
        Ok(())
    }

    /// Reads `len` bytes starting at `offset`. Returns real bytes if the
    /// buffer is materialized, a synthetic placeholder otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::BufferNotFound`] or [`FpgaError::OutOfBounds`].
    pub fn read(&self, id: BufferId, offset: u64, len: u64) -> Result<Payload, FpgaError> {
        let alloc = self
            .allocations
            .get(&id.0)
            .ok_or(FpgaError::BufferNotFound(id.0))?;
        check_bounds(id, offset, len, alloc.len)?;
        Ok(match &alloc.storage {
            Storage::Materialized(v) => {
                Payload::Data(v[offset as usize..(offset + len) as usize].to_vec())
            }
            Storage::Virtual => Payload::Synthetic(len),
        })
    }

    /// Whether a buffer currently holds real bytes.
    pub fn is_materialized(&self, id: BufferId) -> bool {
        matches!(
            self.allocations.get(&id.0).map(|a| &a.storage),
            Some(Storage::Materialized(_))
        )
    }

    /// Mutable access to a materialized buffer's bytes (for kernels). The
    /// buffer is materialized (zero-filled) if it was virtual.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::BufferNotFound`] if the handle is stale.
    pub fn bytes_mut(&mut self, id: BufferId) -> Result<&mut [u8], FpgaError> {
        let alloc = self
            .allocations
            .get_mut(&id.0)
            .ok_or(FpgaError::BufferNotFound(id.0))?;
        if matches!(alloc.storage, Storage::Virtual) {
            alloc.storage = Storage::Materialized(vec![0; alloc.len as usize]);
        }
        match &mut alloc.storage {
            Storage::Materialized(v) => Ok(v.as_mut_slice()),
            Storage::Virtual => unreachable!("materialized above"),
        }
    }

    /// Immutable access to a buffer's bytes, or `None` while it is virtual.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::BufferNotFound`] if the handle is stale.
    pub fn bytes(&self, id: BufferId) -> Result<Option<&[u8]>, FpgaError> {
        let alloc = self
            .allocations
            .get(&id.0)
            .ok_or(FpgaError::BufferNotFound(id.0))?;
        Ok(match &alloc.storage {
            Storage::Materialized(v) => Some(v.as_slice()),
            Storage::Virtual => None,
        })
    }

    /// Copies `len` bytes between two device buffers (DDR-to-DDR). When
    /// the source is virtual the destination region is left as-is for
    /// materialized buffers (timing-only copy).
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::BufferNotFound`] or [`FpgaError::OutOfBounds`].
    pub fn copy(
        &mut self,
        src: BufferId,
        dst: BufferId,
        src_offset: u64,
        dst_offset: u64,
        len: u64,
    ) -> Result<(), FpgaError> {
        let payload = self.read(src, src_offset, len)?;
        // Validate destination bounds even for synthetic payloads.
        let dst_len = self.len_of(dst)?;
        check_bounds(dst, dst_offset, len, dst_len)?;
        if let Payload::Data(_) = &payload {
            self.write(dst, dst_offset, &payload)?;
        }
        Ok(())
    }

    /// Drops every allocation (a board reconfiguration wipes DDR content).
    pub fn clear(&mut self) {
        self.allocations.clear();
        self.used = 0;
    }
}

fn check_bounds(id: BufferId, offset: u64, len: u64, size: u64) -> Result<(), FpgaError> {
    if offset.checked_add(len).is_none_or(|end| end > size) {
        return Err(FpgaError::OutOfBounds {
            buffer: id.0,
            offset,
            len,
            size,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_write_read_round_trip() {
        let mut mem = DeviceMemory::new(1 << 20);
        let buf = mem.alloc(16).expect("alloc");
        mem.write(buf, 4, &Payload::Data(vec![1, 2, 3]))
            .expect("write");
        let got = mem.read(buf, 4, 3).expect("read");
        assert_eq!(got, Payload::Data(vec![1, 2, 3]));
    }

    #[test]
    fn virtual_buffers_stay_virtual_under_synthetic_io() {
        let mut mem = DeviceMemory::new(1 << 30);
        let buf = mem.alloc(1 << 20).expect("alloc");
        mem.write(buf, 0, &Payload::Synthetic(1 << 20))
            .expect("write");
        assert!(!mem.is_materialized(buf));
        let got = mem.read(buf, 0, 128).expect("read");
        assert_eq!(got, Payload::Synthetic(128));
    }

    #[test]
    fn materialization_zero_fills() {
        let mut mem = DeviceMemory::new(64);
        let buf = mem.alloc(8).expect("alloc");
        mem.write(buf, 6, &Payload::Data(vec![9, 9]))
            .expect("write");
        assert_eq!(
            mem.read(buf, 0, 8).expect("read"),
            Payload::Data(vec![0, 0, 0, 0, 0, 0, 9, 9])
        );
    }

    #[test]
    fn out_of_memory_is_reported() {
        let mut mem = DeviceMemory::new(10);
        assert!(mem.alloc(8).is_ok());
        let err = mem.alloc(8).expect_err("should be OOM");
        assert_eq!(
            err,
            FpgaError::OutOfMemory {
                requested: 8,
                available: 2
            }
        );
    }

    #[test]
    fn free_releases_space() {
        let mut mem = DeviceMemory::new(10);
        let buf = mem.alloc(8).expect("alloc");
        mem.free(buf).expect("free");
        assert_eq!(mem.available(), 10);
        assert_eq!(mem.free(buf), Err(FpgaError::BufferNotFound(buf.0)));
    }

    #[test]
    fn bounds_are_enforced() {
        let mut mem = DeviceMemory::new(100);
        let buf = mem.alloc(10).expect("alloc");
        assert!(matches!(
            mem.write(buf, 8, &Payload::Data(vec![0; 4])),
            Err(FpgaError::OutOfBounds { .. })
        ));
        assert!(matches!(
            mem.read(buf, 0, 11),
            Err(FpgaError::OutOfBounds { .. })
        ));
        // Offset overflow must not wrap.
        assert!(matches!(
            mem.read(buf, u64::MAX, 2),
            Err(FpgaError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn clear_wipes_everything() {
        let mut mem = DeviceMemory::new(100);
        let buf = mem.alloc(10).expect("alloc");
        mem.clear();
        assert_eq!(mem.used(), 0);
        assert_eq!(mem.len_of(buf), Err(FpgaError::BufferNotFound(buf.0)));
    }
}
