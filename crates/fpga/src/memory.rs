//! The board's on-card DDR memory.
//!
//! Buffers can be *materialized* (backed by real bytes so kernels execute
//! functionally) or *virtual* (size-only, used when only timing matters —
//! e.g. the 2 GB transfers of Fig. 4(a), which would be wasteful to
//! allocate for every sweep point). A virtual buffer is materialized lazily
//! the first time real data is written into it.
//!
//! Payload bytes are refcounted ([`bytes::Bytes`]): a whole-buffer write
//! *adopts* the caller's buffer and a read hands back a zero-copy view.
//! The single place real bytes are still copied is [`DeviceMemory::bytes_mut`]
//! — the copy-on-write a kernel pays when it mutates a bank whose bytes
//! are still shared with a client or an earlier read snapshot.

use std::collections::HashMap;

use bytes::Bytes;

use crate::error::FpgaError;

/// Handle to a device buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BufferId(pub u64);

impl std::fmt::Display for BufferId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "buf#{}", self.0)
    }
}

/// Payload of a transfer: real bytes or a size-only placeholder.
///
/// Real data is a refcounted [`Bytes`] buffer, so cloning a payload — or
/// handing it down the datapath — never copies the bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// Real data; kernels operating on it run functionally.
    Data(Bytes),
    /// Size-only placeholder; the transfer is timed but carries no bytes.
    Synthetic(u64),
}

impl Payload {
    /// Number of bytes this payload represents.
    pub fn len(&self) -> u64 {
        match self {
            Payload::Data(d) => d.len() as u64,
            Payload::Synthetic(n) => *n,
        }
    }

    /// Whether the payload represents zero bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrows the real bytes, if any.
    pub fn as_data(&self) -> Option<&[u8]> {
        match self {
            Payload::Data(d) => Some(d.as_ref()),
            Payload::Synthetic(_) => None,
        }
    }

    /// Converts real bytes into an owned `Vec<u8>` (recovered in place
    /// when unique, otherwise copied and reported to copy accounting);
    /// `None` for synthetic payloads.
    pub fn into_vec(self) -> Option<Vec<u8>> {
        match self {
            Payload::Data(d) => Some(match d.try_into_unique_vec() {
                Ok(v) => v,
                Err(shared) => {
                    bf_metrics::record_memcpy(shared.len() as u64);
                    // bf-lint: allow(payload_copy): other refs hold the
                    // buffer — copying out is the only way, and counted.
                    shared.to_vec()
                }
            }),
            Payload::Synthetic(_) => None,
        }
    }
}

impl From<Vec<u8>> for Payload {
    /// Adopts the vector without copying.
    fn from(d: Vec<u8>) -> Self {
        Payload::Data(Bytes::from(d))
    }
}

impl From<Bytes> for Payload {
    fn from(d: Bytes) -> Self {
        Payload::Data(d)
    }
}

impl From<&[u8]> for Payload {
    /// Copies the borrowed slice (reported to copy accounting).
    fn from(d: &[u8]) -> Self {
        bf_metrics::record_memcpy(d.len() as u64);
        Payload::Data(Bytes::from(d))
    }
}

#[derive(Debug)]
enum Storage {
    /// Size-only: no bytes exist.
    Virtual,
    /// Bytes possibly shared with clients or read snapshots; a mutating
    /// access must copy-on-write into [`Storage::Unique`] first.
    Shared(Bytes),
    /// Bytes owned exclusively by this bank; kernels mutate in place.
    Unique(Vec<u8>),
}

#[derive(Debug)]
struct Allocation {
    len: u64,
    storage: Storage,
}

impl Allocation {
    /// Exclusive access to the bank's bytes: zero-fill materializes a
    /// virtual bank; shared bytes are copied-on-write (the refcount is
    /// checked first, so a sole owner recovers its buffer for free).
    fn backing_mut(&mut self) -> &mut [u8] {
        match &mut self.storage {
            Storage::Unique(_) => {}
            Storage::Virtual => {
                self.storage = Storage::Unique(vec![0; self.len as usize]);
            }
            Storage::Shared(b) => {
                let owned = match std::mem::take(b).try_into_unique_vec() {
                    Ok(v) => v,
                    Err(shared) => {
                        bf_metrics::record_memcpy(shared.len() as u64);
                        // bf-lint: allow(payload_copy): copy-on-write — a
                        // kernel is about to mutate a still-shared buffer.
                        shared.to_vec()
                    }
                };
                self.storage = Storage::Unique(owned);
            }
        }
        match &mut self.storage {
            Storage::Unique(v) => v.as_mut_slice(),
            Storage::Virtual | Storage::Shared(_) => unreachable!("made unique above"),
        }
    }
}

/// The DDR memory banks of one board.
#[derive(Debug)]
pub struct DeviceMemory {
    capacity: u64,
    used: u64,
    next_id: u64,
    allocations: HashMap<u64, Allocation>,
}

impl DeviceMemory {
    /// Creates a memory pool of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        DeviceMemory {
            capacity,
            used: 0,
            next_id: 1,
            allocations: HashMap::new(),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes still available.
    pub fn available(&self) -> u64 {
        self.capacity - self.used
    }

    /// Allocates a buffer of `len` bytes (virtual until data is written).
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::OutOfMemory`] when `len` exceeds the free space.
    pub fn alloc(&mut self, len: u64) -> Result<BufferId, FpgaError> {
        if len > self.available() {
            return Err(FpgaError::OutOfMemory {
                requested: len,
                available: self.available(),
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.used += len;
        self.allocations.insert(
            id,
            Allocation {
                len,
                storage: Storage::Virtual,
            },
        );
        Ok(BufferId(id))
    }

    /// Frees a buffer.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::BufferNotFound`] if the handle is stale.
    pub fn free(&mut self, id: BufferId) -> Result<(), FpgaError> {
        match self.allocations.remove(&id.0) {
            Some(alloc) => {
                self.used -= alloc.len;
                Ok(())
            }
            None => Err(FpgaError::BufferNotFound(id.0)),
        }
    }

    /// Size of a buffer.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::BufferNotFound`] if the handle is stale.
    pub fn len_of(&self, id: BufferId) -> Result<u64, FpgaError> {
        self.allocations
            .get(&id.0)
            .map(|a| a.len)
            .ok_or(FpgaError::BufferNotFound(id.0))
    }

    /// Writes `payload` into the buffer at `offset`. Real data materializes
    /// the buffer; synthetic payloads only validate bounds.
    ///
    /// A whole-buffer write (offset 0, payload length equal to the
    /// allocation) *adopts* the payload's refcounted bytes without
    /// copying; partial writes copy-on-write into the bank (reported to
    /// [`bf_metrics::record_memcpy`]).
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::BufferNotFound`] or [`FpgaError::OutOfBounds`].
    pub fn write(&mut self, id: BufferId, offset: u64, payload: &Payload) -> Result<(), FpgaError> {
        let alloc = self
            .allocations
            .get_mut(&id.0)
            .ok_or(FpgaError::BufferNotFound(id.0))?;
        let len = payload.len();
        check_bounds(id, offset, len, alloc.len)?;
        if let Payload::Data(data) = payload {
            if offset == 0 && len == alloc.len {
                // Whole-buffer write: adopt the refcounted bytes.
                alloc.storage = Storage::Shared(data.share());
                return Ok(());
            }
            let backing = alloc.backing_mut();
            bf_metrics::record_memcpy(len);
            // bf-taint: sanitized(check_bounds above proves offset + len fits inside alloc.len)
            backing[offset as usize..(offset + len) as usize].copy_from_slice(data.as_ref());
        }
        Ok(())
    }

    /// Reads `len` bytes starting at `offset`. Returns real bytes if the
    /// buffer is materialized, a synthetic placeholder otherwise.
    ///
    /// The returned payload is a zero-copy snapshot of the bank: a
    /// uniquely-owned bank is frozen into shared storage (a move, not a
    /// copy) so later reads alias it too, and a subsequent kernel
    /// mutation copies-on-write instead of corrupting the snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::BufferNotFound`] or [`FpgaError::OutOfBounds`].
    pub fn read(&mut self, id: BufferId, offset: u64, len: u64) -> Result<Payload, FpgaError> {
        let alloc = self
            .allocations
            .get_mut(&id.0)
            .ok_or(FpgaError::BufferNotFound(id.0))?;
        check_bounds(id, offset, len, alloc.len)?;
        if let Storage::Unique(v) = &mut alloc.storage {
            // Freeze-on-read: the Vec moves into a refcounted buffer.
            alloc.storage = Storage::Shared(Bytes::from(std::mem::take(v)));
        }
        Ok(match &alloc.storage {
            Storage::Shared(b) => Payload::Data(b.slice(offset as usize..(offset + len) as usize)),
            Storage::Virtual => Payload::Synthetic(len),
            Storage::Unique(_) => unreachable!("frozen above"),
        })
    }

    /// Whether a buffer currently holds real bytes.
    pub fn is_materialized(&self, id: BufferId) -> bool {
        matches!(
            self.allocations.get(&id.0).map(|a| &a.storage),
            Some(Storage::Shared(_) | Storage::Unique(_))
        )
    }

    /// Mutable access to a materialized buffer's bytes (for kernels). The
    /// buffer is materialized (zero-filled) if it was virtual.
    ///
    /// This is the datapath's one mutation point: bytes still shared with
    /// a client or a read snapshot are copied-on-write here (reported to
    /// [`bf_metrics::record_memcpy`]); a uniquely-owned bank mutates in
    /// place for free.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::BufferNotFound`] if the handle is stale.
    pub fn bytes_mut(&mut self, id: BufferId) -> Result<&mut [u8], FpgaError> {
        let alloc = self
            .allocations
            .get_mut(&id.0)
            .ok_or(FpgaError::BufferNotFound(id.0))?;
        Ok(alloc.backing_mut())
    }

    /// Immutable access to a buffer's bytes, or `None` while it is virtual.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::BufferNotFound`] if the handle is stale.
    pub fn bytes(&self, id: BufferId) -> Result<Option<&[u8]>, FpgaError> {
        let alloc = self
            .allocations
            .get(&id.0)
            .ok_or(FpgaError::BufferNotFound(id.0))?;
        Ok(match &alloc.storage {
            Storage::Shared(b) => Some(b.as_ref()),
            Storage::Unique(v) => Some(v.as_slice()),
            Storage::Virtual => None,
        })
    }

    /// Copies `len` bytes between two device buffers (DDR-to-DDR). When
    /// the source is virtual the destination region is left as-is for
    /// materialized buffers (timing-only copy).
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::BufferNotFound`] or [`FpgaError::OutOfBounds`].
    pub fn copy(
        &mut self,
        src: BufferId,
        dst: BufferId,
        src_offset: u64,
        dst_offset: u64,
        len: u64,
    ) -> Result<(), FpgaError> {
        let payload = self.read(src, src_offset, len)?;
        // Validate destination bounds even for synthetic payloads.
        let dst_len = self.len_of(dst)?;
        check_bounds(dst, dst_offset, len, dst_len)?;
        if let Payload::Data(_) = &payload {
            self.write(dst, dst_offset, &payload)?;
        }
        Ok(())
    }

    /// Drops every allocation (a board reconfiguration wipes DDR content).
    pub fn clear(&mut self) {
        self.allocations.clear();
        self.used = 0;
    }
}

fn check_bounds(id: BufferId, offset: u64, len: u64, size: u64) -> Result<(), FpgaError> {
    if offset.checked_add(len).is_none_or(|end| end > size) {
        return Err(FpgaError::OutOfBounds {
            buffer: id.0,
            offset,
            len,
            size,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_write_read_round_trip() {
        let mut mem = DeviceMemory::new(1 << 20);
        let buf = mem.alloc(16).expect("alloc");
        mem.write(buf, 4, &Payload::Data(vec![1, 2, 3].into()))
            .expect("write");
        let got = mem.read(buf, 4, 3).expect("read");
        assert_eq!(got, Payload::Data(vec![1, 2, 3].into()));
    }

    #[test]
    fn virtual_buffers_stay_virtual_under_synthetic_io() {
        let mut mem = DeviceMemory::new(1 << 30);
        let buf = mem.alloc(1 << 20).expect("alloc");
        mem.write(buf, 0, &Payload::Synthetic(1 << 20))
            .expect("write");
        assert!(!mem.is_materialized(buf));
        let got = mem.read(buf, 0, 128).expect("read");
        assert_eq!(got, Payload::Synthetic(128));
    }

    #[test]
    fn materialization_zero_fills() {
        let mut mem = DeviceMemory::new(64);
        let buf = mem.alloc(8).expect("alloc");
        mem.write(buf, 6, &Payload::Data(vec![9, 9].into()))
            .expect("write");
        assert_eq!(
            mem.read(buf, 0, 8).expect("read"),
            Payload::Data(vec![0, 0, 0, 0, 0, 0, 9, 9].into())
        );
    }

    #[test]
    fn out_of_memory_is_reported() {
        let mut mem = DeviceMemory::new(10);
        assert!(mem.alloc(8).is_ok());
        let err = mem.alloc(8).expect_err("should be OOM");
        assert_eq!(
            err,
            FpgaError::OutOfMemory {
                requested: 8,
                available: 2
            }
        );
    }

    #[test]
    fn free_releases_space() {
        let mut mem = DeviceMemory::new(10);
        let buf = mem.alloc(8).expect("alloc");
        mem.free(buf).expect("free");
        assert_eq!(mem.available(), 10);
        assert_eq!(mem.free(buf), Err(FpgaError::BufferNotFound(buf.0)));
    }

    #[test]
    fn bounds_are_enforced() {
        let mut mem = DeviceMemory::new(100);
        let buf = mem.alloc(10).expect("alloc");
        assert!(matches!(
            mem.write(buf, 8, &Payload::Data(vec![0; 4].into())),
            Err(FpgaError::OutOfBounds { .. })
        ));
        assert!(matches!(
            mem.read(buf, 0, 11),
            Err(FpgaError::OutOfBounds { .. })
        ));
        // Offset overflow must not wrap.
        assert!(matches!(
            mem.read(buf, u64::MAX, 2),
            Err(FpgaError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn clear_wipes_everything() {
        let mut mem = DeviceMemory::new(100);
        let buf = mem.alloc(10).expect("alloc");
        mem.clear();
        assert_eq!(mem.used(), 0);
        assert_eq!(mem.len_of(buf), Err(FpgaError::BufferNotFound(buf.0)));
    }

    /// Aliasing safety: adopting a client's buffer and handing out read
    /// snapshots never lets a later in-place mutation bleed through —
    /// copy-on-write isolates exactly the post-mutation view.
    #[test]
    fn mutation_after_adopt_does_not_corrupt_aliases() {
        let mut mem = DeviceMemory::new(1 << 10);
        let buf = mem.alloc(4).expect("alloc");
        // The "client" keeps its own reference to the adopted bytes.
        let client: Bytes = Bytes::from(vec![1u8, 2, 3, 4]);
        mem.write(buf, 0, &Payload::Data(client.share()))
            .expect("adopt");
        let r1 = mem.read(buf, 0, 4).expect("read before mutation");
        // A kernel mutates the buffer in place → CoW breaks the aliases.
        mem.bytes_mut(buf).expect("cow")[0] = 99;
        let r2 = mem.read(buf, 0, 4).expect("read after mutation");
        assert_eq!(client, [1, 2, 3, 4], "client buffer untouched");
        assert_eq!(r1, Payload::Data(vec![1, 2, 3, 4].into()), "old snapshot");
        assert_eq!(r2, Payload::Data(vec![99, 2, 3, 4].into()), "new snapshot");
    }

    /// The mirror direction: a client mutating (dropping + rebuilding) its
    /// copy after enqueue cannot change what the device adopted, and read
    /// snapshots stay stable across overwrites of the same buffer.
    #[test]
    fn snapshots_survive_subsequent_whole_buffer_writes() {
        let mut mem = DeviceMemory::new(1 << 10);
        let buf = mem.alloc(3).expect("alloc");
        mem.write(buf, 0, &Payload::Data(vec![7, 8, 9].into()))
            .expect("write 1");
        let snap = mem.read(buf, 0, 3).expect("snapshot");
        mem.write(buf, 0, &Payload::Data(vec![0, 0, 0].into()))
            .expect("write 2");
        assert_eq!(snap, Payload::Data(vec![7, 8, 9].into()));
        assert_eq!(
            mem.read(buf, 0, 3).expect("read"),
            Payload::Data(vec![0, 0, 0].into())
        );
    }
}
