#![forbid(unsafe_code)]

//! # bf-fpga — a functional + timing model of a PCIe-attached FPGA board
//!
//! The paper evaluates BlastFunction on Terasic DE5a-Net boards (Intel
//! Arria 10 GX). No such hardware is available to this reproduction, so
//! this crate provides the substitute: a [`Board`] that
//!
//! * executes operations **serially** (one accelerator, one timeline),
//!   charging PCIe transfer time for DMAs and each kernel's calibrated
//!   [`KernelBehavior`] duration for launches;
//! * executes kernels **functionally** (real Sobel/GEMM/CNN math on real
//!   bytes) whenever data is present, so end-to-end results can be checked
//!   against host references;
//! * degrades to **timing-only** execution on size-only ([`Payload::Synthetic`])
//!   buffers, which keeps multi-gigabyte sweeps and discrete-event
//!   simulations cheap;
//! * attributes every busy interval to the issuing tenant, feeding the
//!   FPGA *time utilization* metric the Accelerators Registry allocates by.
//!
//! ```
//! use std::sync::Arc;
//! use bf_fpga::{Board, BoardSpec, FnKernel, Bitstream, KernelDescriptor,
//!               KernelInvocation, Payload};
//! use bf_model::{PcieGeneration, PcieLink, VirtualDuration, VirtualTime};
//!
//! # fn main() -> Result<(), bf_fpga::FpgaError> {
//! let mut board = Board::new(BoardSpec::de5a_net(), PcieLink::new(PcieGeneration::Gen3, 8));
//! let noop = FnKernel::new(
//!     |_inv: &KernelInvocation| VirtualDuration::from_micros(5),
//!     |_inv, _mem| Ok(()),
//! );
//! let bs = Arc::new(Bitstream::new("img", vec![KernelDescriptor::new("k", Arc::new(noop))]));
//! board.program(bs, VirtualTime::ZERO, "registry");
//! let buf = board.alloc_buffer(1024)?;
//! let now = board.available_at();
//! board.write_buffer(buf, 0, &Payload::Data(vec![7; 1024].into()), now, "tenant")?;
//! # Ok(())
//! # }
//! ```

mod bitstream;
mod board;
mod error;
mod memory;

/// The bf-sync facade (re-exported from `bf-race`): any synchronization
/// added to this crate goes through it so board state can run under the
/// deterministic model scheduler (`bf-race --features model`).
pub use bf_race::sync;

pub use bitstream::{
    Bitstream, FnKernel, KernelArg, KernelBehavior, KernelDescriptor, KernelInvocation,
    MAX_KERNEL_ARGS,
};
pub use board::{Board, BoardSpec, OpTiming};
pub use error::FpgaError;
pub use memory::{BufferId, DeviceMemory, Payload};

#[cfg(test)]
mod proptests {
    use bf_model::{PcieGeneration, PcieLink, VirtualTime};
    use proptest::prelude::*;

    use super::*;

    fn arb_ops() -> impl Strategy<Value = Vec<(u8, u64)>> {
        proptest::collection::vec((0u8..3, 1u64..4096), 1..40)
    }

    proptest! {
        /// However operations are interleaved, the board's busy intervals
        /// never overlap and `available_at` equals the last interval's end.
        #[test]
        fn board_timeline_is_consistent(ops in arb_ops()) {
            let mut board = Board::new(
                BoardSpec::de5a_net(),
                PcieLink::new(PcieGeneration::Gen3, 8),
            );
            let buf = board.alloc_buffer(1 << 20).expect("alloc");
            let mut last_end = VirtualTime::ZERO;
            for (kind, len) in ops {
                // Issue at a time strictly before the board frees up to force queueing.
                let issue = VirtualTime::ZERO;
                let timing = match kind {
                    0 => board
                        .write_buffer(buf, 0, &Payload::Synthetic(len), issue, "f")
                        .expect("write"),
                    1 => board.read_buffer(buf, 0, len.min(1 << 20), issue, "f").expect("read").0,
                    _ => board
                        .write_buffer(buf, 0, &Payload::Synthetic(len / 2), issue, "g")
                        .expect("write"),
                };
                prop_assert!(timing.started_at >= last_end);
                prop_assert!(timing.ended_at >= timing.started_at);
                last_end = timing.ended_at;
            }
            prop_assert_eq!(board.available_at(), last_end);
        }

        /// Memory accounting: allocations and frees always balance.
        #[test]
        fn memory_accounting_balances(sizes in proptest::collection::vec(1u64..1 << 16, 1..50)) {
            let mut mem = DeviceMemory::new(1 << 30);
            let mut handles = Vec::new();
            let mut expected = 0u64;
            for s in &sizes {
                handles.push(mem.alloc(*s).expect("alloc"));
                expected += s;
            }
            prop_assert_eq!(mem.used(), expected);
            for (h, s) in handles.into_iter().zip(&sizes) {
                mem.free(h).expect("free");
                expected -= s;
                prop_assert_eq!(mem.used(), expected);
            }
        }

        /// Reads return exactly what writes stored, at any offset.
        #[test]
        fn write_read_round_trip(
            size in 1u64..4096,
            data in proptest::collection::vec(any::<u8>(), 1..256),
        ) {
            prop_assume!(data.len() as u64 <= size);
            let mut mem = DeviceMemory::new(1 << 20);
            let buf = mem.alloc(size).expect("alloc");
            let offset = size - data.len() as u64;
            mem.write(buf, offset, &Payload::Data(data.clone().into())).expect("write");
            let got = mem.read(buf, offset, data.len() as u64).expect("read");
            prop_assert_eq!(got, Payload::Data(data.into()));
        }
    }
}
