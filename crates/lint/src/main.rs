//! The `bf-lint` binary: scans the workspace and reports conformance
//! violations.
//!
//! ```text
//! cargo run -p bf-lint                      # human-readable diagnostics
//! cargo run -p bf-lint -- --json            # machine-readable report
//! cargo run -p bf-lint -- --root /path/to/workspace
//! cargo run -p bf-lint -- --explain hot_blocking
//! cargo run -p bf-lint -- --baseline lint-baseline.json
//! cargo run -p bf-lint -- --write-baseline  # refresh accepted findings
//! cargo run -p bf-lint -- --write-wire-schema  # snapshot wire enum tags
//! ```
//!
//! Rule families: per-file rules (`panic`, `std_sync`, …), the bf-flow
//! reachability passes (`hot_blocking`, `hot_alloc`, `hot_panic`,
//! `error_drop`), the bf-taint trust-boundary dataflow passes
//! (`taint_alloc`, `taint_index`, `taint_loop`, `taint_auth`), and the
//! `wire_schema` drift gate. `--explain <rule>` documents each.
//!
//! When `<root>/lint-baseline.json` exists it is applied automatically:
//! findings listed there are suppressed (reported as `suppressed` in the
//! JSON summary), stale entries that no longer fire are warned about, and
//! only **new** findings fail the run.
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline = false;
    let mut write_wire_schema = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => {
                    eprintln!("bf-lint: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match args.next() {
                Some(path) => baseline_path = Some(PathBuf::from(path)),
                None => {
                    eprintln!("bf-lint: --baseline requires a path");
                    return ExitCode::from(2);
                }
            },
            "--write-baseline" => write_baseline = true,
            "--write-wire-schema" => write_wire_schema = true,
            "--explain" => {
                return match args.next() {
                    Some(rule) => match bf_lint::explain::explain(&rule) {
                        Some(text) => {
                            println!("{rule}\n{}\n\n{text}", "-".repeat(rule.len()));
                            ExitCode::SUCCESS
                        }
                        None => {
                            eprintln!(
                                "bf-lint: unknown rule {rule:?}; known rules: {}",
                                bf_lint::explain::rules().join(", ")
                            );
                            ExitCode::from(2)
                        }
                    },
                    None => {
                        eprintln!(
                            "bf-lint: --explain requires a rule name; known rules: {}",
                            bf_lint::explain::rules().join(", ")
                        );
                        ExitCode::from(2)
                    }
                };
            }
            "--help" | "-h" => {
                println!(
                    "usage: bf-lint [--json] [--root <workspace>] [--baseline <file>]\n\
                     \u{20}              [--write-baseline] [--write-wire-schema]\n\
                     \u{20}              [--explain <rule>]\n\
                     \n\
                     passes: per-file rules, lock-graph, bf-flow reachability,\n\
                     bf-taint trust-boundary dataflow (taint_alloc/taint_index/\n\
                     taint_loop/taint_auth), wire-schema drift gate"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("bf-lint: unknown argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("bf-lint: cannot determine working directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match bf_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("bf-lint: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    if write_wire_schema {
        return match bf_lint::write_wire_schema(&root) {
            Ok(n) => {
                println!(
                    "bf-lint: wrote {n} wire enum(s) to {}",
                    root.join("wire-schema.json").display()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("bf-lint: {e}");
                ExitCode::from(2)
            }
        };
    }

    let report = match bf_lint::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bf-lint: {e}");
            return ExitCode::from(2);
        }
    };

    // The default baseline is <root>/lint-baseline.json when present;
    // --baseline overrides, --write-baseline refreshes it.
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint-baseline.json"));
    if write_baseline {
        let text = bf_lint::baseline::render(&report.diagnostics);
        if let Err(e) = std::fs::write(&baseline_path, text) {
            eprintln!("bf-lint: write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "bf-lint: wrote {} accepted finding(s) to {}",
            report.diagnostics.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }
    let keys = match bf_lint::baseline::load(&baseline_path) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("bf-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let gated = bf_lint::baseline::gate(&report.diagnostics, &keys);

    let mut out = String::new();
    use std::fmt::Write as _;
    if json {
        let value = report.to_json_gated(&gated);
        match serde_json::to_string_pretty(&value) {
            Ok(text) => {
                out.push_str(&text);
                out.push('\n');
            }
            Err(e) => {
                eprintln!("bf-lint: cannot render JSON report: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        for diag in &gated.new {
            let _ = writeln!(out, "{diag}");
        }
        for key in &gated.stale {
            let _ = writeln!(
                out,
                "bf-lint: warning: stale baseline entry no longer fires: {key}"
            );
        }
        let _ = writeln!(
            out,
            "bf-lint: {} file(s) scanned in {:.1} ms, {} new violation(s), \
             {} suppressed by baseline, {} stale baseline entr(ies)",
            report.files_scanned,
            report.wall_ms,
            gated.new.len(),
            gated.suppressed,
            gated.stale.len()
        );
    }
    // A closed pipe (`bf-lint | head`) must not turn into a panic; the
    // exit code still carries the verdict.
    use std::io::Write as _;
    let _ = std::io::stdout().write_all(out.as_bytes());
    if gated.new.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
