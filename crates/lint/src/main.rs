//! The `bf-lint` binary: scans the workspace and reports conformance
//! violations.
//!
//! ```text
//! cargo run -p bf-lint            # human-readable diagnostics
//! cargo run -p bf-lint -- --json  # machine-readable report
//! cargo run -p bf-lint -- --root /path/to/workspace
//! ```
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => {
                    eprintln!("bf-lint: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: bf-lint [--json] [--root <workspace>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("bf-lint: unknown argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("bf-lint: cannot determine working directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match bf_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("bf-lint: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match bf_lint::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bf-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let mut out = String::new();
    if json {
        match serde_json::to_string_pretty(&report.to_json()) {
            Ok(text) => {
                out.push_str(&text);
                out.push('\n');
            }
            Err(e) => {
                eprintln!("bf-lint: cannot render JSON report: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        use std::fmt::Write as _;
        for diag in &report.diagnostics {
            let _ = writeln!(out, "{diag}");
        }
        let _ = writeln!(
            out,
            "bf-lint: {} file(s) scanned, {} violation(s)",
            report.files_scanned,
            report.diagnostics.len()
        );
    }
    // A closed pipe (`bf-lint | head`) must not turn into a panic; the
    // exit code still carries the verdict.
    use std::io::Write as _;
    let _ = std::io::stdout().write_all(out.as_bytes());
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
