//! `bf-lint --explain <rule>`: what each rule means, why it exists, and
//! how to satisfy or justify it.

/// Returns the explanation text for `rule`, if it names a known rule.
pub fn explain(rule: &str) -> Option<&'static str> {
    EXPLANATIONS
        .iter()
        .find(|(name, _)| *name == rule)
        .map(|(_, text)| *text)
}

/// All explainable rule names, in display order.
pub fn rules() -> Vec<&'static str> {
    EXPLANATIONS.iter().map(|(name, _)| *name).collect()
}

const EXPLANATIONS: &[(&str, &str)] = &[
    (
        "panic",
        "No `.unwrap()` / `.expect()` in non-test library code.\n\
         \n\
         The device manager multiplexes many sessions onto shared event\n\
         loops; a panic in one request's handling tears down every tenant\n\
         on the process. Return typed errors and let the session FSM fail\n\
         the one invocation.\n\
         \n\
         Justify a provably-infallible site with\n\
         `// bf-lint: allow(panic): <why the Err/None case is impossible>`.",
    ),
    (
        "std_sync",
        "`parking_lot` locks only — `std::sync::{Mutex, RwLock}` are banned.\n\
         \n\
         std locks poison on panic, turning one failure into a cascade of\n\
         `PoisonError`s; parking_lot locks are smaller, fairer under the\n\
         poller's contention pattern, and poison-free.",
    ),
    (
        "wall_clock",
        "`Instant::now()` / `SystemTime::now()` only inside the clock module.\n\
         \n\
         The simulation and the model checker replace time with a virtual\n\
         clock; a stray wall-clock read desynchronizes replayed schedules\n\
         and makes figures non-reproducible. Route all time through\n\
         `bf_model::clock`.",
    ),
    (
        "lock_order",
        "Within one function, locks must be acquired in declared-hierarchy\n\
         order (see `bf_devmgr::lock_order::HIERARCHY`). Out-of-order\n\
         acquisition is how the poller/devmgr deadlocks of ISSUE 4 were\n\
         born. The runtime tracker enforces the same table in debug builds.",
    ),
    (
        "lock_graph",
        "Whole-program lock discipline: every `Mutex`/`RwLock` field must\n\
         carry a rank from the hierarchy, the static acquisition graph must\n\
         be acyclic, and every hierarchy entry must correspond to a real\n\
         lock (no dead ranks).",
    ),
    (
        "raw_sync",
        "Instrumented crates must use the `bf_race::sync` facade rather than\n\
         raw `parking_lot` / `std::sync::atomic` / `crossbeam` primitives,\n\
         so the deterministic model checker can interpose on every\n\
         synchronization action.",
    ),
    (
        "wildcard_match",
        "`match`es over protocol status enums must not use `_` arms. A new\n\
         enum variant must be a compile error at every consumer, not a\n\
         silently-absorbed default — that is how protocol drift between the\n\
         gateway and the device manager stays visible.",
    ),
    (
        "unbounded_channel",
        "No `unbounded()` queues in library code. Every queue on the\n\
         invocation path has a declared depth and a backpressure story\n\
         (ISSUE 5's admission control depends on it); an unbounded channel\n\
         is a hidden infinite buffer that converts overload into OOM.",
    ),
    (
        "payload_copy",
        "Datapath modules must not copy payload bytes (`to_vec`, `clone` of\n\
         payload-typed values). The zero-copy path (ISSUE 3) carries\n\
         refcounted `Bytes` end-to-end; justified copies must be counted\n\
         via the copy-accounting API and annotated\n\
         `// bf-lint: allow(payload_copy): <why>`.",
    ),
    (
        "directive",
        "Allow-directives must themselves be well-formed: a justification\n\
         after the colon, a rule name the engine knows, and (for bf-flow\n\
         entries) a class from the declared entry-class table. Reported at\n\
         the directive's own file:line.",
    ),
    (
        "hot_blocking",
        "[bf-flow] Nothing blocking may be reachable from a hot-path entry:\n\
         no condvar wait, no blocking `recv`, no `sleep`, no file/net\n\
         syscalls, and no lock ranked *outside* the entry class's floor\n\
         (e.g. the poller may take `frames` and inner locks, never\n\
         `registry`). Findings carry a call-chain witness: entry → … →\n\
         offending call, file:line per hop.\n\
         \n\
         Designed park points (the poller's notify hub) are justified with\n\
         `// bf-flow: allow(hot_blocking): <why this wait is the design>`.",
    ),
    (
        "hot_alloc",
        "[bf-flow] No unbounded container growth (`push`, `insert`,\n\
         `extend`, `to_vec`, `resize`, …) reachable from a hot-path entry.\n\
         Under 10k-session load an unbounded `Vec` on the event loop is a\n\
         latency spike generator. Pre-size with `with_capacity` (detected\n\
         automatically for same-function locals), enforce an explicit cap,\n\
         or state the bound: `// bf-flow: allow(hot_alloc): bounded by\n\
         max_pending_responses`.",
    ),
    (
        "hot_panic",
        "[bf-flow] No panic reachable from a hot-path entry —\n\
         interprocedurally. Covers `panic!`-family macros, `.unwrap()` /\n\
         `.expect()`, and indexing without `.get(..)`. This supersedes the\n\
         per-file `panic` rule on hot paths: a panic three calls deep still\n\
         takes down the shared event loop. Existing justified\n\
         `bf-lint: allow(panic)` sites remain honored for unwrap/expect;\n\
         indexing invariants are justified with\n\
         `// bf-flow: allow(hot_panic): <the invariant>`.",
    ),
    (
        "error_drop",
        "[bf-flow] Discarding a `Result` whose error type carries\n\
         backpressure or overload information (`TransportError`,\n\
         `GatewayError`, `SubmitError`, `HandlerError`) via `let _ = …` or\n\
         a terminal `.ok()`. Swallowed backpressure is how admission\n\
         control silently stops working. Handle it, propagate it, or\n\
         justify a deliberate coalescing drop with\n\
         `// bf-flow: allow(error_drop): <why dropping is correct>`.",
    ),
    (
        "taint_alloc",
        "[bf-taint] A wire-derived (attacker-controlled) value reaches an\n\
         allocation size: `with_capacity`, `reserve`, `resize`,\n\
         `resize_with`. A declared length of 2^32 must not become a 4 GiB\n\
         allocation before any bound check — that is a one-frame OOM on a\n\
         shared device manager. Sanitize with `.min(CAP)` / `.clamp(..)`\n\
         against a named cap before allocating, or justify with\n\
         `// bf-taint: sanitized(<why the value is already bounded>)`.\n\
         Findings carry a source→sink witness chain.",
    ),
    (
        "taint_index",
        "[bf-taint] A wire-derived value reaches slice/array indexing or\n\
         `split_to`-style buffer math (`split_to`, `split_off`,\n\
         `truncate`, `advance`). Unchecked indexing by an\n\
         attacker-controlled offset is a panic (tears down every tenant on\n\
         the event loop) or a logic corruption. Use `.get(..)`, bound the\n\
         value first, or annotate the guard:\n\
         `// bf-taint: sanitized(guarded by buf.remaining() check above)`.",
    ),
    (
        "taint_loop",
        "[bf-taint] A wire-derived value bounds a loop (`for _ in 0..n`,\n\
         `while i < n`). A client-claimed count drives server-side work\n\
         directly — u32::MAX iterations is a CPU DoS no allocation cap\n\
         catches. Cap the trip count against a server-side constant before\n\
         looping, or justify with `// bf-taint: sanitized(<the bound>)`.",
    ),
    (
        "taint_auth",
        "[bf-taint] A wire-derived identifier flows into a cache-admission\n\
         or digest-authorization decision (`holds`, `note_sent`,\n\
         `device_resident`, cache `get`/`insert`/`invalidate`, …). This is\n\
         the PR-8 bug class: a client-claimed digest used as a cache key\n\
         lets one tenant probe or poison another tenant's entries. Derive\n\
         the identifier server-side (`content_digest` over the actual\n\
         bytes clears taint) or scope the decision per-session and justify:\n\
         `// bf-taint: allow(taint_auth): <why this check is the\n\
         authorization, not a bypass of it>`.",
    ),
    (
        "wire_schema",
        "Wire enum tags are append-only. The decode-surface tag tables\n\
         (`DataRef`, `WireArg`, `Request`, `Response`, `ErrorCode`) are\n\
         snapshotted in `wire-schema.json`; renumbering or reusing a\n\
         released tag, or removing one, fails CI because deployed peers\n\
         still speak the released mapping. Adding a variant is fine —\n\
         regenerate the snapshot in the same PR with\n\
         `bf-lint --write-wire-schema` so the protocol extension is\n\
         explicit in review.",
    ),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_per_file_and_flow_rule_is_explained() {
        for rule in crate::RULES {
            assert!(explain(rule).is_some(), "missing explanation for {rule}");
        }
        for rule in crate::flow::FLOW_RULES {
            assert!(explain(rule).is_some(), "missing explanation for {rule}");
        }
        for rule in crate::taint::TAINT_RULES {
            assert!(explain(rule).is_some(), "missing explanation for {rule}");
        }
        assert!(explain(crate::wire_schema::WIRE_SCHEMA_RULE).is_some());
    }

    #[test]
    fn unknown_rules_return_none() {
        assert!(explain("warp_core").is_none());
    }
}
