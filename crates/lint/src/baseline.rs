//! Baseline gating: pre-existing findings don't block CI, new ones do.
//!
//! `lint-baseline.json` is a checked-in list of accepted finding keys.
//! Keys are line-drift tolerant: bf-flow and bf-taint findings key on
//! `rule|file|qualified_fn|token`, per-file findings on
//! `rule|file|line`, so reformatting elsewhere in a file does not churn
//! the interprocedural entries. [`gate`] splits a report's findings into
//! *new* (fail CI) and reports which baseline entries are *stale*
//! (no longer fire — warn, then refresh with `--write-baseline`).
//!
//! An accepted entry is either a bare key string or an object
//! `{"key": "...", "why": "..."}`; the object form is for findings kept
//! deliberately (a taint flow judged unreachable, for instance) and its
//! `why` justification is mandatory — an empty one fails the load, so
//! nothing is ever baselined silently.

use std::path::Path;

use crate::rules::Diagnostic;

/// Outcome of applying a baseline to a set of diagnostics.
#[derive(Debug)]
pub struct Gated {
    /// Findings not covered by the baseline — these fail CI.
    pub new: Vec<Diagnostic>,
    /// Baseline keys that no longer match any finding — stale, warn only.
    pub stale: Vec<String>,
    /// Number of findings suppressed by the baseline.
    pub suppressed: usize,
}

/// Loads baseline keys from `path`. A missing file is an empty baseline;
/// a malformed one is an error (CI must not silently gate on nothing).
///
/// # Errors
///
/// Returns a description when the file exists but cannot be read or
/// parsed.
pub fn load(path: &Path) -> Result<Vec<String>, String> {
    if !path.is_file() {
        return Ok(Vec::new());
    }
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let value: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("parse {}: {e}", path.display()))?;
    let keys = value
        .get("accepted")
        .and_then(|a| a.as_array())
        .ok_or_else(|| {
            format!(
                "{}: expected an object with an `accepted` string array",
                path.display()
            )
        })?;
    keys.iter()
        .map(|k| match k {
            serde_json::Value::String(s) => Ok(s.clone()),
            serde_json::Value::Object(o) => {
                let key = o.get("key").and_then(|v| v.as_str()).ok_or_else(|| {
                    format!(
                        "{}: justified baseline entry is missing a string `key`",
                        path.display()
                    )
                })?;
                let why = o.get("why").and_then(|v| v.as_str()).unwrap_or("");
                if why.trim().is_empty() {
                    return Err(format!(
                        "{}: baseline entry {key:?} needs a non-empty `why` \
                         justification — findings are never accepted silently",
                        path.display()
                    ));
                }
                Ok(key.to_string())
            }
            other => Err(format!(
                "{}: baseline entry {other:?} must be a key string or a \
                 {{\"key\", \"why\"}} object",
                path.display()
            )),
        })
        .collect()
}

/// Splits `diagnostics` against the accepted `keys`.
pub fn gate(diagnostics: &[Diagnostic], keys: &[String]) -> Gated {
    let mut used = vec![false; keys.len()];
    let mut new = Vec::new();
    let mut suppressed = 0usize;
    for diag in diagnostics {
        let key = diag.baseline_key();
        match keys.iter().position(|k| *k == key) {
            Some(i) => {
                used[i] = true;
                suppressed += 1;
            }
            None => new.push(diag.clone()),
        }
    }
    let stale = keys
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|(k, _)| k.clone())
        .collect();
    Gated {
        new,
        stale,
        suppressed,
    }
}

/// Serializes the accepted-keys document for `--write-baseline`: sorted,
/// deduplicated, with a provenance note.
pub fn render(diagnostics: &[Diagnostic]) -> String {
    let mut keys: Vec<String> = diagnostics.iter().map(Diagnostic::baseline_key).collect();
    keys.sort();
    keys.dedup();
    let doc = serde_json::json!({
        "_comment": "Accepted bf-lint findings. New findings fail CI; refresh with `cargo run -p bf-lint -- --write-baseline` after review.",
        "accepted": keys,
    });
    let mut text = serde_json::to_string_pretty(&doc).unwrap_or_else(|_| "{}".to_string());
    text.push('\n');
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, file: &str, line: usize, key: &str) -> Diagnostic {
        let mut d = Diagnostic::new(rule, file, line, "m".to_string());
        d.key = key.to_string();
        d
    }

    #[test]
    fn gate_splits_new_suppressed_and_stale() {
        let diags = vec![
            diag(
                "hot_alloc",
                "crates/a/src/lib.rs",
                4,
                "hot_alloc|crates/a/src/lib.rs|A::f|.push(",
            ),
            diag(
                "hot_panic",
                "crates/b/src/lib.rs",
                9,
                "hot_panic|crates/b/src/lib.rs|B::g|.unwrap()",
            ),
        ];
        let keys = vec![
            "hot_alloc|crates/a/src/lib.rs|A::f|.push(".to_string(),
            "error_drop|crates/c/src/lib.rs|C::h|let _ =".to_string(),
        ];
        let gated = gate(&diags, &keys);
        assert_eq!(gated.suppressed, 1);
        assert_eq!(gated.new.len(), 1);
        assert_eq!(gated.new[0].rule, "hot_panic");
        assert_eq!(
            gated.stale,
            vec!["error_drop|crates/c/src/lib.rs|C::h|let _ =".to_string()]
        );
    }

    #[test]
    fn per_file_findings_fall_back_to_line_keys() {
        let d = Diagnostic::new("panic", "crates/a/src/lib.rs", 12, "m".to_string());
        assert_eq!(d.baseline_key(), "panic|crates/a/src/lib.rs|12");
        let gated = gate(&[d], &["panic|crates/a/src/lib.rs|12".to_string()]);
        assert_eq!(gated.suppressed, 1);
        assert!(gated.new.is_empty() && gated.stale.is_empty());
    }

    #[test]
    fn missing_baseline_is_empty_not_an_error() {
        let keys = load(Path::new("/nonexistent/lint-baseline.json")).expect("missing is empty");
        assert!(keys.is_empty());
    }

    #[test]
    fn justified_entries_need_a_why() {
        let dir = std::env::temp_dir().join(format!("bf-lint-baseline-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tempdir");
        let path = dir.join("lint-baseline.json");

        std::fs::write(
            &path,
            r#"{"accepted": ["a|f|1", {"key": "taint_index|f|X::y|index:i", "why": "bounded by construction"}]}"#,
        )
        .expect("write");
        let keys = load(&path).expect("both entry forms load");
        assert_eq!(keys, vec!["a|f|1", "taint_index|f|X::y|index:i"]);

        std::fs::write(
            &path,
            r#"{"accepted": [{"key": "taint_index|f|X::y|index:i", "why": "  "}]}"#,
        )
        .expect("write");
        let err = load(&path).expect_err("blank why is rejected");
        assert!(err.contains("non-empty `why`"), "got: {err}");

        std::fs::write(&path, r#"{"accepted": [{"why": "no key"}]}"#).expect("write");
        let err = load(&path).expect_err("missing key is rejected");
        assert!(err.contains("missing a string `key`"), "got: {err}");

        std::fs::write(&path, r#"{"accepted": [42]}"#).expect("write");
        let err = load(&path).expect_err("numbers are rejected");
        assert!(err.contains("must be a key string"), "got: {err}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn render_is_sorted_and_parseable_by_load() {
        let diags = vec![
            diag("b", "f", 1, "b|f|X::y|t"),
            diag("a", "f", 2, "a|f|X::z|t"),
            diag("b", "f", 1, "b|f|X::y|t"),
        ];
        let text = render(&diags);
        let value: serde_json::Value = serde_json::from_str(&text).expect("valid json");
        let accepted: Vec<&str> = value["accepted"]
            .as_array()
            .expect("array")
            .iter()
            .filter_map(|v| v.as_str())
            .collect();
        assert_eq!(
            accepted,
            vec!["a|f|X::z|t", "b|f|X::y|t"],
            "sorted + deduped"
        );
    }
}
