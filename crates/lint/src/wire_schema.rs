//! Wire-schema drift gate: released tag numbers are append-only.
//!
//! The wire enums in `crates/rpc/src/proto.rs` (`DataRef`, `WireArg`,
//! `Request`, `ErrorCode`, `Response`) assign one u8 tag per variant.
//! Those numbers are the protocol: a deployed client and a redeployed
//! manager only interoperate if tag 3 still means `DataRef::Digest` and
//! tag 8 still means `ErrorCode::CacheMiss` (both added additively in
//! PR 8 — the discipline this gate pins).
//!
//! The rule extracts each `impl WireDecode for <Enum>` arm's
//! `<tag> => <Enum>::<Variant>` mapping from the masked source and
//! compares it against the checked-in `wire-schema.json` snapshot:
//!
//! * a tag whose variant *changed* is a renumber/reuse — hard failure;
//! * a snapshot tag that vanished from the code is a removal — failure
//!   (released peers still send it);
//! * a code tag missing from the snapshot is a *new* variant — failure
//!   until the snapshot is regenerated in the same PR with
//!   `bf-lint --write-wire-schema`, which is exactly the reviewable
//!   "I am extending the protocol" artifact.
//!
//! Primitive impls (`bool`, `Option<T>`, varints) carry no
//! `Enum::Variant` arms and are skipped automatically.

use std::collections::BTreeMap;
use std::path::Path;

use crate::rules::{Diagnostic, Unit};

/// Rule name under which drift findings are reported.
pub const WIRE_SCHEMA_RULE: &str = "wire_schema";

/// Files whose `WireDecode` impls define the wire surface.
const WIRE_FILE_PREFIX: &str = "crates/rpc/src/";

/// tag → (variant name, file, 1-based arm line).
pub type EnumTags = BTreeMap<u64, (String, String, usize)>;

/// The checked-in snapshot's shape: enum → tag → released variant name.
pub type Snapshot = BTreeMap<String, BTreeMap<u64, String>>;

/// Extracts every wire enum's tag table from the parsed units.
pub fn extract(units: &[Unit]) -> BTreeMap<String, EnumTags> {
    let mut out: BTreeMap<String, EnumTags> = BTreeMap::new();
    for unit in units {
        let path = &unit.file.path;
        if !path.starts_with(WIRE_FILE_PREFIX) {
            continue;
        }
        let mut depth = 0i64;
        // (enum name, impl's brace depth) while inside a decode impl.
        let mut current: Option<(String, i64)> = None;
        for (idx, line) in unit.file.lines.iter().enumerate() {
            let depth_before = depth;
            depth += line.brace_delta();
            if let Some((_, impl_depth)) = &current {
                if depth_before <= *impl_depth && !line.code.contains("impl WireDecode for ") {
                    current = None;
                }
            }
            if let Some(rest) = line.code.trim_start().strip_prefix("impl WireDecode for ") {
                let name: String = rest
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if name.chars().next().is_some_and(char::is_uppercase) {
                    current = Some((name, depth_before));
                }
                continue;
            }
            let Some((enum_name, _)) = &current else {
                continue;
            };
            let trimmed = line.code.trim_start();
            let digits: String = trimmed.chars().take_while(char::is_ascii_digit).collect();
            if digits.is_empty() {
                continue;
            }
            let after = trimmed[digits.len()..].trim_start();
            let Some(arm) = after.strip_prefix("=>") else {
                continue;
            };
            let marker = format!("{enum_name}::");
            let Some(vpos) = arm.find(&marker) else {
                continue;
            };
            let variant: String = arm[vpos + marker.len()..]
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            let Ok(tag) = digits.parse::<u64>() else {
                continue;
            };
            if !variant.is_empty() {
                out.entry(enum_name.clone())
                    .or_default()
                    .entry(tag)
                    .or_insert((variant, path.clone(), idx + 1));
            }
        }
    }
    out
}

/// Renders the extracted schema as the checked-in snapshot text.
pub fn render(schema: &BTreeMap<String, EnumTags>) -> String {
    let mut enums = serde_json::Map::new();
    for (name, tags) in schema {
        let mut table = serde_json::Map::new();
        for (tag, (variant, _, _)) in tags {
            table.insert(tag.to_string(), serde_json::Value::String(variant.clone()));
        }
        enums.insert(name.clone(), serde_json::Value::Object(table));
    }
    let mut root = serde_json::Map::new();
    root.insert(
        "_comment".to_string(),
        serde_json::Value::String(
            "Released wire tags (append-only). Regenerate with `bf-lint \
             --write-wire-schema` when ADDING a variant; never renumber or \
             reuse a released tag — deployed peers still speak it."
                .to_string(),
        ),
    );
    root.insert("enums".to_string(), serde_json::Value::Object(enums));
    let mut text = serde_json::to_string_pretty(&serde_json::Value::Object(root))
        .unwrap_or_else(|_| "{}".to_string());
    text.push('\n');
    text
}

/// Loads the snapshot: enum → tag → variant. Missing file → `None`.
///
/// # Errors
///
/// Returns a description when the file exists but cannot be parsed.
pub fn load(path: &Path) -> Result<Option<Snapshot>, String> {
    if !path.is_file() {
        return Ok(None);
    }
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let value: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("parse {}: {e}", path.display()))?;
    let enums = value
        .get("enums")
        .and_then(|e| e.as_object())
        .ok_or_else(|| format!("{}: expected an object with `enums`", path.display()))?;
    let mut out = BTreeMap::new();
    for (name, table) in enums {
        let table = table
            .as_object()
            .ok_or_else(|| format!("{}: `enums.{name}` is not an object", path.display()))?;
        let mut tags = BTreeMap::new();
        for (tag, variant) in table {
            let tag: u64 = tag
                .parse()
                .map_err(|e| format!("{}: bad tag {tag:?} in {name}: {e}", path.display()))?;
            let variant = variant
                .as_str()
                .ok_or_else(|| format!("{}: non-string variant in {name}", path.display()))?;
            tags.insert(tag, variant.to_string());
        }
        out.insert(name.clone(), tags);
    }
    Ok(Some(out))
}

/// Compares the extracted schema against the snapshot, appending one
/// diagnostic per drift. Keys are `wire_schema|file|Enum|tag`, so they
/// survive line drift (and could be baselined — though drift should be
/// fixed or regenerated, never accepted).
pub fn diff(current: &BTreeMap<String, EnumTags>, snapshot: &Snapshot, out: &mut Vec<Diagnostic>) {
    let mut push = |file: &str, line: usize, enum_name: &str, tag: u64, message: String| {
        let mut diag = Diagnostic::new(WIRE_SCHEMA_RULE, file, line, message);
        diag.key = format!("{WIRE_SCHEMA_RULE}|{file}|{enum_name}|{tag}");
        out.push(diag);
    };
    for (enum_name, tags) in current {
        let snap = snapshot.get(enum_name);
        for (tag, (variant, file, line)) in tags {
            match snap.and_then(|s| s.get(tag)) {
                Some(released) if released != variant => push(
                    file,
                    *line,
                    enum_name,
                    *tag,
                    format!(
                        "wire tag {tag} of `{enum_name}` renumbered/reused: released \
                         peers decode it as `{released}`, this tree says `{variant}` \
                         — wire tags are append-only; restore the released mapping \
                         and give the new variant a fresh tag"
                    ),
                ),
                Some(_) => {}
                None => push(
                    file,
                    *line,
                    enum_name,
                    *tag,
                    format!(
                        "new wire tag {tag} (`{enum_name}::{variant}`) is not in \
                         wire-schema.json: regenerate the snapshot in this PR with \
                         `bf-lint --write-wire-schema` so the protocol extension \
                         is reviewed"
                    ),
                ),
            }
        }
    }
    for (enum_name, snap_tags) in snapshot {
        let cur = current.get(enum_name);
        // Anchor removals at the enum's first surviving arm (or file head).
        let (anchor_file, anchor_line) = cur
            .and_then(|t| t.values().next())
            .map(|(_, f, l)| (f.clone(), *l))
            .unwrap_or_else(|| ("crates/rpc/src/proto.rs".to_string(), 1));
        for (tag, variant) in snap_tags {
            let present = cur.is_some_and(|t| t.contains_key(tag));
            if !present {
                push(
                    &anchor_file,
                    anchor_line,
                    enum_name,
                    *tag,
                    format!(
                        "released wire tag {tag} (`{enum_name}::{variant}`) vanished \
                         from the decode surface: deployed peers still send it — \
                         tags may be deprecated but never removed"
                    ),
                );
            }
        }
    }
}

/// Runs the drift gate: extract, load the snapshot at `path`, diff.
/// A missing snapshot fails with a regenerate hint; an unparseable one
/// fails too (CI must not silently gate on nothing).
pub fn check(units: &[Unit], path: &Path, out: &mut Vec<Diagnostic>) {
    let current = extract(units);
    if current.is_empty() {
        return; // no wire surface in this scan (e.g. single-file runs)
    }
    match load(path) {
        Ok(Some(snapshot)) => diff(&current, &snapshot, out),
        Ok(None) => {
            let mut diag = Diagnostic::new(
                WIRE_SCHEMA_RULE,
                "crates/rpc/src/proto.rs",
                1,
                format!(
                    "wire-schema snapshot {} is missing: generate it with \
                     `bf-lint --write-wire-schema` and check it in",
                    path.display()
                ),
            );
            diag.key = format!("{WIRE_SCHEMA_RULE}|missing-snapshot");
            out.push(diag);
        }
        Err(e) => {
            let mut diag = Diagnostic::new(
                WIRE_SCHEMA_RULE,
                "crates/rpc/src/proto.rs",
                1,
                format!("wire-schema snapshot unreadable: {e}"),
            );
            diag.key = format!("{WIRE_SCHEMA_RULE}|bad-snapshot");
            out.push(diag);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Unit;
    use crate::scan::parse;

    const PROTO: &str = r#"
impl WireDecode for DataRef {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        match buf.get_u8() {
            0 => Ok(DataRef::Inline(Payload::decode(buf)?)),
            1 => Ok(DataRef::Shm { region: get_varint(buf)? }),
            3 => Ok(DataRef::Digest(get_u128_be(buf)?)),
            value => Err(CodecError::BadDiscriminant { what: "DataRef", value }),
        }
    }
}

impl WireDecode for bool {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        match buf.get_u8() {
            0 => Ok(false),
            1 => Ok(true),
            value => Err(CodecError::BadDiscriminant { what: "bool", value }),
        }
    }
}
"#;

    fn units(path: &str, src: &str) -> Vec<Unit> {
        vec![Unit::analyze(parse(path, src, false), &mut Vec::new())]
    }

    fn snapshot(pairs: &[(u64, &str)]) -> BTreeMap<String, BTreeMap<u64, String>> {
        let mut tags = BTreeMap::new();
        for (tag, variant) in pairs {
            tags.insert(*tag, (*variant).to_string());
        }
        let mut out = BTreeMap::new();
        out.insert("DataRef".to_string(), tags);
        out
    }

    #[test]
    fn extract_reads_arm_tables_and_skips_primitives() {
        let schema = extract(&units("crates/rpc/src/proto.rs", PROTO));
        assert_eq!(schema.len(), 1, "bool impl has no Enum::Variant arms");
        let tags = &schema["DataRef"];
        assert_eq!(tags[&0].0, "Inline");
        assert_eq!(tags[&1].0, "Shm");
        assert_eq!(tags[&3].0, "Digest");
        assert!(!tags.contains_key(&2));
    }

    #[test]
    fn extract_ignores_files_outside_the_wire_surface() {
        assert!(extract(&units("crates/devmgr/src/session.rs", PROTO)).is_empty());
    }

    #[test]
    fn renumbering_a_released_tag_fails() {
        let current = extract(&units("crates/rpc/src/proto.rs", PROTO));
        // Released: tag 1 was `Inline`. The tree now says `Shm` — reuse.
        let snap = snapshot(&[(0, "Inline"), (1, "Inline"), (3, "Digest")]);
        let mut out = Vec::new();
        diff(&current, &snap, &mut out);
        assert_eq!(out.len(), 1);
        assert!(
            out[0].message.contains("renumbered/reused"),
            "{}",
            out[0].message
        );
        assert_eq!(out[0].key, "wire_schema|crates/rpc/src/proto.rs|DataRef|1");
    }

    #[test]
    fn new_tag_requires_snapshot_regeneration() {
        let current = extract(&units("crates/rpc/src/proto.rs", PROTO));
        let snap = snapshot(&[(0, "Inline"), (1, "Shm")]); // tag 3 is new
        let mut out = Vec::new();
        diff(&current, &snap, &mut out);
        assert_eq!(out.len(), 1);
        assert!(
            out[0].message.contains("--write-wire-schema"),
            "{}",
            out[0].message
        );
        assert_eq!(out[0].key, "wire_schema|crates/rpc/src/proto.rs|DataRef|3");
    }

    #[test]
    fn removing_a_released_tag_fails() {
        let current = extract(&units("crates/rpc/src/proto.rs", PROTO));
        let snap = snapshot(&[(0, "Inline"), (1, "Shm"), (2, "Synthetic"), (3, "Digest")]);
        let mut out = Vec::new();
        diff(&current, &snap, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("vanished"), "{}", out[0].message);
        assert_eq!(out[0].key, "wire_schema|crates/rpc/src/proto.rs|DataRef|2");
    }

    #[test]
    fn matching_snapshot_is_clean() {
        let current = extract(&units("crates/rpc/src/proto.rs", PROTO));
        let snap = snapshot(&[(0, "Inline"), (1, "Shm"), (3, "Digest")]);
        let mut out = Vec::new();
        diff(&current, &snap, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn missing_snapshot_fails_with_regenerate_hint() {
        let mut out = Vec::new();
        check(
            &units("crates/rpc/src/proto.rs", PROTO),
            Path::new("/nonexistent/wire-schema.json"),
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert!(
            out[0].message.contains("--write-wire-schema"),
            "{}",
            out[0].message
        );
        assert_eq!(out[0].key, "wire_schema|missing-snapshot");
    }

    #[test]
    fn render_round_trips_through_load() {
        let schema = extract(&units("crates/rpc/src/proto.rs", PROTO));
        let text = render(&schema);
        let dir = std::env::temp_dir().join(format!("bf-lint-wire-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tempdir");
        let path = dir.join("wire-schema.json");
        std::fs::write(&path, &text).expect("write");
        let back = load(&path).expect("parse").expect("present");
        assert_eq!(back["DataRef"][&0], "Inline");
        assert_eq!(back["DataRef"][&3], "Digest");
        let mut out = Vec::new();
        check(&units("crates/rpc/src/proto.rs", PROTO), &path, &mut out);
        assert!(
            out.is_empty(),
            "freshly generated snapshot diffs clean: {out:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
