//! Source model: comment/string masking and test-region tracking.
//!
//! The rules in [`crate::rules`] operate on a *masked* view of each source
//! file — comments and string/char-literal contents blanked to spaces — so
//! that `.unwrap()` inside a doc example or an error message never
//! triggers a diagnostic. The raw text is kept alongside for the one thing
//! that legitimately lives in comments: `bf-lint: allow(...)` directives.

/// One source line in raw, masked, and comments-only form.
#[derive(Debug, Clone)]
pub struct Line {
    /// The line exactly as written (comments and strings intact).
    pub raw: String,
    /// The line with comment and string/char contents replaced by spaces;
    /// string delimiters are kept so token shapes survive.
    pub code: String,
    /// The inverse view: only comment text survives, everything else is
    /// blanked. Directives are parsed from here, so the directive syntax
    /// appearing in a string literal never registers.
    pub comment: String,
    /// Whether the line sits inside a `#[cfg(test)]` region (or the whole
    /// file is a test/bench target).
    pub in_test: bool,
    /// `{` count in the masked view — precomputed once so every rule and
    /// both whole-program passes share one brace profile instead of
    /// re-counting per rule.
    pub opens: u32,
    /// `}` count in the masked view.
    pub closes: u32,
}

impl Line {
    /// Net brace depth change contributed by this line.
    pub fn brace_delta(&self) -> i64 {
        i64::from(self.opens) - i64::from(self.closes)
    }
}

/// A parsed source file ready for rule evaluation.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, used in diagnostics.
    pub path: String,
    /// Lines, 0-indexed internally; diagnostics report 1-indexed.
    pub lines: Vec<Line>,
}

/// Lexer state carried across characters while masking.
enum State {
    Code,
    LineComment,
    BlockComment { depth: u32 },
    Str,
    RawStr { hashes: u32 },
}

/// Dual masked views of a source text: `code` blanks comments and
/// string/char contents; `comments` blanks everything *except* comment
/// text. Both keep newlines so line splits stay aligned.
struct Masked {
    code: String,
    comments: String,
}

fn mask(text: &str) -> Masked {
    let bytes = text.as_bytes();
    let mut code = Vec::with_capacity(bytes.len());
    let mut com = Vec::with_capacity(bytes.len());
    // Emits one byte to the code view and its blank to the comment view.
    let mut state = State::Code;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match state {
            State::Code => match b {
                b'/' if bytes.get(i + 1) == Some(&b'/') => {
                    state = State::LineComment;
                    code.push(b' ');
                    com.push(b' ');
                }
                b'/' if bytes.get(i + 1) == Some(&b'*') => {
                    state = State::BlockComment { depth: 1 };
                    code.push(b' ');
                    com.push(b' ');
                }
                b'"' => {
                    // Keep the delimiter; blank the contents.
                    state = State::Str;
                    code.push(b'"');
                    com.push(b' ');
                }
                b'r' | b'b' if is_raw_string_start(bytes, i) => {
                    let (hashes, consumed) = raw_string_open(bytes, i);
                    state = State::RawStr { hashes };
                    for _ in 0..consumed {
                        code.push(b' ');
                        com.push(b' ');
                    }
                    i += consumed;
                    continue;
                }
                b'\'' => {
                    if let Some(len) = char_literal_len(bytes, i) {
                        // Blank the literal but keep its quotes.
                        code.push(b'\'');
                        com.push(b' ');
                        for _ in 1..len - 1 {
                            code.push(b' ');
                            com.push(b' ');
                        }
                        code.push(b'\'');
                        com.push(b' ');
                        i += len;
                        state = State::Code;
                        continue;
                    }
                    // A lifetime: ordinary code.
                    code.push(b'\'');
                    com.push(b' ');
                }
                _ => {
                    code.push(b);
                    com.push(if b == b'\n' { b'\n' } else { b' ' });
                }
            },
            State::LineComment => {
                if b == b'\n' {
                    state = State::Code;
                    code.push(b'\n');
                    com.push(b'\n');
                } else {
                    code.push(b' ');
                    com.push(b);
                }
            }
            State::BlockComment { depth } => {
                if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment { depth: depth + 1 };
                    for _ in 0..2 {
                        code.push(b' ');
                        com.push(b' ');
                    }
                    i += 2;
                    continue;
                }
                if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    state = if depth > 1 {
                        State::BlockComment { depth: depth - 1 }
                    } else {
                        State::Code
                    };
                    for _ in 0..2 {
                        code.push(b' ');
                        com.push(b' ');
                    }
                    i += 2;
                    continue;
                }
                code.push(if b == b'\n' { b'\n' } else { b' ' });
                com.push(b);
            }
            State::Str => match b {
                b'\\' => {
                    code.push(b' ');
                    com.push(b' ');
                    if bytes.get(i + 1).is_some() {
                        code.push(b' ');
                        com.push(b' ');
                        i += 2;
                        continue;
                    }
                }
                b'"' => {
                    state = State::Code;
                    code.push(b'"');
                    com.push(b' ');
                }
                b'\n' => {
                    code.push(b'\n');
                    com.push(b'\n');
                }
                _ => {
                    code.push(b' ');
                    com.push(b' ');
                }
            },
            State::RawStr { hashes } => {
                if b == b'"' && raw_string_closes(bytes, i, hashes) {
                    for _ in 0..=hashes {
                        code.push(b' ');
                        com.push(b' ');
                    }
                    i += 1 + hashes as usize;
                    state = State::Code;
                    continue;
                }
                code.push(if b == b'\n' { b'\n' } else { b' ' });
                com.push(if b == b'\n' { b'\n' } else { b' ' });
            }
        }
        i += 1;
    }
    Masked {
        code: String::from_utf8_lossy(&code).into_owned(),
        comments: String::from_utf8_lossy(&com).into_owned(),
    }
}

/// Whether `r"`, `r#"`, `br"`, or `b"` starts at `i` (and is not part of an
/// identifier like `for` or `b2`).
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    if i > 0 {
        let prev = bytes[i - 1];
        if prev.is_ascii_alphanumeric() || prev == b'_' {
            return false;
        }
    }
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    match bytes.get(j) {
        Some(b'"') => bytes[i] == b'b', // plain b"..."
        Some(b'r') => {
            let mut k = j + 1;
            while bytes.get(k) == Some(&b'#') {
                k += 1;
            }
            bytes.get(k) == Some(&b'"')
        }
        _ => false,
    }
}

/// Returns `(hash_count, bytes_consumed_by_opener)` for a raw/byte string
/// whose opener starts at `i`.
fn raw_string_open(bytes: &[u8], i: usize) -> (u32, usize) {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) == Some(&b'r') {
        j += 1;
    }
    let mut hashes = 0u32;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    // j now points at the opening quote.
    (hashes, j + 1 - i)
}

/// Whether the `"` at `i` closes a raw string opened with `hashes` hashes.
fn raw_string_closes(bytes: &[u8], i: usize, hashes: u32) -> bool {
    for k in 0..hashes as usize {
        if bytes.get(i + 1 + k) != Some(&b'#') {
            return false;
        }
    }
    true
}

/// If a char literal starts at the `'` at `i`, returns its total byte
/// length (quotes included); `None` means the quote begins a lifetime.
fn char_literal_len(bytes: &[u8], i: usize) -> Option<usize> {
    match bytes.get(i + 1)? {
        b'\\' => {
            // Escape: scan to the closing quote (bounded — escapes are
            // short, but \u{...} can run a few bytes).
            let mut j = i + 2;
            while j < bytes.len() && j - i < 12 {
                if bytes[j] == b'\'' {
                    return Some(j + 1 - i);
                }
                j += 1;
            }
            None
        }
        b'\'' => None, // `''` is not a char literal
        _ => {
            // Multi-byte UTF-8 scalar or ASCII char followed by a quote.
            let mut j = i + 2;
            while j < bytes.len() && j - i < 6 && (bytes[j] & 0xC0) == 0x80 {
                j += 1; // skip UTF-8 continuation bytes
            }
            (bytes.get(j) == Some(&b'\'')).then(|| j + 1 - i)
        }
    }
}

/// Splits `text` into [`Line`]s with masking and `#[cfg(test)]`-region
/// tracking. `whole_file_is_test` marks integration-test and bench targets.
pub fn parse(path: &str, text: &str, whole_file_is_test: bool) -> SourceFile {
    let masked = mask(text);
    let raw_lines: Vec<&str> = text.lines().collect();
    let masked_lines: Vec<&str> = masked.code.lines().collect();
    let comment_lines: Vec<&str> = masked.comments.lines().collect();

    let mut lines = Vec::with_capacity(raw_lines.len());
    let mut depth: i64 = 0;
    // (depth at which the test region's block opened)
    let mut test_region: Option<i64> = None;
    // A `#[cfg(test)]` attribute seen, waiting for its item's block.
    let mut pending_attr = false;

    for (idx, raw) in raw_lines.iter().enumerate() {
        let code = masked_lines.get(idx).copied().unwrap_or("");
        if test_region.is_none() && (code.contains("cfg(test") || code.contains("cfg(all(test")) {
            pending_attr = true;
        }

        let opens = code.bytes().filter(|&b| b == b'{').count() as i64;
        let closes = code.bytes().filter(|&b| b == b'}').count() as i64;

        // The attribute's item opens its block: the region spans until the
        // depth returns to the pre-block level.
        if pending_attr && opens > 0 {
            test_region = Some(depth);
            pending_attr = false;
        } else if pending_attr && code.contains(';') {
            // `#[cfg(test)] use ...;` — a blockless item; nothing to track.
            pending_attr = false;
        }

        let in_test = whole_file_is_test || test_region.is_some();
        lines.push(Line {
            raw: (*raw).to_string(),
            code: code.to_string(),
            comment: comment_lines.get(idx).copied().unwrap_or("").to_string(),
            in_test,
            opens: opens as u32,
            closes: closes as u32,
        });

        depth += opens - closes;
        if let Some(open_depth) = test_region {
            if depth <= open_depth {
                test_region = None;
            }
        }
    }

    SourceFile {
        path: path.to_string(),
        lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_comments_and_strings() {
        let f = parse("x.rs", "let a = \"x.unwrap()\"; // .unwrap()\n", false);
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].raw.contains("// .unwrap()"));
    }

    #[test]
    fn masks_nested_block_comments() {
        let f = parse("x.rs", "/* a /* b */ .unwrap() */ let x = 1;\n", false);
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].code.contains("let x = 1;"));
    }

    #[test]
    fn masks_raw_strings_and_char_literals() {
        let src = "let s = r#\".unwrap()\"#; let c = '\\n'; let l: &'static str = \"\";\n";
        let f = parse("x.rs", src, false);
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].code.contains("&'static str"));
    }

    #[test]
    fn tracks_cfg_test_regions() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn lib2() {}\n";
        let f = parse("x.rs", src, false);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[3].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn blockless_cfg_test_item_does_not_open_a_region() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn lib() {}\n";
        let f = parse("x.rs", src, false);
        assert!(!f.lines[2].in_test);
    }
}
