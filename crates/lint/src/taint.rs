//! bf-taint: interprocedural trust-boundary dataflow over the wire surface.
//!
//! The third analysis layer beside the per-file rules and bf-flow. Every
//! value a client puts on the wire — lengths, offsets, digests, handles,
//! kernel indices — is attacker-controlled, and PR 8's review proved the
//! bug class is live: the payload cache initially trusted client-claimed
//! digests, a cross-tenant dedup side-channel only a human caught. This
//! pass automates that review.
//!
//! **Sources.** Wire-decode outputs are untrusted:
//! * fns annotated `// bf-taint: source(wire)` (the codec decode surface
//!   in bf-rpc: `get_varint`, `get_u128_be`, the `WireDecode` trait) —
//!   their *return value* is tainted;
//! * auto-seeded `Decode`-style fns (`decode` / `from_bytes`) defined
//!   under `crates/rpc/` — same effect, so a new impl is covered without
//!   an annotation;
//! * structurally, any parameter whose base type is a wire message type
//!   ([`WIRE_PARAM_TYPES`]) — a `RequestEnvelope` or `DataRef` reaching a
//!   trust-boundary function is hostile by construction, even when the
//!   decode call sits behind a transport the call graph cannot see
//!   through.
//!
//! **Propagation** rides the bf-flow symbol model: `let` bindings whose
//! RHS mentions a tainted value (or calls a tainted-return fn), pattern
//! bindings in `match`/`if let`/`for` over a tainted scrutinee (field
//! projections arrive this way: destructuring a tainted envelope taints
//! the bound fields), and call arguments into callee parameters. The
//! widening is bounded: a (function, variable) pair is tainted at most
//! once (first provenance wins), witness chains cap at [`MAX_CHAIN`]
//! hops, and per-function reprocessing caps at [`MAX_VISITS`] — so the
//! fixpoint terminates on recursive call graphs.
//!
//! **Sanitizers** clear taint: `.min(..)`/`.clamp(..)` against a named
//! cap, validated constructors ([`SANITIZER_CALLS`] — the server-side
//! `content_digest` recomputation from PR 8 is the canonical one), and an
//! explicit `// bf-taint: sanitized(<why>)` whose justification is
//! mandatory (an empty one is a `directive` error and does *not* clear
//! taint). Rebinding a name from a clean RHS is a strong update: the old
//! taint is gone.
//!
//! **Sinks** are where untrusted data becomes resource exhaustion or an
//! authorization decision: allocation sizes (`with_capacity` / `reserve`
//! / `resize`), slice indexing and `split_to`-style buffer math, loop
//! bounds (ranges and `while` conditions), and the cache-admission /
//! digest-authorization surface in bf-cache/bf-devmgr (`holds`,
//! `note_sent`, `cache.get/insert`, residency notes — lock-scoped work
//! keyed by an untrusted id). Every finding carries a multi-hop
//! source→sink witness like bf-flow's and a line-drift-tolerant baseline
//! key (`rule|file|qualified_fn|token`), so the existing
//! `lint-baseline.json` machinery gates CI on *new* flows only.
//!
//! Known approximations, chosen over rustc plumbing like the rest of the
//! linter: taint does not survive storage round-trips through collections
//! (insert tainted, read back later), receiver taint does not flow into
//! callee bodies through `self`, and a skipped unparseable parameter can
//! shift argument positions. The kernel-arg index cap in
//! `bf-devmgr::session` exists precisely because the first blind spot is
//! real — see ARCHITECTURE.md §14.

use std::collections::{BTreeMap, HashSet};

use crate::flow::{
    build_model, extract_fn_facts, is_keyword, split_top_level, CallSite, FnDef, FnFacts, Model,
    EXCLUDED_PREFIXES,
};
use crate::rules::{find_all, find_keyword, Diagnostic, Hop, Unit};

/// Rules of the taint pass, accepted by `bf-taint: allow(..)` directives.
pub const TAINT_RULES: &[&str] = &["taint_alloc", "taint_index", "taint_loop", "taint_auth"];

/// Annotation marking the next fn's return value as a wire source.
const SOURCE_MARKER: &str = "bf-taint: source(wire)";
/// A source annotation binds to the next fn within this many lines.
const SOURCE_BIND_WINDOW: usize = 8;
/// Witness chains stop extending past this many hops (bounded widening).
const MAX_CHAIN: usize = 8;
/// A function is re-analyzed at most this many times in the fixpoint.
const MAX_VISITS: usize = 32;
/// Intra-function passes: two suffice for use-before-def in straight-line
/// bodies without chasing loops.
const BODY_PASSES: usize = 2;

/// Wire message types: a parameter of one of these is untrusted input.
const WIRE_PARAM_TYPES: &[&str] = &[
    "RequestEnvelope",
    "ResponseEnvelope",
    "Request",
    "Response",
    "DataRef",
    "WireArg",
];
/// Decode-style fn names auto-seeded as sources when defined in bf-rpc.
const DECODE_NAMES: &[&str] = &["decode", "from_bytes"];
const DECODE_CRATE_PREFIX: &str = "crates/rpc/";

/// Validated constructors: calling one yields a *trusted* value (the
/// server recomputes instead of believing the client).
const SANITIZER_CALLS: &[&str] = &["content_digest"];
/// Capping combinators: an expression passing through one is bounded.
const SANITIZER_METHODS: &[&str] = &[".min(", ".clamp("];

/// Allocation sinks: the argument sizes a buffer.
const ALLOC_SINKS: &[&str] = &["with_capacity(", ".reserve(", ".resize(", ".resize_with("];
/// Buffer-math sinks: the argument moves a cursor or splits a buffer.
const BUFFER_MATH_SINKS: &[&str] = &[".split_to(", ".split_off(", ".truncate(", ".advance("];
/// Digest-authorization / admission methods: tainted arguments here are
/// authorization decisions keyed by untrusted input, wherever they live.
const AUTH_METHODS: &[&str] = &[
    "holds",
    "holds_digest",
    "note_sent",
    "forget",
    "device_resident",
    "note_device_resident",
];
/// Generic map methods that become admission decisions when the receiver
/// is a payload cache (`*cache*` in the receiver chain).
const CACHE_METHODS: &[&str] = &["get", "insert", "invalidate_buffer"];

/// Interprocedural taint state: per function, which parameters are
/// tainted (with the provenance chain that tainted them) and whether the
/// return value is tainted.
struct TaintState {
    params: Vec<BTreeMap<String, Vec<Hop>>>,
    ret: Vec<Option<Vec<Hop>>>,
}

/// One `match` region over a tainted scrutinee, tracked by brace depth.
struct MatchCtx {
    depth: i64,
    prov: Vec<Hop>,
    /// Whether the scanner currently sits in an arm's *pattern* (between
    /// the previous arm's end and this arm's `=>`).
    pattern: bool,
}

fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/") || path.contains("/tests/") || path.contains("/benches/")
}

fn skip_unit(path: &str) -> bool {
    is_test_path(path) || EXCLUDED_PREFIXES.iter().any(|p| path.starts_with(p))
}

/// Word-boundary mention of `ident` in `text`.
fn mentions(text: &str, ident: &str) -> bool {
    let bytes = text.as_bytes();
    for pos in find_all(text, ident) {
        let before_ok = pos == 0 || {
            let b = bytes[pos - 1];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        let after = pos + ident.len();
        let after_ok = after >= bytes.len() || {
            let b = bytes[after];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        // `foo.ident` is a field projection of `foo`, not a use of the
        // local `ident`; `path::ident` likewise names something else.
        let projected = pos > 0 && bytes[pos - 1] == b'.';
        let pathed = pos >= 2 && bytes[pos - 1] == b':' && bytes[pos - 2] == b':';
        if before_ok && after_ok && !projected && !pathed {
            return true;
        }
    }
    false
}

/// Extends a provenance chain by one hop, respecting the widening cap.
fn extend(prov: &[Hop], hop: Hop) -> Vec<Hop> {
    let mut out = prov.to_vec();
    if out.len() < MAX_CHAIN {
        out.push(hop);
    }
    out
}

/// First tainted variable mentioned in `text`, in name order
/// (deterministic because `vars` is a BTreeMap).
fn first_tainted<'a>(
    text: &str,
    vars: &'a BTreeMap<String, Vec<Hop>>,
) -> Option<(&'a str, &'a Vec<Hop>)> {
    vars.iter()
        .find(|(name, _)| mentions(text, name))
        .map(|(name, prov)| (name.as_str(), prov))
}

/// Whether `text` passes through a sanitizer (capping combinator or
/// validated constructor): the resulting value is trusted.
fn sanitized_expr(text: &str) -> bool {
    SANITIZER_METHODS.iter().any(|m| text.contains(m))
        || SANITIZER_CALLS.iter().any(|f| {
            find_all(text, &format!("{f}(")).iter().any(|&p| {
                p == 0 || {
                    let b = text.as_bytes()[p - 1];
                    !(b.is_ascii_alphanumeric() || b == b'_')
                }
            })
        })
}

/// Lowercase identifiers bound by a pattern fragment (`Some(x)`,
/// `DataRef::Digest { digest, len }`, `(a, b)`): everything that is not a
/// keyword, a type path segment, a struct-pattern field key, or `_`.
fn pattern_idents(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut depth = 0i64; // `{..}` nesting: field keys only exist inside
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'{' {
            depth += 1;
            i += 1;
        } else if b == b'}' {
            depth -= 1;
            i += 1;
        } else if b.is_ascii_alphabetic() || b == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let word = &text[start..i];
            let followed_colon = bytes.get(i) == Some(&b':');
            let double_colon = followed_colon && bytes.get(i + 1) == Some(&b':');
            let preceded_path = start >= 2 && bytes[start - 1] == b':' && bytes[start - 2] == b':';
            // `Foo::Bar` segments never bind; `field: sub` inside braces
            // binds `sub`, not `field`.
            let skip = double_colon || preceded_path || (followed_colon && depth > 0);
            if !skip
                && word != "_"
                && !is_keyword(word)
                && word.chars().next().is_some_and(char::is_lowercase)
            {
                out.push(word.to_string());
            }
        } else {
            i += 1;
        }
    }
    out
}

/// A top-level type-ascription `:` in a `let` pattern (`let n: usize`),
/// ignoring `::` paths and anything nested in `()`/`[]`/`{}`.
fn top_level_colon(text: &str) -> Option<usize> {
    let bytes = text.as_bytes();
    let mut depth = 0i64;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b':' if depth == 0 => {
                let next_double = bytes.get(i + 1) == Some(&b':');
                let prev_double = i > 0 && bytes[i - 1] == b':';
                if !next_double && !prev_double {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Finds a top-level `=` that is an assignment (not `==`, `=>`, `<=`,
/// `>=`, `!=`, `+=` …).
fn find_assign(text: &str) -> Option<usize> {
    let bytes = text.as_bytes();
    let mut depth = 0i64;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b'=' if depth == 0 => {
                let prev = if i > 0 { bytes[i - 1] } else { b' ' };
                let next = bytes.get(i + 1).copied().unwrap_or(b' ');
                if !matches!(
                    prev,
                    b'=' | b'!' | b'<' | b'>' | b'+' | b'-' | b'*' | b'/' | b'%'
                ) && !matches!(next, b'=' | b'>')
                {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Concatenated masked code of the statement starting at `lineno`
/// (1-based): the line plus continuation lines until one ends the
/// statement with `;`, `{` or the span cap.
fn statement_text(unit: &Unit, lineno: usize, last: usize) -> String {
    let mut text = String::new();
    for l in lineno..=last.min(lineno + 7).min(unit.file.lines.len()) {
        let code = &unit.file.lines[l - 1].code;
        text.push_str(code);
        text.push(' ');
        let trimmed = code.trim_end();
        if trimmed.ends_with(';') || trimmed.ends_with('{') {
            break;
        }
    }
    text
}

/// The argument texts of one call site, collected across up to 16 lines
/// by balancing parentheses from the call's opening `(`.
fn call_args(unit: &Unit, call: &CallSite) -> Vec<String> {
    let first = &unit.file.lines[call.line - 1].code;
    let open = call.column - 1 + call.name.len();
    if first.as_bytes().get(open) != Some(&b'(') {
        return Vec::new();
    }
    let mut inner = String::new();
    let mut depth = 1i64;
    let mut pos = open + 1;
    for l in call.line..=(call.line + 15).min(unit.file.lines.len()) {
        let code = &unit.file.lines[l - 1].code;
        for b in code.bytes().skip(if l == call.line { pos } else { 0 }) {
            match b {
                b'(' | b'[' => depth += 1,
                b')' | b']' => {
                    depth -= 1;
                    if depth == 0 {
                        return split_top_level(&inner)
                            .into_iter()
                            .map(|s| s.trim().to_string())
                            .collect();
                    }
                }
                _ => {}
            }
            inner.push(b as char);
        }
        inner.push(' ');
        pos = 0;
    }
    // Unbalanced within the cap: use what was collected.
    split_top_level(&inner)
        .into_iter()
        .map(|s| s.trim().to_string())
        .collect()
}

/// Taint carried by an expression: a mentioned tainted variable, or a
/// call into a tainted-return function on the statement's lines.
#[allow(clippy::too_many_arguments)] // threads the per-fn analysis context
fn expr_taint(
    text: &str,
    lines: (usize, usize),
    vars: &BTreeMap<String, Vec<Hop>>,
    def: &FnDef,
    facts: &FnFacts,
    model: &Model,
    state: &TaintState,
    path: &str,
) -> Option<Vec<Hop>> {
    if sanitized_expr(text) {
        return None;
    }
    if let Some((_, prov)) = first_tainted(text, vars) {
        return Some(prov.clone());
    }
    for call in &facts.calls {
        // Method names hide behind a `.`, so word-boundary `mentions`
        // would miss them: match `name(` instead.
        if call.line < lines.0 || call.line > lines.1 || !text.contains(&format!("{}(", call.name))
        {
            continue;
        }
        let (targets, _) = model.resolve(def, facts, call);
        for t in targets {
            if let Some(prov) = &state.ret[t] {
                return Some(extend(
                    prov,
                    Hop {
                        function: def.qualified.clone(),
                        file: path.to_string(),
                        line: call.line,
                    },
                ));
            }
        }
    }
    None
}

/// Result of one intra-function analysis.
struct FnAnalysis {
    ret: Option<Vec<Hop>>,
    /// (callee fn idx, param name, provenance) taint proposals.
    props: Vec<(usize, String, Vec<Hop>)>,
    /// Call edges out of this fn (for worklist invalidation).
    edges: Vec<usize>,
    /// Sink findings, collected flow-sensitively on the final pass (the
    /// taint state *at the sink's line* decides — a later clean rebinding
    /// of the same name must not retroactively bless an earlier sink).
    sinks: Vec<Sink>,
}

/// Runs the line-based dataflow over one function body: seeds from the
/// interprocedural state, propagates through bindings/patterns, and
/// collects call-argument taint proposals plus the return-value verdict.
#[allow(clippy::too_many_lines)]
fn analyze_fn(
    unit: &Unit,
    def: &FnDef,
    facts: &FnFacts,
    model: &Model,
    state: &TaintState,
    idx: usize,
    want_sinks: bool,
) -> FnAnalysis {
    let path = &unit.file.path;
    let mut vars = state.params[idx].clone();
    let mut ret = None;
    let mut sinks = Vec::new();
    let Some((start, end)) = def.body else {
        return FnAnalysis {
            ret,
            props: Vec::new(),
            edges: Vec::new(),
            sinks,
        };
    };
    for pass in 0..BODY_PASSES {
        let mut depth = 0i64;
        let mut match_stack: Vec<MatchCtx> = Vec::new();
        for lineno in start..=end.min(unit.file.lines.len()) {
            let line = &unit.file.lines[lineno - 1];
            let depth_before = depth;
            depth += line.brace_delta();
            if line.in_test {
                continue;
            }
            let code = &line.code;
            let trimmed = code.trim_start();
            let clean_line = unit.dirs.sanitized.contains(&lineno);

            while match_stack.last().is_some_and(|m| depth_before <= m.depth) {
                match_stack.pop();
            }
            if let Some(m) = match_stack.last_mut() {
                if depth_before == m.depth + 1 {
                    m.pattern = true;
                }
                if m.pattern && !clean_line {
                    let prov = m.prov.clone();
                    let pat_text = match code.find("=>") {
                        Some(arrow) => {
                            m.pattern = false;
                            &code[..arrow]
                        }
                        None => code.as_str(),
                    };
                    for name in pattern_idents(pat_text) {
                        vars.insert(name, prov.clone());
                    }
                }
            }

            // Sinks see the taint state *at this line* (pattern bindings
            // above included, this line's own rebindings not yet applied).
            if want_sinks && pass == BODY_PASSES - 1 && !clean_line {
                scan_line_sinks(unit, facts, lineno, code, &vars, &mut sinks);
            }

            // `let` bindings, including `if let` / `while let` / `else`.
            let mut head = trimmed;
            for prefix in ["else ", "if ", "while "] {
                if let Some(r) = head.strip_prefix(prefix) {
                    head = r.trim_start();
                }
            }
            if head.starts_with("let ") {
                let span = statement_text(unit, lineno, end);
                let let_pos = span.find("let ").unwrap_or(0);
                let after_let = &span[let_pos + 4..];
                if let Some(eq) = find_assign(after_let) {
                    let pat = &after_let[..eq];
                    // `let n: usize = ..`: the ascribed type is not a
                    // binding — cut the pattern at the ascription colon.
                    let pat = match top_level_colon(pat) {
                        Some(c) => &pat[..c],
                        None => pat,
                    };
                    let rhs = &after_let[eq + 1..];
                    let taint = if clean_line {
                        None
                    } else {
                        expr_taint(
                            rhs,
                            (lineno, (lineno + 7).min(end)),
                            &vars,
                            def,
                            facts,
                            model,
                            state,
                            path,
                        )
                    };
                    match taint {
                        Some(prov) => {
                            for name in pattern_idents(pat) {
                                vars.insert(name, prov.clone());
                            }
                        }
                        // Strong update: a rebinding from a clean RHS
                        // clears the old taint.
                        None => {
                            for name in pattern_idents(pat) {
                                vars.remove(&name);
                            }
                        }
                    }
                }
            } else if let Some(r) = trimmed.strip_prefix("for ") {
                if let Some(in_pos) = r.find(" in ") {
                    let pat = &r[..in_pos];
                    let iter = r[in_pos + 4..].trim_end().trim_end_matches('{');
                    if !clean_line {
                        if let Some(prov) = expr_taint(
                            iter,
                            (lineno, lineno),
                            &vars,
                            def,
                            facts,
                            model,
                            state,
                            path,
                        ) {
                            for name in pattern_idents(pat) {
                                vars.insert(name, prov.clone());
                            }
                        }
                    }
                }
            }

            // Tainted scrutinee: the arms' pattern bindings inherit it.
            if let Some(&mpos) = find_keyword(code, "match").first() {
                let expr = code[mpos + 5..].trim_end().trim_end_matches('{');
                if !clean_line {
                    if let Some(prov) = expr_taint(
                        expr,
                        (lineno, lineno),
                        &vars,
                        def,
                        facts,
                        model,
                        state,
                        path,
                    ) {
                        match_stack.push(MatchCtx {
                            depth: depth_before,
                            prov,
                            pattern: false,
                        });
                    }
                }
            }

            // Return-value taint: explicit `return`s plus the tail line.
            if !clean_line && !def.ret.is_empty() {
                if let Some(&rpos) = find_keyword(code, "return").first() {
                    if let Some(prov) = expr_taint(
                        &code[rpos + 6..],
                        (lineno, lineno),
                        &vars,
                        def,
                        facts,
                        model,
                        state,
                        path,
                    ) {
                        ret.get_or_insert(prov);
                    }
                }
            }
        }
    }

    // Tail-expression heuristic: the last code line before the closing
    // braces carries the fn's value in expression position.
    if ret.is_none() && !def.ret.is_empty() {
        for lineno in (start..=end.min(unit.file.lines.len())).rev() {
            let line = &unit.file.lines[lineno - 1];
            let code = line.code.trim();
            if code.is_empty() || code.chars().all(|c| "}));,".contains(c)) {
                continue;
            }
            if !line.in_test && !unit.dirs.sanitized.contains(&lineno) {
                ret = expr_taint(
                    code,
                    (lineno, lineno),
                    &vars,
                    def,
                    facts,
                    model,
                    state,
                    path,
                );
            }
            break;
        }
    }

    // Call-argument propagation into callee parameters.
    let mut props = Vec::new();
    let mut edges = Vec::new();
    for call in &facts.calls {
        let (targets, _) = model.resolve(def, facts, call);
        if targets.is_empty() {
            continue;
        }
        for &t in &targets {
            if t != idx && !edges.contains(&t) {
                edges.push(t);
            }
        }
        if unit.file.lines[call.line - 1].in_test || unit.dirs.sanitized.contains(&call.line) {
            continue;
        }
        let args = call_args(unit, call);
        for (i, arg) in args.iter().enumerate() {
            if sanitized_expr(arg) {
                continue;
            }
            let Some((_, prov)) = first_tainted(arg, &vars) else {
                continue;
            };
            let prov = extend(
                prov,
                Hop {
                    function: def.qualified.clone(),
                    file: path.clone(),
                    line: call.line,
                },
            );
            for &t in &targets {
                if let Some((pname, _)) = model.fns[t].params.get(i) {
                    props.push((t, pname.clone(), prov.clone()));
                }
            }
        }
    }
    FnAnalysis {
        ret,
        props,
        edges,
        sinks,
    }
}

/// Seeds the interprocedural state: explicit source annotations,
/// auto-seeded decode fns, and wire-typed parameters.
fn seed(units: &[Unit], model: &Model, state: &mut TaintState, out: &mut Vec<Diagnostic>) {
    for (idx, def) in model.fns.iter().enumerate() {
        let unit = &units[def.unit_idx];
        let source_hop = || Hop {
            function: def.qualified.clone(),
            file: unit.file.path.clone(),
            line: def.line,
        };
        if DECODE_NAMES.contains(&def.name.as_str())
            && unit.file.path.starts_with(DECODE_CRATE_PREFIX)
        {
            state.ret[idx].get_or_insert_with(|| vec![source_hop()]);
        }
        if skip_unit(&unit.file.path) {
            continue;
        }
        for (pname, ptype) in &def.params {
            if WIRE_PARAM_TYPES.contains(&ptype.as_str()) {
                state.params[idx]
                    .entry(pname.clone())
                    .or_insert_with(|| vec![source_hop()]);
            }
        }
    }
    // Explicit annotations bind to the next fn within the window; a
    // dangling one would silently unprotect its surface, so it errors.
    for (uidx, unit) in units.iter().enumerate() {
        if skip_unit(&unit.file.path) {
            continue;
        }
        for (lidx, line) in unit.file.lines.iter().enumerate() {
            let Some(pos) = line.comment.find(SOURCE_MARKER) else {
                continue;
            };
            if pos > 0 && line.comment.as_bytes()[pos - 1] == b'`' {
                continue;
            }
            let anno_line = lidx + 1;
            let bound = model
                .fns
                .iter()
                .enumerate()
                .filter(|(_, d)| {
                    d.unit_idx == uidx
                        && d.line > anno_line
                        && d.line <= anno_line + SOURCE_BIND_WINDOW
                })
                .min_by_key(|(_, d)| d.line);
            match bound {
                Some((idx, def)) => {
                    let hop = Hop {
                        function: def.qualified.clone(),
                        file: unit.file.path.clone(),
                        line: def.line,
                    };
                    state.ret[idx].get_or_insert_with(|| vec![hop]);
                }
                None => out.push(
                    Diagnostic::new(
                        "directive",
                        &unit.file.path,
                        anno_line,
                        format!(
                            "dangling `{SOURCE_MARKER})` annotation: no fn follows \
                             within {SOURCE_BIND_WINDOW} lines"
                        ),
                    )
                    .at_column(pos + 1),
                ),
            }
        }
    }
}

/// One sink finding before diagnostics assembly.
struct Sink {
    rule: &'static str,
    line: usize,
    column: usize,
    token: String,
    message: String,
    prov: Vec<Hop>,
}

/// Scans one line for sinks fed by variables tainted *at that line*.
#[allow(clippy::too_many_lines)]
fn scan_line_sinks(
    unit: &Unit,
    facts: &FnFacts,
    lineno: usize,
    code: &str,
    vars: &BTreeMap<String, Vec<Hop>>,
    sinks: &mut Vec<Sink>,
) {
    if vars.is_empty() {
        return;
    }

    // Allocation + buffer-math sinks share the paren-arg shape.
    for (rule, patterns, what) in [
        ("taint_alloc", ALLOC_SINKS, "allocation sized"),
        ("taint_index", BUFFER_MATH_SINKS, "buffer cursor moved"),
    ] {
        for pat in patterns {
            for pos in find_all(code, pat) {
                let open = pos + pat.len() - 1;
                let arg = paren_text(unit, lineno, open);
                if sanitized_expr(&arg) {
                    continue;
                }
                let Some((name, prov)) = first_tainted(&arg, vars) else {
                    continue;
                };
                let op = pat.trim_matches(['.', '(']);
                sinks.push(Sink {
                    rule,
                    line: lineno,
                    column: pos + 1,
                    token: format!("{op}:{name}"),
                    message: format!(
                        "{what} by wire-tainted `{name}` in `{op}(..)`: cap it \
                         against a named bound (`.min(CAP)`) or justify with \
                         `// bf-taint: sanitized(<why>)`",
                    ),
                    prov: prov.clone(),
                });
            }
        }
    }

    // Slice/array indexing: `ident[..tainted..]`.
    if !code.trim_start().starts_with('#') {
        for (i, b) in code.bytes().enumerate() {
            if b != b'[' || i == 0 {
                continue;
            }
            let prev = code.as_bytes()[i - 1];
            if !(prev.is_ascii_alphanumeric() || prev == b'_' || prev == b')' || prev == b']') {
                continue;
            }
            let inner = bracket_text(code, i);
            if sanitized_expr(&inner) {
                continue;
            }
            if let Some((name, prov)) = first_tainted(&inner, vars) {
                sinks.push(Sink {
                    rule: "taint_index",
                    line: lineno,
                    column: i + 1,
                    token: format!("index:{name}"),
                    message: format!(
                        "slice indexed by wire-tainted `{name}`: bounds-check \
                         or clamp before indexing, or justify with \
                         `// bf-taint: sanitized(<why>)`",
                    ),
                    prov: prov.clone(),
                });
            }
        }
    }

    // Loop bounds: ranges in `for`, conditions in `while`.
    let trimmed = code.trim_start();
    if let Some(r) = trimmed.strip_prefix("for ") {
        if let Some(in_pos) = r.find(" in ") {
            let iter = r[in_pos + 4..].trim_end().trim_end_matches('{');
            if iter.contains("..") && !sanitized_expr(iter) {
                if let Some((name, prov)) = first_tainted(iter, vars) {
                    sinks.push(Sink {
                        rule: "taint_loop",
                        line: lineno,
                        column: code.len() - code.trim_start().len() + 1,
                        token: format!("for:{name}"),
                        message: format!(
                            "loop range bounded by wire-tainted `{name}`: a \
                             client-chosen bound is a CPU-exhaustion lever — \
                             cap it or justify with \
                             `// bf-taint: sanitized(<why>)`",
                        ),
                        prov: prov.clone(),
                    });
                }
            }
        }
    } else if let Some(r) = trimmed.strip_prefix("while ") {
        if !r.trim_start().starts_with("let ") {
            let cond = r.trim_end().trim_end_matches('{');
            if !sanitized_expr(cond) {
                if let Some((name, prov)) = first_tainted(cond, vars) {
                    sinks.push(Sink {
                        rule: "taint_loop",
                        line: lineno,
                        column: code.len() - code.trim_start().len() + 1,
                        token: format!("while:{name}"),
                        message: format!(
                            "`while` condition reads wire-tainted `{name}`: a \
                             client-steered loop bound is a CPU-exhaustion \
                             lever — cap it or justify with \
                             `// bf-taint: sanitized(<why>)`",
                        ),
                        prov: prov.clone(),
                    });
                }
            }
        }
    }

    // Authorization sinks ride the extracted call sites on this line.
    for call in &facts.calls {
        if call.line != lineno {
            continue;
        }
        let name = call.name.as_str();
        let cache_recv = call
            .chain
            .last()
            .is_some_and(|seg| seg.contains("cache") || seg.contains("admitted"));
        let auth = AUTH_METHODS.contains(&name) || (cache_recv && CACHE_METHODS.contains(&name));
        if !auth {
            continue;
        }
        let args = call_args(unit, call);
        let hit = args
            .iter()
            .filter(|a| !sanitized_expr(a))
            .find_map(|a| first_tainted(a, vars));
        if let Some((var, prov)) = hit {
            let recv = call.chain.join(".");
            sinks.push(Sink {
                rule: "taint_auth",
                line: call.line,
                column: call.column,
                token: format!("auth:{name}:{var}"),
                message: format!(
                    "admission/authorization call `{recv}.{name}(..)` keyed by \
                     wire-tainted `{var}`: an untrusted value is deciding a \
                     cache or residency outcome — recompute server-side \
                     (`content_digest`) or justify with \
                     `// bf-taint: allow(taint_auth): <why>`",
                ),
                prov: prov.clone(),
            });
        }
    }
}

/// Balanced-paren argument text starting at the `(` at byte `open`.
fn paren_text(unit: &Unit, lineno: usize, open: usize) -> String {
    let mut inner = String::new();
    let mut depth = 0i64;
    let mut pos = open;
    for l in lineno..=(lineno + 7).min(unit.file.lines.len()) {
        let code = &unit.file.lines[l - 1].code;
        for b in code.bytes().skip(if l == lineno { pos } else { 0 }) {
            match b {
                b'(' | b'[' => depth += 1,
                b')' | b']' => {
                    depth -= 1;
                    if depth == 0 {
                        return inner;
                    }
                }
                _ => {}
            }
            if depth >= 1 && !(depth == 1 && (b == b'(' || b == b'[')) {
                inner.push(b as char);
            }
        }
        inner.push(' ');
        pos = 0;
    }
    inner
}

/// `[..]` content starting at the `[` at byte `open`, same line only.
fn bracket_text(code: &str, open: usize) -> String {
    let mut depth = 0i64;
    let mut inner = String::new();
    for b in code.bytes().skip(open) {
        match b {
            b'[' | b'(' => depth += 1,
            b']' | b')' => {
                depth -= 1;
                if depth == 0 {
                    return inner;
                }
            }
            _ => {}
        }
        if depth >= 1 && !(depth == 1 && (b == b'[' || b == b'(')) {
            inner.push(b as char);
        }
    }
    inner
}

/// Runs the taint pass over the parsed workspace, appending findings.
pub fn check(units: &[Unit], out: &mut Vec<Diagnostic>) {
    let model = build_model(units);
    let n = model.fns.len();
    let facts: Vec<FnFacts> = model
        .fns
        .iter()
        .map(|d| extract_fn_facts(&units[d.unit_idx], d))
        .collect();
    let mut state = TaintState {
        params: vec![BTreeMap::new(); n],
        ret: vec![None; n],
    };
    seed(units, &model, &mut state, out);

    // Fixpoint: process every fn once to learn edges, then chase changes.
    let mut callers: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut visits = vec![0usize; n];
    let mut queue: std::collections::VecDeque<usize> = (0..n).collect();
    let mut queued: Vec<bool> = vec![true; n];
    while let Some(idx) = queue.pop_front() {
        queued[idx] = false;
        if visits[idx] >= MAX_VISITS {
            continue; // widening cap: stop chasing this fn
        }
        visits[idx] += 1;
        let def = &model.fns[idx];
        let unit = &units[def.unit_idx];
        let analysis = analyze_fn(unit, def, &facts[idx], &model, &state, idx, false);
        for &t in &analysis.edges {
            if !callers[t].contains(&idx) {
                callers[t].push(idx);
            }
        }
        let mut dirty: Vec<usize> = Vec::new();
        for (t, pname, prov) in analysis.props {
            if let std::collections::btree_map::Entry::Vacant(e) = state.params[t].entry(pname) {
                e.insert(prov);
                dirty.push(t);
            }
        }
        if state.ret[idx].is_none() {
            if let Some(prov) = analysis.ret {
                state.ret[idx] = Some(prov);
                // A newly tainted return invalidates every caller.
                dirty.extend(callers[idx].iter().copied());
            }
        }
        for t in dirty {
            if !queued[t] {
                queued[t] = true;
                queue.push_back(t);
            }
        }
    }

    // Final sink sweep with the converged state, in deterministic order.
    let mut seen: HashSet<String> = HashSet::new();
    let mut fn_order: Vec<usize> = (0..n).collect();
    fn_order.sort_by_key(|&i| (model.fns[i].unit_idx, model.fns[i].line));
    for idx in fn_order {
        let def = &model.fns[idx];
        let unit = &units[def.unit_idx];
        let path = &unit.file.path;
        if skip_unit(path) {
            continue;
        }
        let analysis = analyze_fn(unit, def, &facts[idx], &model, &state, idx, true);
        for sink in analysis.sinks {
            if unit.dirs.taint.permits(sink.line, sink.rule) {
                continue;
            }
            let key = format!("{}|{path}|{}|{}", sink.rule, def.qualified, sink.token);
            if !seen.insert(key.clone()) {
                continue;
            }
            let mut witness = sink.prov.clone();
            witness.push(Hop {
                function: format!("{} [{}]", def.qualified, sink.token),
                file: path.clone(),
                line: sink.line,
            });
            let mut diag =
                Diagnostic::new(sink.rule, path, sink.line, sink.message).at_column(sink.column);
            diag.witness = witness;
            diag.key = key;
            out.push(diag);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::parse;

    #[test]
    fn mentions_respects_word_boundaries_and_projections() {
        assert!(mentions("alloc(len)", "len"));
        assert!(mentions("len as usize", "len"));
        assert!(!mentions("length", "len"));
        assert!(!mentions("slot.len", "len"), "field projection of slot");
        assert!(!mentions("path::len", "len"), "path segment");
        assert!(mentions("buf.split_to(len)", "len"));
    }

    #[test]
    fn pattern_idents_skip_paths_keywords_and_field_keys() {
        assert_eq!(pattern_idents("Some(x)"), vec!["x"]);
        assert_eq!(
            pattern_idents("DataRef::Digest { digest, len }"),
            vec!["digest", "len"]
        );
        assert_eq!(pattern_idents("(a, _, b)"), vec!["a", "b"]);
        // `field: sub` inside braces binds `sub`, not the field key.
        assert_eq!(pattern_idents("Foo { field: sub }"), vec!["sub"]);
        assert!(pattern_idents("ErrorCode::CacheMiss").is_empty());
    }

    #[test]
    fn top_level_colon_ignores_paths_and_nesting() {
        assert_eq!(top_level_colon("n: usize"), Some(1));
        assert_eq!(top_level_colon("n::m"), None);
        assert_eq!(top_level_colon("(a: u8)"), None, "nested ascription");
        assert_eq!(top_level_colon("x"), None);
    }

    #[test]
    fn find_assign_skips_comparisons_and_arrows() {
        assert_eq!(find_assign("x = y"), Some(2));
        assert_eq!(find_assign("x == y"), None);
        assert_eq!(find_assign("x => y"), None);
        assert_eq!(find_assign("x += y"), None);
        assert_eq!(find_assign("if (a == b) { c } = d"), Some(18));
    }

    #[test]
    fn sanitized_expr_matches_caps_and_validated_constructors() {
        assert!(sanitized_expr("declared.min(limit)"));
        assert!(sanitized_expr("v.clamp(0, 16)"));
        assert!(sanitized_expr("content_digest(&bytes)"));
        assert!(!sanitized_expr("incontent_digest(&bytes)"), "word boundary");
        assert!(!sanitized_expr("declared + limit"));
    }

    fn run(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let units: Vec<Unit> = files
            .iter()
            .map(|(path, src)| Unit::analyze(parse(path, src, false), &mut Vec::new()))
            .collect();
        let mut out = Vec::new();
        check(&units, &mut out);
        out
    }

    const WIRE_SRC: &str = "
// bf-taint: source(wire)
pub fn read_len(buf: &mut Bytes) -> u64 {
    0
}
";

    #[test]
    fn source_flows_through_calls_to_alloc_sink_with_witness() {
        let diags = run(&[
            ("crates/demo/src/wire.rs", WIRE_SRC),
            (
                "crates/demo/src/lib.rs",
                "
pub fn entry(buf: &mut Bytes) {
    let declared = read_len(buf);
    mid(declared);
}

fn mid(count: u64) {
    grow(count);
}

fn grow(count: u64) {
    let v: Vec<u8> = Vec::with_capacity(count as usize);
    drop(v);
}
",
            ),
        ]);
        let allocs: Vec<_> = diags.iter().filter(|d| d.rule == "taint_alloc").collect();
        assert_eq!(allocs.len(), 1, "{diags:?}");
        let diag = allocs[0];
        assert!(
            diag.key.ends_with("|grow|with_capacity:count"),
            "{}",
            diag.key
        );
        assert!(
            diag.witness.len() >= 3,
            "multi-hop witness expected: {:?}",
            diag.witness
        );
        assert!(
            diag.witness
                .last()
                .unwrap()
                .function
                .contains("with_capacity"),
            "{:?}",
            diag.witness
        );
    }

    #[test]
    fn capping_sanitizer_clears_the_flow() {
        let diags = run(&[
            ("crates/demo/src/wire.rs", WIRE_SRC),
            (
                "crates/demo/src/lib.rs",
                "
pub fn entry(buf: &mut Bytes) {
    let declared = read_len(buf).min(4096);
    let v: Vec<u8> = Vec::with_capacity(declared as usize);
    drop(v);
}
",
            ),
        ]);
        assert!(
            diags.iter().all(|d| !d.rule.starts_with("taint_")),
            "{diags:?}"
        );
    }

    #[test]
    fn test_paths_never_report_sinks() {
        let diags = run(&[
            ("crates/demo/src/wire.rs", WIRE_SRC),
            (
                "crates/demo/tests/e2e.rs",
                "
pub fn entry(buf: &mut Bytes) {
    let declared = read_len(buf);
    let v: Vec<u8> = Vec::with_capacity(declared as usize);
    drop(v);
}
",
            ),
        ]);
        assert!(
            diags.iter().all(|d| !d.rule.starts_with("taint_")),
            "{diags:?}"
        );
    }
}
