//! The seven conformance rules.
//!
//! Each rule walks the masked view produced by [`crate::scan`] and emits
//! [`Diagnostic`]s. Sites can be exempted with a justified directive:
//!
//! ```text
//! // bf-lint: allow(panic): board invariant — id was just allocated
//! ```
//!
//! The directive exempts its own line, or the following statement (the
//! next code line plus any method-chain continuation lines) when it
//! stands alone on a comment-only line. A directive without a
//! justification is itself a violation.

use std::collections::HashMap;

use crate::scan::SourceFile;

/// Rule identifiers, as they appear in directives and JSON output.
pub const RULES: &[&str] = &[
    "panic",
    "std_sync",
    "wall_clock",
    "lock_order",
    "lock_graph",
    "raw_sync",
    "wildcard_match",
    "unbounded_channel",
    "payload_copy",
    "directive",
];

/// Crates whose synchronization is instrumented through the bf-sync facade
/// (`bf_race::sync`): constructing raw primitives here bypasses the model
/// scheduler, so the `raw_sync` rule flags direct imports.
pub const INSTRUMENTED_CRATES: &[&str] = &[
    "crates/rpc/",
    "crates/devmgr/",
    "crates/remote/",
    "crates/fpga/",
    "crates/serverless/",
    "crates/cache/",
    "crates/registry/",
];

/// Where the lock hierarchy table lives; whole-program coverage findings
/// anchor here when no concrete site exists.
pub const LOCK_TABLE_MODULE: &str = "crates/devmgr/src/lock_order.rs";

/// Status enums whose `match`es must stay wildcard-free, so that adding a
/// state forces every consumer to take a position.
pub const STATUS_ENUMS: &[&str] = &["MachineState", "EventStatus"];

/// The one file allowed to read the host's clocks.
pub const CLOCK_MODULE: &str = "crates/model/src/clock.rs";

/// Datapath modules where payload bytes are refcounted `Bytes` end-to-end:
/// any byte copy here must be deliberate and justified.
pub const DATAPATH_MODULES: &[&str] = &[
    "crates/rpc/src/codec.rs",
    "crates/rpc/src/shm.rs",
    "crates/devmgr/src/session.rs",
    "crates/devmgr/src/task.rs",
    "crates/devmgr/src/worker.rs",
    "crates/fpga/src/memory.rs",
];

/// Receiver identifiers that hold payload bytes by workspace convention.
const PAYLOAD_IDENTS: &[&str] = &["payload", "data", "bytes", "body", "raw", "frame"];

/// One hop of an interprocedural call-chain witness (see [`crate::flow`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hop {
    /// Qualified function name (`Type::method` or a free `function`).
    pub function: String,
    /// Workspace-relative path of the hop.
    pub file: String,
    /// 1-based line (the function's signature, or the offending call for
    /// the final hop).
    pub line: usize,
}

/// One finding, pointing at a workspace-relative file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which rule fired: a stable id from [`RULES`] or
    /// [`crate::flow::FLOW_RULES`], as written in directives, JSON output,
    /// and baseline keys.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column of the offending token; 0 when unknown.
    pub column: usize,
    /// Human-readable explanation.
    pub message: String,
    /// Call-chain witness (entry → … → offending call) for interprocedural
    /// findings; empty for per-file rules.
    pub witness: Vec<Hop>,
    /// Line-number-free identity used for baseline matching; empty means
    /// "derive from rule/file/line".
    pub key: String,
}

impl Diagnostic {
    /// A finding with no column, witness, or baseline key (yet).
    pub fn new(rule: &'static str, file: &str, line: usize, message: String) -> Diagnostic {
        Diagnostic {
            rule,
            file: file.to_string(),
            line,
            column: 0,
            message,
            witness: Vec::new(),
            key: String::new(),
        }
    }

    /// Sets the 1-based column (builder style).
    pub fn at_column(mut self, column: usize) -> Diagnostic {
        self.column = column;
        self
    }

    /// The identity used when matching against a baseline: the explicit
    /// [`key`](Self::key) when one was assigned (interprocedural findings
    /// key on rule/file/function/token, so line drift cannot invalidate a
    /// baseline), else `rule|file|line`.
    pub fn baseline_key(&self) -> String {
        if self.key.is_empty() {
            format!("{}|{}|{}", self.rule, self.file, self.line)
        } else {
            self.key.clone()
        }
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.column > 0 {
            write!(
                f,
                "{}:{}:{}: [{}] {}",
                self.file, self.line, self.column, self.rule, self.message
            )?;
        } else {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.file, self.line, self.rule, self.message
            )?;
        }
        for (i, hop) in self.witness.iter().enumerate() {
            let role = if i == 0 { "entry" } else { "via" };
            write!(
                f,
                "\n    {role} {} at {}:{}",
                hop.function, hop.file, hop.line
            )?;
        }
        Ok(())
    }
}

/// Parsed allow directives of one file: line → exempted rules.
pub(crate) struct Allows {
    by_line: HashMap<usize, Vec<String>>,
}

impl Allows {
    pub(crate) fn permits(&self, line: usize, rule: &str) -> bool {
        self.by_line
            .get(&line)
            .is_some_and(|rules| rules.iter().any(|r| r == rule))
    }
}

/// Both directive families of one file, collected in a single pass so the
/// per-file rules, the whole-program lock-graph pass, and the bf-flow
/// passes all share one parse.
pub(crate) struct Directives {
    /// Justified `bf-lint` allow exemptions.
    pub(crate) lint: Allows,
    /// Justified `bf-flow` allow exemptions.
    pub(crate) flow: Allows,
    /// Justified `bf-taint` allow exemptions.
    pub(crate) taint: Allows,
    /// Lines covered by a justified `bf-taint: sanitized(<why>)` marker:
    /// bindings there are trusted and sinks there do not fire.
    pub(crate) sanitized: std::collections::HashSet<usize>,
}

/// One parsed file plus its directive model: the unit every pass consumes.
/// Built once per file by [`Unit::analyze`]; nothing downstream re-parses.
pub struct Unit {
    /// The masked source model.
    pub file: SourceFile,
    pub(crate) dirs: Directives,
}

impl Unit {
    /// Parses both directive families, emitting `directive` diagnostics
    /// for malformed, unknown-rule, or unjustified forms.
    pub fn analyze(file: SourceFile, out: &mut Vec<Diagnostic>) -> Unit {
        let lint = collect_allows(&file, "bf-lint: allow(", RULES, out);
        let flow = collect_allows(&file, "bf-flow: allow(", crate::flow::FLOW_RULES, out);
        let taint = collect_allows(&file, "bf-taint: allow(", crate::taint::TAINT_RULES, out);
        let sanitized = collect_sanitized(&file, out);
        Unit {
            file,
            dirs: Directives {
                lint,
                flow,
                taint,
                sanitized,
            },
        }
    }
}

/// Collects one directive family, validating that each carries a
/// justification and names a known rule. Diagnostics about a directive
/// (unknown rule, missing justification) anchor at the directive's own
/// file:line and column — never at the site it would have exempted.
fn collect_allows(
    file: &SourceFile,
    marker: &str,
    known_rules: &[&str],
    out: &mut Vec<Diagnostic>,
) -> Allows {
    let family = marker.trim_end_matches(": allow(");
    let mut by_line = HashMap::new();
    for (idx, line) in file.lines.iter().enumerate() {
        // Directives live in comments only (the comment view blanks string
        // literals), and backtick-quoted mentions are prose, not directives.
        let Some(pos) = line.comment.find(marker) else {
            continue;
        };
        if pos > 0 && line.comment.as_bytes()[pos - 1] == b'`' {
            continue;
        }
        let rest = &line.comment[pos + marker.len()..];
        let Some(close) = rest.find(')') else {
            out.push(
                Diagnostic::new(
                    "directive",
                    &file.path,
                    idx + 1,
                    format!("malformed {family} directive: missing `)`"),
                )
                .at_column(pos + 1),
            );
            continue;
        };
        // A directive may name several rules: `allow(panic, wall_clock)`.
        // Unknown names are reported individually; the known ones still
        // take effect so one typo cannot silently unguard its neighbours.
        let mut rules = Vec::new();
        for rule in rest[..close].split(',') {
            let rule = rule.trim().to_string();
            if known_rules.contains(&rule.as_str()) {
                rules.push(rule);
            } else {
                out.push(
                    Diagnostic::new(
                        "directive",
                        &file.path,
                        idx + 1,
                        format!("unknown rule {rule:?} in {family} directive"),
                    )
                    .at_column(pos + 1),
                );
            }
        }
        if rules.is_empty() {
            continue;
        }
        let justification = rest[close + 1..]
            .trim_start_matches([':', '-', '—', ' '])
            .trim();
        if justification.is_empty() {
            let listed = rules.join(", ");
            out.push(
                Diagnostic::new(
                    "directive",
                    &file.path,
                    idx + 1,
                    format!(
                        "{family}: allow({listed}) needs a justification, e.g. \
                         `// {family}: allow({listed}): why this site is safe`"
                    ),
                )
                .at_column(pos + 1),
            );
            continue;
        }
        for covered in bound_lines(file, idx) {
            by_line
                .entry(covered)
                .or_insert_with(Vec::new)
                .extend(rules.iter().cloned());
        }
    }
    Allows { by_line }
}

/// The 1-based lines a directive on (0-based) line `idx` covers.
///
/// A comment-only directive exempts the next *statement*: the first code
/// line after the directive (the justification may span further
/// comment-only lines) plus its method-chain continuation lines, so
/// rustfmt splitting `x.expect(..)` across lines cannot detach the
/// exemption. A trailing directive exempts its own line. A dangling
/// directive at EOF covers nothing.
fn bound_lines(file: &SourceFile, idx: usize) -> Vec<usize> {
    let line = &file.lines[idx];
    if !line.code.trim().is_empty() {
        return vec![idx + 1];
    }
    let Some(offset) = file.lines[idx + 1..]
        .iter()
        .position(|l| !l.code.trim().is_empty())
    else {
        return Vec::new();
    };
    let first = idx + 1 + offset;
    let mut out = vec![first + 1];
    for (l, cont) in file.lines.iter().enumerate().skip(first + 1) {
        let code = cont.code.trim_start();
        if !(code.starts_with('.') || code.starts_with('?')) {
            break;
        }
        out.push(l + 1);
    }
    out
}

/// Collects `bf-taint: sanitized(<why>)` markers: the justification lives
/// *inside* the parentheses, and an empty one is itself a `directive`
/// error — a trust decision with no recorded reason is unreviewable.
fn collect_sanitized(
    file: &SourceFile,
    out: &mut Vec<Diagnostic>,
) -> std::collections::HashSet<usize> {
    const MARKER: &str = "bf-taint: sanitized(";
    let mut lines = std::collections::HashSet::new();
    for (idx, line) in file.lines.iter().enumerate() {
        let Some(pos) = line.comment.find(MARKER) else {
            continue;
        };
        if pos > 0 && line.comment.as_bytes()[pos - 1] == b'`' {
            continue;
        }
        let rest = &line.comment[pos + MARKER.len()..];
        let Some(close) = rest.rfind(')') else {
            out.push(
                Diagnostic::new(
                    "directive",
                    &file.path,
                    idx + 1,
                    "malformed bf-taint sanitized directive: missing `)`".to_string(),
                )
                .at_column(pos + 1),
            );
            continue;
        };
        let why = rest[..close].trim();
        if why.is_empty() {
            out.push(
                Diagnostic::new(
                    "directive",
                    &file.path,
                    idx + 1,
                    "bf-taint: sanitized(..) needs a justification inside the parentheses, \
                     e.g. `// bf-taint: sanitized(len is clamped to the shm segment cap)`"
                        .to_string(),
                )
                .at_column(pos + 1),
            );
            continue;
        }
        // An unjustified marker must not clear taint: only the justified
        // form reaches this point and takes effect.
        lines.extend(bound_lines(file, idx));
    }
    lines
}

/// Runs every per-file rule over a parsed unit, appending findings to
/// `out`. Directive diagnostics were already emitted by [`Unit::analyze`].
pub fn check_file(unit: &Unit, lock_hierarchy: &[&str], out: &mut Vec<Diagnostic>) {
    let file = &unit.file;
    let allows = &unit.dirs.lint;
    rule_panic(file, allows, out);
    rule_std_sync(file, allows, out);
    rule_wall_clock(file, allows, out);
    rule_lock_order(file, lock_hierarchy, allows, out);
    rule_raw_sync(file, allows, out);
    rule_wildcard_match(file, allows, out);
    rule_unbounded_channel(file, allows, out);
    rule_payload_copy(file, allows, out);
}

/// Rule `raw_sync`: inside [`INSTRUMENTED_CRATES`] every lock, condvar,
/// atomic and channel goes through the bf-sync facade (`crate::sync`,
/// re-exported from `bf-race`), so the whole crate runs under the model
/// scheduler. Importing the raw primitives bypasses every yield point the
/// checker relies on; the import line is the gateway that must be
/// justified.
fn rule_raw_sync(file: &SourceFile, allows: &Allows, out: &mut Vec<Diagnostic>) {
    if !INSTRUMENTED_CRATES.iter().any(|p| file.path.starts_with(p)) {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        let hit = if code.contains("use parking_lot") || code.contains("parking_lot::") {
            code.find("parking_lot")
                .map(|p| ("parking_lot primitive", p))
        } else if let Some(p) = code.find("std::sync::atomic") {
            Some(("std::sync atomic", p))
        } else if code.contains("use crossbeam") || code.contains("crossbeam::channel") {
            code.find("crossbeam").map(|p| ("crossbeam channel", p))
        } else {
            None
        };
        let Some((what, pos)) = hit else { continue };
        if allows.permits(idx + 1, "raw_sync") {
            continue;
        }
        out.push(
            Diagnostic::new(
                "raw_sync",
                &file.path,
                idx + 1,
                format!(
                    "{what} in an instrumented crate: route synchronization \
                     through the bf-sync facade (`crate::sync`) so the model \
                     scheduler sees it, or justify with \
                     `// bf-lint: allow(raw_sync): ...`"
                ),
            )
            .at_column(pos + 1),
        );
    }
}

/// The whole-program lock-graph pass (`lock_graph` rule): run once over
/// every parsed file, after the per-file rules.
///
/// Three checks:
///
/// 1. **No unranked locks** — every `Mutex`/`RwLock` field or parameter
///    declaration must use a name ranked in the hierarchy (or carry a
///    justified `allow(lock_graph)`), so a new lock cannot enter the
///    program without taking a position in the global order.
/// 2. **No static cycles** — `let`-bound acquisitions build a whole-program
///    lock-acquisition graph (`held → acquired` edges, by lock name,
///    across crates); any cycle is reported with its full path. This
///    catches opposite-order acquisitions split across files, which the
///    per-file `lock_order` rule cannot see for unranked locks.
/// 3. **Coverage** — every hierarchy entry must be observed as a declared
///    or acquired lock somewhere in the program, so the table cannot
///    accumulate stale names that the runtime tracker would still accept.
pub fn check_program(units: &[Unit], hierarchy: &[&str], out: &mut Vec<Diagnostic>) {
    use std::collections::BTreeMap;

    let ranked = |name: &str| hierarchy.contains(&name);
    let mut seen: Vec<String> = Vec::new();
    // (from, to) → first site, kept ordered for deterministic reports.
    let mut edges: BTreeMap<(String, String), (String, usize)> = BTreeMap::new();

    for unit in units {
        let file = &unit.file;
        // Directives were collected once by `Unit::analyze`.
        let allows = &unit.dirs.lint;

        let mut held: Vec<(String, i64)> = Vec::new();
        let mut depth: i64 = 0;
        for (idx, line) in file.lines.iter().enumerate() {
            let code = &line.code;
            if !line.in_test {
                // Check 1: declarations.
                if let Some(name) = declared_lock_name(code) {
                    if !seen.contains(&name.to_string()) {
                        seen.push(name.to_string());
                    }
                    if !ranked(name) && !allows.permits(idx + 1, "lock_graph") {
                        out.push(Diagnostic::new(
                            "lock_graph",
                            &file.path,
                            idx + 1,
                            format!(
                                "lock `{name}` is not ranked in the lock hierarchy: add it \
                                 to bf_devmgr::lock_order::HIERARCHY (or justify with \
                                 `// bf-lint: allow(lock_graph): ...`)"
                            ),
                        ));
                    }
                }

                // Check 2: acquisition edges.
                let mut acquired: Vec<&str> = Vec::new();
                for pos in find_all(code, ".lock()") {
                    if let Some(name) = ident_before(code, pos) {
                        acquired.push(name);
                    }
                }
                if code.contains("tracked(") {
                    if let Some(name) = tracked_lock_name(&line.raw, hierarchy) {
                        acquired.push(name);
                    }
                }
                let is_binding = code.trim_start().starts_with("let ");
                for name in acquired {
                    if !seen.contains(&name.to_string()) {
                        seen.push(name.to_string());
                    }
                    if !allows.permits(idx + 1, "lock_graph") {
                        for (h, _) in &held {
                            if h != name {
                                edges
                                    .entry((h.clone(), name.to_string()))
                                    .or_insert_with(|| (file.path.clone(), idx + 1));
                            }
                        }
                    }
                    if is_binding {
                        held.push((name.to_string(), depth));
                    }
                }
            }
            depth += line.brace_delta();
            held.retain(|&(_, d)| d <= depth);
        }
    }

    // Check 2: cycle detection over the name graph.
    for cycle in find_cycles(&edges) {
        let (file, line) = edges
            .get(&(cycle[0].clone(), cycle[1].clone()))
            .cloned()
            .unwrap_or_else(|| (LOCK_TABLE_MODULE.to_string(), 1));
        out.push(Diagnostic::new(
            "lock_graph",
            &file,
            line,
            format!(
                "static lock cycle across the program: {} — no single \
                 acquisition order can satisfy these sites",
                cycle.join(" -> "),
            ),
        ));
    }

    // Check 3: hierarchy coverage.
    for name in hierarchy {
        if !seen.iter().any(|s| s == name) {
            out.push(Diagnostic::new(
                "lock_graph",
                LOCK_TABLE_MODULE,
                1,
                format!(
                    "hierarchy entry `{name}` matches no declared or acquired lock \
                     in the program: remove the stale rank or fix the lock's name"
                ),
            ));
        }
    }
}

/// The field/parameter name of a `Mutex`/`RwLock` declaration on `code`,
/// if the line declares one: `name: ..Mutex<..` outside `let` bindings,
/// `use` imports, and single-line `fn` signatures.
fn declared_lock_name(code: &str) -> Option<&str> {
    let lock_pos = match (code.find("Mutex<"), code.find("RwLock<")) {
        (Some(a), Some(b)) => a.min(b),
        (Some(a), None) => a,
        (None, Some(b)) => b,
        (None, None) => return None,
    };
    let trimmed = code.trim_start();
    if trimmed.starts_with("let ")
        || trimmed.starts_with("use ")
        || trimmed.starts_with("impl")
        || trimmed.starts_with("trait ")
        || trimmed.starts_with("pub trait ")
        || code.contains("fn ")
    {
        return None;
    }
    // `name:` must precede the lock type, with `::` path separators skipped.
    let head = &code[..lock_pos];
    let colon = head
        .char_indices()
        .filter(|&(i, c)| {
            c == ':'
                && head.as_bytes().get(i + 1) != Some(&b':')
                && (i == 0 || head.as_bytes()[i - 1] != b':')
        })
        .map(|(i, _)| i)
        .next()?;
    ident_before(code, colon)
}

/// Every distinct cycle in the acquisition graph, as name paths ending at
/// their starting node (`a -> b -> a`). Deterministic: nodes are explored
/// in sorted order and each cycle is reported from its smallest node.
fn find_cycles(
    edges: &std::collections::BTreeMap<(String, String), (String, usize)>,
) -> Vec<Vec<String>> {
    use std::collections::{BTreeMap, BTreeSet};
    let mut graph: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        graph.entry(from).or_default().push(to);
    }
    let mut cycles: Vec<Vec<String>> = Vec::new();
    let mut done: BTreeSet<&str> = BTreeSet::new();
    for &start in graph.keys() {
        if done.contains(start) {
            continue;
        }
        // Iterative DFS from `start` carrying the path, recording any edge
        // back into the current path as a cycle.
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        let mut path: Vec<&str> = vec![start];
        while let Some((node, next)) = stack.pop() {
            let succs = graph.get(node).map(Vec::as_slice).unwrap_or(&[]);
            if next < succs.len() {
                stack.push((node, next + 1));
                let succ = succs[next];
                if let Some(at) = path.iter().position(|&n| n == succ) {
                    let mut cycle: Vec<String> = path[at..].iter().map(|s| s.to_string()).collect();
                    // Canonicalize: rotate so the smallest name leads.
                    let min = cycle
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, n)| n.as_str())
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    cycle.rotate_left(min);
                    cycle.push(cycle[0].clone());
                    if !cycles.contains(&cycle) {
                        cycles.push(cycle);
                    }
                } else if !done.contains(succ) {
                    path.push(succ);
                    stack.push((succ, 0));
                }
            } else {
                path.pop();
                done.insert(node);
            }
        }
    }
    cycles
}

/// Rule `panic`: no `.unwrap()` / `.expect(` in non-test code.
fn rule_panic(file: &SourceFile, allows: &Allows, out: &mut Vec<Diagnostic>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let hit = if let Some(p) = line.code.find(".unwrap()") {
            Some((".unwrap()", p))
        } else {
            line.code.find(".expect(").map(|p| (".expect(..)", p))
        };
        let Some((what, pos)) = hit else { continue };
        if allows.permits(idx + 1, "panic") {
            continue;
        }
        out.push(
            Diagnostic::new(
                "panic",
                &file.path,
                idx + 1,
                format!(
                    "{what} in library code: propagate the error or justify with \
                     `// bf-lint: allow(panic): ...`"
                ),
            )
            .at_column(pos + 1),
        );
    }
}

/// Rule `std_sync`: `std::sync::Mutex`/`RwLock` are banned — the workspace
/// standardizes on `parking_lot` (no poisoning to unwrap, const `new`).
fn rule_std_sync(file: &SourceFile, allows: &Allows, out: &mut Vec<Diagnostic>) {
    // Tracks a multi-line `use std::sync::{ ... };` group.
    let mut in_std_sync_use = false;
    for (idx, line) in file.lines.iter().enumerate() {
        let code = &line.code;
        let relevant = code.contains("std::sync::") || in_std_sync_use;
        if code.contains("use std::sync::") && !code.contains(';') {
            in_std_sync_use = true;
        } else if in_std_sync_use && code.contains(';') {
            in_std_sync_use = false;
        }
        if !relevant {
            continue;
        }
        let pos = find_keyword(code, "Mutex")
            .into_iter()
            .chain(find_keyword(code, "RwLock"))
            .min();
        let Some(pos) = pos else { continue };
        if allows.permits(idx + 1, "std_sync") {
            continue;
        }
        out.push(
            Diagnostic::new(
                "std_sync",
                &file.path,
                idx + 1,
                "std::sync lock detected: use parking_lot::{Mutex, RwLock} instead".to_string(),
            )
            .at_column(pos + 1),
        );
    }
}

/// Rule `wall_clock`: the host's clocks only tick inside the virtual-clock
/// module; everything else must take time from `VirtualClock`.
fn rule_wall_clock(file: &SourceFile, allows: &Allows, out: &mut Vec<Diagnostic>) {
    if file.path == CLOCK_MODULE {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        let code = &line.code;
        let hit = if let Some(p) = code.find("Instant::now") {
            Some(("Instant::now()", p))
        } else {
            code.find("SystemTime::now")
                .map(|p| ("SystemTime::now()", p))
        };
        let Some((what, pos)) = hit else { continue };
        if allows.permits(idx + 1, "wall_clock") {
            continue;
        }
        out.push(
            Diagnostic::new(
                "wall_clock",
                &file.path,
                idx + 1,
                format!("{what} outside {CLOCK_MODULE}: simulated code must use VirtualClock"),
            )
            .at_column(pos + 1),
        );
    }
}

/// Rule `lock_order`: within a function, a lock may only be acquired while
/// every held lock ranks strictly *earlier* in the declared hierarchy.
///
/// The scan is a heuristic: `let`-bound guards are assumed held until their
/// enclosing block closes; acquisitions without a `let` binding are treated
/// as statement-scoped temporaries. Cross-function nesting is covered by
/// the runtime tracker in `bf-devmgr::lock_order`.
fn rule_lock_order(
    file: &SourceFile,
    hierarchy: &[&str],
    allows: &Allows,
    out: &mut Vec<Diagnostic>,
) {
    let rank_of = |name: &str| hierarchy.iter().position(|&h| h == name);
    // (rank, depth the guard binding lives at)
    let mut held: Vec<(usize, i64)> = Vec::new();
    let mut depth: i64 = 0;

    for (idx, line) in file.lines.iter().enumerate() {
        let code = &line.code;

        // Find acquisitions on this line: `<name>.lock()` receivers plus
        // `lock_order::tracked(&..., "name")` (name read from the raw line,
        // since masking blanks string contents).
        let mut acquired: Vec<(&str, usize)> = Vec::new();
        for pos in find_all(code, ".lock()") {
            if let Some(name) = ident_before(code, pos) {
                acquired.push((name, pos - name.len()));
            }
        }
        if let Some(pos) = code.find("tracked(") {
            if let Some(name) = tracked_lock_name(&line.raw, hierarchy) {
                acquired.push((name, pos));
            }
        }

        let is_binding = code.trim_start().starts_with("let ");
        for (name, pos) in acquired {
            let Some(rank) = rank_of(name) else { continue };
            if let Some(&(top_rank, _)) = held.iter().max_by_key(|&&(r, _)| r) {
                if rank <= top_rank && !allows.permits(idx + 1, "lock_order") {
                    out.push(
                        Diagnostic::new(
                            "lock_order",
                            &file.path,
                            idx + 1,
                            format!(
                                "acquiring lock `{name}` (rank {rank}) while `{}` (rank \
                                 {top_rank}) is held; declared order is {hierarchy:?}",
                                hierarchy[top_rank],
                            ),
                        )
                        .at_column(pos + 1),
                    );
                }
            }
            if is_binding {
                held.push((rank, depth));
            }
        }

        depth += line.brace_delta();
        held.retain(|&(_, d)| d <= depth);
    }
}

/// Rule `unbounded_channel`: no `unbounded()` channel construction in
/// non-test code — every hot-path queue must be bounded so that overload
/// surfaces as explicit backpressure instead of unbounded buffering
/// behind a slow consumer. (Imports are fine; only constructions fire.)
fn rule_unbounded_channel(file: &SourceFile, allows: &Allows, out: &mut Vec<Diagnostic>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        let hit = find_keyword(code, "unbounded").into_iter().find(|&pos| {
            let after = code[pos + "unbounded".len()..].trim_start();
            after.starts_with('(') || after.starts_with("::<")
        });
        let Some(pos) = hit else { continue };
        if allows.permits(idx + 1, "unbounded_channel") {
            continue;
        }
        out.push(
            Diagnostic::new(
                "unbounded_channel",
                &file.path,
                idx + 1,
                "unbounded channel constructed in library code: use \
                 `bounded(depth)` so overload surfaces as backpressure, or \
                 justify with `// bf-lint: allow(unbounded_channel): ...`"
                    .to_string(),
            )
            .at_column(pos + 1),
        );
    }
}

/// Rule `payload_copy`: inside [`DATAPATH_MODULES`] the payload travels as
/// refcounted `Bytes` — `.to_vec()` (always a byte copy) and `.clone()` on
/// a payload-named receiver are flagged so every copy on the hot path is a
/// conscious, justified decision. Copies that must stay (e.g. copy-on-write
/// materialization) carry an allow directive and call
/// `bf_metrics::record_memcpy` so the datapath benchmark accounts for them.
fn rule_payload_copy(file: &SourceFile, allows: &Allows, out: &mut Vec<Diagnostic>) {
    if !DATAPATH_MODULES.contains(&file.path.as_str()) {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        let hit = if let Some(p) = code.find(".to_vec()") {
            Some((".to_vec()", p))
        } else {
            find_all(code, ".clone()")
                .into_iter()
                .find(|&pos| ident_before(code, pos).is_some_and(|id| PAYLOAD_IDENTS.contains(&id)))
                .map(|p| (".clone() on a payload value", p))
        };
        let Some((what, pos)) = hit else { continue };
        if allows.permits(idx + 1, "payload_copy") {
            continue;
        }
        out.push(
            Diagnostic::new(
                "payload_copy",
                &file.path,
                idx + 1,
                format!(
                    "{what} in a datapath module: pass `Bytes`/`Payload` slices or \
                     `share()` the buffer; a deliberate copy must call \
                     `bf_metrics::record_memcpy` and justify with \
                     `// bf-lint: allow(payload_copy): ...`"
                ),
            )
            .at_column(pos + 1),
        );
    }
}

/// Rule `wildcard_match`: `match`es over the status enums in
/// [`STATUS_ENUMS`] must list every variant — a `_` arm would silently
/// swallow states added later.
fn rule_wildcard_match(file: &SourceFile, allows: &Allows, out: &mut Vec<Diagnostic>) {
    // Work over the full masked text with a line-number map.
    let mut text = String::new();
    let mut line_starts = Vec::with_capacity(file.lines.len());
    for line in &file.lines {
        line_starts.push(text.len());
        text.push_str(&line.code);
        text.push('\n');
    }
    let line_of = |offset: usize| match line_starts.binary_search(&offset) {
        Ok(i) => i + 1,
        Err(i) => i,
    };

    for match_pos in find_keyword(&text, "match") {
        let Some(open) = text[match_pos..].find('{').map(|p| match_pos + p) else {
            continue;
        };
        let Some(close) = matching_brace(&text, open) else {
            continue;
        };
        let block = &text[open + 1..close];
        // Only depth-≤1 text counts as *this* match's patterns and inline
        // arms; nested blocks are scanned as their own matches.
        let surface = surface_text(block);
        if !STATUS_ENUMS
            .iter()
            .any(|e| surface.contains(&format!("{e}::")))
        {
            continue;
        }
        for arm_offset in wildcard_arms(block) {
            let offset = open + 1 + arm_offset;
            let line = line_of(offset);
            if allows.permits(line, "wildcard_match") {
                continue;
            }
            let column = offset - line_starts.get(line - 1).copied().unwrap_or(offset) + 1;
            out.push(
                Diagnostic::new(
                    "wildcard_match",
                    &file.path,
                    line,
                    "wildcard `_` arm in a match over a status enum: list every \
                     variant so new states cannot be silently ignored"
                        .to_string(),
                )
                .at_column(column),
            );
        }
    }
}

/// Byte offsets of every occurrence of `needle` in `haystack`.
pub(crate) fn find_all(haystack: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = haystack[from..].find(needle) {
        out.push(from + pos);
        from += pos + needle.len();
    }
    out
}

/// Occurrences of `word` bounded by non-identifier characters.
pub(crate) fn find_keyword(text: &str, word: &str) -> Vec<usize> {
    find_all(text, word)
        .into_iter()
        .filter(|&pos| {
            let before_ok = pos == 0
                || !text[..pos]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_');
            let after = text[pos + word.len()..].chars().next();
            let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
            before_ok && after_ok
        })
        .collect()
}

/// The identifier immediately preceding byte offset `pos` (e.g. the
/// receiver of a `.lock()` call).
pub(crate) fn ident_before(code: &str, pos: usize) -> Option<&str> {
    let bytes = code.as_bytes();
    let mut start = pos;
    while start > 0 {
        let b = bytes[start - 1];
        if b.is_ascii_alphanumeric() || b == b'_' {
            start -= 1;
        } else {
            break;
        }
    }
    (start < pos).then(|| &code[start..pos])
}

/// Extracts the lock name from a `tracked(&..., "name")` call on a raw
/// line, returning the canonical `&'static str` from the hierarchy table.
pub(crate) fn tracked_lock_name<'h>(raw: &str, hierarchy: &[&'h str]) -> Option<&'h str> {
    let pos = raw.find("tracked(")?;
    let rest = &raw[pos..];
    let quote = rest.find('"')?;
    let after = &rest[quote + 1..];
    let end = after.find('"')?;
    let name = &after[..end];
    hierarchy.iter().find(|&&h| h == name).copied()
}

/// Byte offset (within `text`) of the `}` matching the `{` at `open`.
fn matching_brace(text: &str, open: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (i, b) in text.bytes().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// `block` with every nested brace-block's contents blanked: what remains
/// is the match's own patterns and brace-less arm bodies.
fn surface_text(block: &str) -> String {
    let mut depth = 0i64;
    block
        .chars()
        .map(|c| match c {
            '{' => {
                depth += 1;
                c
            }
            '}' => {
                depth -= 1;
                c
            }
            '\n' => c,
            _ if depth > 0 => ' ',
            _ => c,
        })
        .collect()
}

/// Byte offsets (within `block`) of arms whose pattern is a bare `_`.
fn wildcard_arms(block: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let bytes = block.as_bytes();
    let mut depth = 0i64;
    // Start of block counts as an arm boundary.
    let mut at_arm_start = true;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'{' | b'(' | b'[' => depth += 1,
            b'}' | b')' | b']' => {
                depth -= 1;
                // A closing brace back at arm level ends a block-bodied arm.
                if b == b'}' && depth == 0 {
                    at_arm_start = true;
                    i += 1;
                    continue;
                }
            }
            b',' if depth == 0 => {
                at_arm_start = true;
                i += 1;
                continue;
            }
            _ => {}
        }
        if at_arm_start && !b.is_ascii_whitespace() {
            at_arm_start = false;
            if b == b'_' {
                let after = bytes.get(i + 1);
                let standalone = !after.is_some_and(|&a| a.is_ascii_alphanumeric() || a == b'_');
                if standalone {
                    out.push(i);
                }
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::parse;

    fn check_at(path: &str, src: &str, hierarchy: &[&str]) -> Vec<Diagnostic> {
        let file = parse(path, src, false);
        let mut out = Vec::new();
        let unit = Unit::analyze(file, &mut out);
        check_file(&unit, hierarchy, &mut out);
        out
    }

    fn check(src: &str) -> Vec<Diagnostic> {
        check_at("crates/x/src/lib.rs", src, &["outer", "inner"])
    }

    #[test]
    fn flags_unwrap_in_library_code() {
        let out = check("fn f() { x().unwrap(); }\n");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "panic");
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn ignores_unwrap_in_tests_and_comments() {
        let src = "// x.unwrap()\n#[cfg(test)]\nmod tests {\n fn t() { x().unwrap(); }\n}\n";
        assert!(check(src).is_empty());
    }

    #[test]
    fn unwrap_or_variants_do_not_fire() {
        let src = "fn f() { a.unwrap_or(0); b.unwrap_or_else(|| 0); c.unwrap_or_default(); }\n";
        assert!(check(src).is_empty());
    }

    #[test]
    fn justified_allow_exempts_next_line() {
        let src = "// bf-lint: allow(panic): checked two lines up\nfn f() { x().unwrap(); }\n";
        assert!(check(src).is_empty());
    }

    #[test]
    fn standalone_allow_covers_a_rustfmt_split_chain() {
        // rustfmt may break `x.expect(..)` onto a continuation line; the
        // directive must keep covering the whole statement.
        let src = "fn f() {\n // bf-lint: allow(panic): harness invariant\n // spanning two comment lines.\n let v = build()\n .step()\n .expect(\"ok\");\n}\n";
        assert!(check(src).is_empty(), "{:?}", check(src));
    }

    #[test]
    fn allow_does_not_leak_past_the_statement() {
        let src = "fn f() {\n // bf-lint: allow(panic): first only\n a().expect(\"ok\");\n b().expect(\"not covered\");\n}\n";
        let out = check(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "panic");
        assert_eq!(out[0].line, 4);
    }

    #[test]
    fn unjustified_allow_is_a_violation() {
        let src = "fn f() { x().unwrap() } // bf-lint: allow(panic)\n";
        let out = check(src);
        // The malformed directive is reported AND does not exempt the site.
        assert_eq!(out.len(), 2, "{out:?}");
        assert_eq!(out[0].rule, "directive");
        assert_eq!(out[1].rule, "panic");
    }

    #[test]
    fn flags_std_sync_locks_but_not_arc() {
        let out = check("use std::sync::{Arc, Mutex};\n");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "std_sync");
        assert!(check("use std::sync::Arc;\nuse std::sync::atomic::AtomicU64;\n").is_empty());
    }

    #[test]
    fn flags_wall_clock_outside_clock_module() {
        let out = check("fn f() { let t = std::time::Instant::now(); }\n");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "wall_clock");
        let ok = check_at(
            CLOCK_MODULE,
            "fn f() { let t = std::time::Instant::now(); }\n",
            &[],
        );
        assert!(ok.is_empty());
    }

    #[test]
    fn flags_inverted_lock_acquisition() {
        let src = "fn f() {\n let a = inner.lock();\n let b = outer.lock();\n}\n";
        let out = check(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "lock_order");
        assert_eq!(out[0].line, 3);
    }

    #[test]
    fn in_order_and_sequential_acquisitions_pass() {
        let ordered = "fn f() {\n let a = outer.lock();\n let b = inner.lock();\n}\n";
        assert!(check(ordered).is_empty());
        let sequential = "fn f() {\n { let a = inner.lock(); }\n { let b = outer.lock(); }\n}\n";
        assert!(check(sequential).is_empty());
    }

    #[test]
    fn tracked_acquisitions_are_rank_checked() {
        let src = "fn f() {\n let a = inner.lock();\n let b = tracked(&m.outer, \"outer\");\n}\n";
        let out = check(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "lock_order");
    }

    #[test]
    fn flags_wildcard_match_on_status_enum() {
        let src = "fn f(s: MachineState) -> u8 {\n match s {\n  MachineState::Init => 0,\n  _ => 1,\n }\n}\n";
        let out = check(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "wildcard_match");
        assert_eq!(out[0].line, 4);
    }

    #[test]
    fn wildcard_on_other_enums_is_fine() {
        let src = "fn f(x: u8) -> u8 {\n match x {\n  0 => 0,\n  _ => 1,\n }\n}\n";
        assert!(check(src).is_empty());
    }

    #[test]
    fn nested_match_does_not_taint_outer() {
        let src = "fn f(x: u8, s: MachineState) -> u8 {\n match x {\n  0 => { match s { MachineState::Init => 0, MachineState::First => 1, MachineState::Buffer => 2, MachineState::Complete => 3, MachineState::Failed => 4 } }\n  _ => 1,\n }\n}\n";
        assert!(check(src).is_empty(), "{:?}", check(src));
    }

    #[test]
    fn flags_unbounded_channel_construction() {
        let out = check("fn f() { let (tx, rx) = unbounded(); }\n");
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "unbounded_channel");
        assert_eq!(out[0].line, 1);
        let turbofish = check("fn f() { let (tx, rx) = unbounded::<u64>(); }\n");
        assert_eq!(turbofish.len(), 1, "{turbofish:?}");
        assert_eq!(turbofish[0].rule, "unbounded_channel");
        let qualified = check("fn f() { let p = crossbeam::channel::unbounded(); }\n");
        assert_eq!(qualified.len(), 1, "{qualified:?}");
    }

    #[test]
    fn bounded_channels_and_imports_do_not_fire() {
        assert!(check("fn f() { let (tx, rx) = bounded(64); }\n").is_empty());
        // The import alone is not a construction site.
        assert!(check("use crossbeam::channel::{unbounded, Sender};\n").is_empty());
        // Identifiers merely containing the word are untouched.
        assert!(check("fn f() { unbounded_growth(); let x = my_unbounded(); }\n").is_empty());
    }

    #[test]
    fn unbounded_channels_are_allowed_in_tests_and_with_directives() {
        let in_test = "#[cfg(test)]\nmod tests {\n fn t() { let (tx, rx) = unbounded(); }\n}\n";
        assert!(check(in_test).is_empty(), "{:?}", check(in_test));
        let allowed = "fn f() {\n // bf-lint: allow(unbounded_channel): cold control path\n let (tx, rx) = unbounded();\n}\n";
        assert!(check(allowed).is_empty(), "{:?}", check(allowed));
    }

    fn check_datapath(src: &str) -> Vec<Diagnostic> {
        check_at("crates/rpc/src/shm.rs", src, &["outer", "inner"])
    }

    #[test]
    fn flags_to_vec_in_datapath_modules_only() {
        let src = "fn f(raw: &[u8]) -> Vec<u8> { raw.to_vec() }\n";
        let out = check_datapath(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "payload_copy");
        assert_eq!(out[0].line, 1);
        // The same code outside the datapath module list is fine.
        assert!(check(src).is_empty());
    }

    #[test]
    fn flags_clone_on_payload_named_receivers_only() {
        let out = check_datapath("fn f() { queue_op(data.clone()); }\n");
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "payload_copy");
        // Non-payload receivers (e.g. a metadata string) are untouched.
        assert!(check_datapath("fn f() { let n = name.clone(); }\n").is_empty());
    }

    #[test]
    fn payload_copies_are_allowed_in_tests_and_with_directives() {
        let in_test = "#[cfg(test)]\nmod tests {\n fn t() { let v = bytes.to_vec(); }\n}\n";
        assert!(
            check_datapath(in_test).is_empty(),
            "{:?}",
            check_datapath(in_test)
        );
        let allowed = "fn f() {\n // bf-lint: allow(payload_copy): CoW materialization, counted\n let v = bytes.to_vec();\n}\n";
        assert!(
            check_datapath(allowed).is_empty(),
            "{:?}",
            check_datapath(allowed)
        );
    }

    // --- directive parsing edge cases ---

    #[test]
    fn multi_rule_allow_lists_exempt_every_named_rule() {
        let src = "fn f() {\n // bf-lint: allow(panic, wall_clock): harness probe\n let t = Instant::now(); t.elapsed().unwrap();\n}\n";
        assert!(check(src).is_empty(), "{:?}", check(src));
    }

    #[test]
    fn unknown_rule_in_a_list_is_reported_but_known_ones_still_apply() {
        let src = "fn f() {\n // bf-lint: allow(panic, no_such_rule): reason\n x().unwrap();\n}\n";
        let out = check(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "directive");
        assert!(out[0].message.contains("no_such_rule"), "{out:?}");
    }

    #[test]
    fn unknown_rule_alone_is_reported_and_exempts_nothing() {
        let src = "fn f() {\n // bf-lint: allow(panics): typo\n x().unwrap();\n}\n";
        let out = check(src);
        assert_eq!(out.len(), 2, "{out:?}");
        assert_eq!(out[0].rule, "directive");
        assert_eq!(out[1].rule, "panic");
    }

    #[test]
    fn directive_on_the_last_line_of_a_file_is_harmless() {
        // Dangling directive at EOF: nothing to exempt, nothing to report.
        let src = "fn f() {}\n// bf-lint: allow(panic): trailing note\n";
        assert!(check(src).is_empty(), "{:?}", check(src));
    }

    // --- raw_sync ---

    fn check_instrumented(src: &str) -> Vec<Diagnostic> {
        check_at("crates/rpc/src/transport.rs", src, &["outer", "inner"])
    }

    #[test]
    fn raw_sync_flags_primitive_imports_in_instrumented_crates() {
        for (src, what) in [
            ("use parking_lot::Mutex;\n", "parking_lot"),
            ("use std::sync::atomic::AtomicU64;\n", "std::sync atomic"),
            ("use crossbeam::channel::bounded;\n", "crossbeam"),
        ] {
            let out = check_instrumented(src);
            assert_eq!(out.len(), 1, "{what}: {out:?}");
            assert_eq!(out[0].rule, "raw_sync");
        }
    }

    #[test]
    fn raw_sync_ignores_uninstrumented_crates_tests_and_allowed_sites() {
        // Same import outside the instrumented set: untouched.
        assert!(check("use parking_lot::Mutex;\n").is_empty());
        let in_test = "#[cfg(test)]\nmod tests {\n use parking_lot::Mutex;\n}\n";
        assert!(check_instrumented(in_test).is_empty());
        let allowed = "// bf-lint: allow(raw_sync): shared with uninstrumented crates\nuse parking_lot::Mutex;\n";
        assert!(check_instrumented(allowed).is_empty());
        // The facade itself is the sanctioned path.
        assert!(check_instrumented("use crate::sync::{Condvar, Mutex};\n").is_empty());
    }

    // --- lock_graph (whole-program) ---

    fn check_whole_program(sources: &[(&str, &str)], hierarchy: &[&str]) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let units: Vec<_> = sources
            .iter()
            .map(|(path, src)| Unit::analyze(parse(path, src, false), &mut Vec::new()))
            .collect();
        check_program(&units, hierarchy, &mut out);
        out
    }

    #[test]
    fn lock_graph_rejects_an_unranked_lock_declaration() {
        let src = "struct S {\n outer: Mutex<u32>,\n rogue: Mutex<u32>,\n}\nfn f(s: &S) { let a = s.outer.lock(); let b = s.inner.lock(); }\n";
        let out = check_whole_program(&[("crates/x/src/lib.rs", src)], &["outer", "inner"]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "lock_graph");
        assert_eq!(out[0].line, 3);
        assert!(out[0].message.contains("`rogue`"), "{out:?}");
    }

    #[test]
    fn lock_graph_accepts_an_allowed_unranked_lock() {
        let src = "struct S {\n outer: Mutex<u32>,\n // bf-lint: allow(lock_graph): scheduler-internal slot\n scratch: Mutex<u32>,\n}\nfn f(s: &S) { let a = s.outer.lock(); let b = s.inner.lock(); }\n";
        let out = check_whole_program(&[("crates/x/src/lib.rs", src)], &["outer", "inner"]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn lock_graph_rejects_a_two_lock_static_cycle_across_files() {
        // File A takes outer then inner; file B takes inner then outer.
        // Neither file alone violates anything the per-file heuristic can
        // rank (the locks are unranked but allowed); the program-wide
        // acquisition graph still has the a→b→a cycle.
        let a = "struct S {\n // bf-lint: allow(lock_graph): fixture\n a: Mutex<u32>,\n // bf-lint: allow(lock_graph): fixture\n b: Mutex<u32>,\n}\nfn f(s: &S) {\n let g = s.a.lock();\n let h = s.b.lock();\n}\n";
        let b = "fn g(s: &S) {\n let h = s.b.lock();\n let g = s.a.lock();\n}\n";
        let out = check_whole_program(&[("crates/x/src/a.rs", a), ("crates/x/src/b.rs", b)], &[]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "lock_graph");
        assert!(out[0].message.contains("a -> b -> a"), "{out:?}");
    }

    #[test]
    fn lock_graph_consistent_cross_file_order_is_clean() {
        let a = "fn f(s: &S) {\n let g = s.outer.lock();\n let h = s.inner.lock();\n}\n";
        let b = "fn g(s: &S) {\n let g = s.outer.lock();\n let h = s.inner.lock();\n}\nstruct S {\n outer: Mutex<u32>,\n inner: Mutex<u32>,\n}\n";
        let out = check_whole_program(
            &[("crates/x/src/a.rs", a), ("crates/x/src/b.rs", b)],
            &["outer", "inner"],
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn lock_graph_reports_stale_hierarchy_entries() {
        let src = "struct S {\n outer: Mutex<u32>,\n}\nfn f(s: &S) { let a = s.outer.lock(); }\n";
        let out = check_whole_program(&[("crates/x/src/lib.rs", src)], &["outer", "ghost_lock"]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "lock_graph");
        assert!(out[0].message.contains("`ghost_lock`"), "{out:?}");
        assert_eq!(out[0].file, LOCK_TABLE_MODULE);
    }

    #[test]
    fn raw_sync_covers_the_serverless_crate() {
        // The batching pipeline's queue lock + condvar live in
        // crates/serverless; a raw primitive import there bypasses the
        // model scheduler exactly like it would in the transport.
        let out = check_at(
            "crates/serverless/src/batch.rs",
            "use parking_lot::Condvar;\n",
            &[],
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "raw_sync");
    }

    #[test]
    fn lock_graph_accepts_a_ranked_condvar_queue() {
        // The batcher shape: a ranked queue lock whose guard is passed to
        // a condvar wait in a loop. The wait must not register as an
        // acquisition edge (no `.lock()` receiver), so re-locking the map
        // lock elsewhere stays cycle-free.
        let batcher = "struct Batcher {\n batch_state: Mutex<Q>,\n ready: Condvar,\n}\nfn next(b: &Batcher) {\n let mut state = b.batch_state.lock();\n loop {\n  b.ready.wait(&mut state);\n }\n}\n";
        let gateway = "fn drain(g: &G, b: &Batcher) {\n let functions = g.functions.lock();\n drop(functions);\n let s = b.batch_state.lock();\n}\nstruct G {\n functions: Mutex<u32>,\n}\n";
        let out = check_whole_program(
            &[
                ("crates/x/src/batch.rs", batcher),
                ("crates/x/src/gateway.rs", gateway),
            ],
            &["functions", "batch_state"],
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn lock_graph_ignores_declarations_in_test_code() {
        let src = "#[cfg(test)]\nmod tests {\n struct T {\n  rogue: Mutex<u32>,\n }\n}\n";
        let out = check_whole_program(&[("crates/x/src/lib.rs", src)], &[]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn binding_patterns_starting_with_underscore_are_not_wildcards() {
        let src = "fn f(s: MachineState) -> u8 {\n match s {\n  MachineState::Init => 0,\n  _other @ MachineState::First => 1,\n  MachineState::Buffer => 2,\n  MachineState::Complete => 3,\n  MachineState::Failed => 4,\n }\n}\n";
        assert!(check(src).is_empty(), "{:?}", check(src));
    }
}
