#![forbid(unsafe_code)]

//! # bf-lint — project-wide static conformance engine
//!
//! A lightweight line/token scanner (no rustc plumbing, no external
//! parsers) enforcing the workspace's concurrency and robustness
//! conventions over `crates/` and `tests/`:
//!
//! | rule | meaning |
//! |---|---|
//! | `panic` | no `.unwrap()` / `.expect()` in non-test library code |
//! | `std_sync` | `parking_lot` locks only — `std::sync::{Mutex, RwLock}` banned |
//! | `wall_clock` | `Instant::now()` / `SystemTime::now()` only in `crates/model/src/clock.rs` |
//! | `lock_order` | acquisitions must follow the declared lock hierarchy |
//! | `lock_graph` | whole-program: every lock ranked, no static acquisition cycle, hierarchy fully covered |
//! | `raw_sync` | instrumented crates use the bf-sync facade, not raw parking_lot/std/crossbeam primitives |
//! | `wildcard_match` | `match`es over status enums must not use `_` arms |
//! | `unbounded_channel` | no `unbounded()` queues in library code — bounded depths + backpressure |
//!
//! On top of the per-file rules, the [`flow`] module runs **bf-flow**:
//! a workspace-wide call graph with reachability passes (`hot_blocking`,
//! `hot_alloc`, `hot_panic`, `error_drop`) seeded from
//! `// bf-flow: entry(<class>)` annotations on hot-path roots. Findings
//! carry call-chain witnesses and are gated against a checked-in
//! [`baseline`] (`lint-baseline.json`): pre-existing findings warn,
//! **new** findings fail.
//!
//! A third layer, [`taint`] (**bf-taint**), reuses the bf-flow call
//! graph for trust-boundary dataflow: values produced by the wire
//! decode surface (`// bf-taint: source(wire)` annotations plus
//! auto-seeded `decode`/`from_bytes` fns in `bf-rpc`) are tracked
//! through assignments, pattern bindings, and call edges into sensitive
//! sinks — allocation sizes, slice indexing and `split_to`-style buffer
//! math, loop bounds, and cache-admission / digest-authorization calls
//! (`taint_alloc`, `taint_index`, `taint_loop`, `taint_auth`).
//! Sanitizers (`.min(cap)` / `.clamp(..)`, server-side
//! `content_digest` recomputation, or a justified
//! `// bf-taint: sanitized(<why>)`) clear taint. The [`wire_schema`]
//! rule additionally pins the wire enums' released tag numbers against
//! the checked-in `wire-schema.json` snapshot (append-only evolution).
//!
//! Individual sites opt out with a justified directive comment:
//!
//! ```text
//! // bf-lint: allow(panic): poisoning is impossible — single writer
//! // bf-flow: allow(hot_alloc): bounded by max_pending_responses
//! // bf-taint: allow(taint_auth): the digest check IS the authorization
//! // bf-taint: sanitized(len is clamped to the shm segment cap)
//! ```
//!
//! The engine is exposed three ways: the `bf-lint` binary
//! (`cargo run -p bf-lint`, `--json` for machine-readable output,
//! `--explain <rule>` for rule docs), the `tests/lint_conformance.rs`
//! integration test (keeps `cargo test` the single gate), and this
//! library API.
//!
//! Each source file is parsed **once** into a [`rules::Unit`] (masked
//! line model + directive tables) shared by every per-file rule, the
//! lock-graph pass, and all four bf-flow passes; the `--json` summary
//! reports the wall time of the whole scan.
//!
//! The lock hierarchy is imported from [`bf_devmgr::lock_order`], the same
//! table the runtime held-lock tracker enforces in debug builds — one
//! source of truth for both enforcement layers.

use std::fs;
use std::path::{Path, PathBuf};

pub mod baseline;
pub mod explain;
pub mod flow;
pub mod rules;
pub mod scan;
pub mod taint;
pub mod wire_schema;

pub use flow::{EntryPoint, ENTRY_CLASSES, FLOW_RULES};
pub use rules::{Diagnostic, Hop, Unit, CLOCK_MODULE, RULES, STATUS_ENUMS};
pub use taint::TAINT_RULES;
pub use wire_schema::WIRE_SCHEMA_RULE;

/// The declared lock-acquisition hierarchy (re-exported from the runtime
/// tracker so the two layers can never drift apart).
pub use bf_devmgr::lock_order::HIERARCHY as LOCK_HIERARCHY;

/// Outcome of a whole-tree scan.
#[derive(Debug)]
pub struct Report {
    /// Findings across all scanned files, in path order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Wall time of the scan (parse + all rules + all flow passes).
    pub wall_ms: f64,
    /// Resolved `bf-flow: entry(..)` annotations, in path order.
    pub entries: Vec<EntryPoint>,
}

impl Report {
    /// Whether the tree is conformant.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Machine-readable form, stable for CI consumption.
    pub fn to_json(&self) -> serde_json::Value {
        self.render_json(None)
    }

    /// Machine-readable form with baseline gating applied: `ok` reflects
    /// only **new** findings, and the document carries the gated split.
    pub fn to_json_gated(&self, gated: &baseline::Gated) -> serde_json::Value {
        self.render_json(Some(gated))
    }

    fn render_json(&self, gated: Option<&baseline::Gated>) -> serde_json::Value {
        let ok = gated.map_or(self.is_clean(), |g| g.new.is_empty());
        serde_json::json!({
            "ok": ok,
            "files_scanned": self.files_scanned,
            "lint_wall_ms": (self.wall_ms * 100.0).round() / 100.0,
            "entries": self
                .entries
                .iter()
                .map(|e| {
                    serde_json::json!({
                        "class": e.class,
                        "function": e.function,
                        "file": e.file,
                        "line": e.line,
                    })
                })
                .collect::<Vec<_>>(),
            "violations": self
                .diagnostics
                .iter()
                .map(diagnostic_json)
                .collect::<Vec<_>>(),
            "new_violations": gated
                .map(|g| g.new.iter().map(diagnostic_json).collect::<Vec<_>>())
                .unwrap_or_default(),
            "suppressed": gated.map_or(0, |g| g.suppressed),
            "stale_baseline": gated.map(|g| g.stale.clone()).unwrap_or_default(),
        })
    }
}

/// One diagnostic in the stable JSON shape (also used for baseline-gated
/// subsets).
pub fn diagnostic_json(d: &Diagnostic) -> serde_json::Value {
    serde_json::json!({
        "rule": d.rule,
        "file": d.file,
        "line": d.line,
        "column": d.column,
        "message": d.message,
        "key": d.baseline_key(),
        "witness": d
            .witness
            .iter()
            .map(|h| {
                serde_json::json!({
                    "function": h.function,
                    "file": h.file,
                    "line": h.line,
                })
            })
            .collect::<Vec<_>>(),
    })
}

/// Scans one in-memory source file (used by rule unit tests and by tools
/// embedding the engine). Per-file rules only — bf-flow needs the whole
/// workspace.
pub fn check_source(path: &str, text: &str) -> Vec<Diagnostic> {
    let file = scan::parse(path, text, is_test_path(path));
    let mut out = Vec::new();
    let unit = rules::Unit::analyze(file, &mut out);
    rules::check_file(&unit, LOCK_HIERARCHY, &mut out);
    out
}

/// Scans the workspace rooted at `root` (`crates/` and `tests/`): per-file
/// rules, the whole-program lock-graph pass, and all four bf-flow passes,
/// over a single shared parse.
///
/// # Errors
///
/// Returns an I/O description when the tree cannot be read.
pub fn run(root: &Path) -> Result<Report, String> {
    // bf-lint: allow(wall_clock): lint tooling self-timing, not simulation state
    let started = std::time::Instant::now();
    let mut files = Vec::new();
    for top in ["crates", "tests"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rust_files(&dir, &mut files)?;
        }
    }
    if files.is_empty() {
        // A wrong --root must not read as a clean workspace.
        return Err(format!(
            "no Rust sources found under {} — is this a workspace root?",
            root.display()
        ));
    }
    files.sort();

    let mut diagnostics = Vec::new();
    let files_scanned = files.len();
    // Parse once: every rule family reuses the same masked line model.
    let mut units = Vec::with_capacity(files_scanned);
    for path in files {
        let text =
            fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let file = scan::parse(&rel, &text, is_test_path(&rel));
        units.push(rules::Unit::analyze(file, &mut diagnostics));
    }
    for unit in &units {
        rules::check_file(unit, LOCK_HIERARCHY, &mut diagnostics);
    }
    // The whole-program passes need every file at once: unranked-lock
    // declarations, cross-crate acquisition cycles, hierarchy coverage —
    // and the bf-flow call graph.
    rules::check_program(&units, LOCK_HIERARCHY, &mut diagnostics);
    let entries = flow::check(&units, LOCK_HIERARCHY, &mut diagnostics);
    // bf-taint rides the same parse and the bf-flow call graph; the
    // wire-schema gate diffs the decode surface against the snapshot.
    taint::check(&units, &mut diagnostics);
    wire_schema::check(&units, &root.join("wire-schema.json"), &mut diagnostics);
    Ok(Report {
        diagnostics,
        files_scanned,
        wall_ms: started.elapsed().as_secs_f64() * 1000.0,
        entries,
    })
}

/// Regenerates `<root>/wire-schema.json` from the decode surface.
/// Returns the number of wire enums captured.
///
/// # Errors
///
/// Returns an I/O description when the tree cannot be read, no wire
/// enums are found, or the snapshot cannot be written.
pub fn write_wire_schema(root: &Path) -> Result<usize, String> {
    let dir = root.join("crates");
    let mut files = Vec::new();
    if dir.is_dir() {
        collect_rust_files(&dir, &mut files)?;
    }
    files.sort();
    let mut scratch = Vec::new();
    let mut units = Vec::new();
    for path in files {
        let text =
            fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let file = scan::parse(&rel, &text, is_test_path(&rel));
        units.push(rules::Unit::analyze(file, &mut scratch));
    }
    let schema = wire_schema::extract(&units);
    if schema.is_empty() {
        return Err(format!(
            "no wire enums found under {} — is this a workspace root?",
            root.display()
        ));
    }
    let out = root.join("wire-schema.json");
    std::fs::write(&out, wire_schema::render(&schema))
        .map_err(|e| format!("write {}: {e}", out.display()))?;
    Ok(schema.len())
}

/// Whether every line of the file counts as test code (integration tests
/// and benches may panic freely).
fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/") || path.contains("/tests/") || path.contains("/benches/")
}

/// Recursively collects `.rs` files, skipping build output and VCS state.
fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == "vendor" {
                continue;
            }
            collect_rust_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Locates the workspace root: the nearest ancestor of `start` holding
/// both a `Cargo.toml` and a `crates/` directory.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d.to_path_buf());
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_paths_are_exempt_from_panic_rule() {
        assert!(check_source("tests/smoke.rs", "fn f() { x().unwrap(); }\n").is_empty());
        assert!(
            check_source("crates/bench/benches/fig4.rs", "fn f() { x().unwrap(); }\n").is_empty()
        );
        assert_eq!(
            check_source("crates/rpc/src/codec.rs", "fn f() { x().unwrap(); }\n").len(),
            1
        );
    }

    #[test]
    fn hierarchy_is_shared_with_the_runtime_tracker() {
        assert!(LOCK_HIERARCHY.contains(&"board"));
        assert!(LOCK_HIERARCHY.contains(&"shards"));
    }

    #[test]
    fn json_report_shape_is_stable() {
        let mut diag =
            Diagnostic::new("panic", "crates/x/src/lib.rs", 3, "m".to_string()).at_column(9);
        diag.witness = vec![Hop {
            function: "X::f".to_string(),
            file: "crates/x/src/lib.rs".to_string(),
            line: 1,
        }];
        let report = Report {
            diagnostics: vec![diag],
            files_scanned: 7,
            wall_ms: 12.345,
            entries: vec![EntryPoint {
                class: "poller".to_string(),
                function: "Poller::poll".to_string(),
                file: "crates/rpc/src/poller.rs".to_string(),
                line: 40,
            }],
        };
        let v = report.to_json();
        assert_eq!(v["ok"], false);
        assert_eq!(v["files_scanned"], 7u64);
        assert_eq!(v["lint_wall_ms"], 12.35);
        assert_eq!(v["entries"][0]["class"], "poller");
        assert_eq!(v["violations"][0]["rule"], "panic");
        assert_eq!(v["violations"][0]["line"], 3u64);
        assert_eq!(v["violations"][0]["column"], 9u64);
        assert_eq!(v["violations"][0]["key"], "panic|crates/x/src/lib.rs|3");
        assert_eq!(v["violations"][0]["witness"][0]["function"], "X::f");
    }
}
