#![forbid(unsafe_code)]

//! # bf-lint — project-wide static conformance engine
//!
//! A lightweight line/token scanner (no rustc plumbing, no external
//! parsers) enforcing the workspace's concurrency and robustness
//! conventions over `crates/` and `tests/`:
//!
//! | rule | meaning |
//! |---|---|
//! | `panic` | no `.unwrap()` / `.expect()` in non-test library code |
//! | `std_sync` | `parking_lot` locks only — `std::sync::{Mutex, RwLock}` banned |
//! | `wall_clock` | `Instant::now()` / `SystemTime::now()` only in `crates/model/src/clock.rs` |
//! | `lock_order` | acquisitions must follow the declared lock hierarchy |
//! | `lock_graph` | whole-program: every lock ranked, no static acquisition cycle, hierarchy fully covered |
//! | `raw_sync` | instrumented crates use the bf-sync facade, not raw parking_lot/std/crossbeam primitives |
//! | `wildcard_match` | `match`es over status enums must not use `_` arms |
//! | `unbounded_channel` | no `unbounded()` queues in library code — bounded depths + backpressure |
//!
//! Individual sites opt out with a justified directive comment:
//!
//! ```text
//! // bf-lint: allow(panic): poisoning is impossible — single writer
//! ```
//!
//! The engine is exposed three ways: the `bf-lint` binary
//! (`cargo run -p bf-lint`, `--json` for machine-readable output), the
//! `tests/lint_conformance.rs` integration test (keeps `cargo test` the
//! single gate), and this library API.
//!
//! The lock hierarchy is imported from [`bf_devmgr::lock_order`], the same
//! table the runtime held-lock tracker enforces in debug builds — one
//! source of truth for both enforcement layers.

use std::fs;
use std::path::{Path, PathBuf};

pub mod rules;
pub mod scan;

pub use rules::{Diagnostic, CLOCK_MODULE, RULES, STATUS_ENUMS};

/// The declared lock-acquisition hierarchy (re-exported from the runtime
/// tracker so the two layers can never drift apart).
pub use bf_devmgr::lock_order::HIERARCHY as LOCK_HIERARCHY;

/// Outcome of a whole-tree scan.
#[derive(Debug)]
pub struct Report {
    /// Findings across all scanned files, in path order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the tree is conformant.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Machine-readable form, stable for CI consumption.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "ok": self.is_clean(),
            "files_scanned": self.files_scanned,
            "violations": self
                .diagnostics
                .iter()
                .map(|d| {
                    serde_json::json!({
                        "rule": d.rule,
                        "file": d.file,
                        "line": d.line,
                        "message": d.message,
                    })
                })
                .collect::<Vec<_>>(),
        })
    }
}

/// Scans one in-memory source file (used by rule unit tests and by tools
/// embedding the engine).
pub fn check_source(path: &str, text: &str) -> Vec<Diagnostic> {
    let file = scan::parse(path, text, is_test_path(path));
    let mut out = Vec::new();
    rules::check_file(&file, LOCK_HIERARCHY, &mut out);
    out
}

/// Scans the workspace rooted at `root` (`crates/` and `tests/`).
///
/// # Errors
///
/// Returns an I/O description when the tree cannot be read.
pub fn run(root: &Path) -> Result<Report, String> {
    let mut files = Vec::new();
    for top in ["crates", "tests"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rust_files(&dir, &mut files)?;
        }
    }
    if files.is_empty() {
        // A wrong --root must not read as a clean workspace.
        return Err(format!(
            "no Rust sources found under {} — is this a workspace root?",
            root.display()
        ));
    }
    files.sort();

    let mut diagnostics = Vec::new();
    let files_scanned = files.len();
    let mut parsed = Vec::with_capacity(files_scanned);
    for path in files {
        let text =
            fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let file = scan::parse(&rel, &text, is_test_path(&rel));
        rules::check_file(&file, LOCK_HIERARCHY, &mut diagnostics);
        parsed.push(file);
    }
    // The whole-program pass needs every file at once: unranked-lock
    // declarations, cross-crate acquisition cycles, hierarchy coverage.
    rules::check_program(&parsed, LOCK_HIERARCHY, &mut diagnostics);
    Ok(Report {
        diagnostics,
        files_scanned,
    })
}

/// Whether every line of the file counts as test code (integration tests
/// and benches may panic freely).
fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/") || path.contains("/tests/") || path.contains("/benches/")
}

/// Recursively collects `.rs` files, skipping build output and VCS state.
fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == "vendor" {
                continue;
            }
            collect_rust_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Locates the workspace root: the nearest ancestor of `start` holding
/// both a `Cargo.toml` and a `crates/` directory.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d.to_path_buf());
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_paths_are_exempt_from_panic_rule() {
        assert!(check_source("tests/smoke.rs", "fn f() { x().unwrap(); }\n").is_empty());
        assert!(
            check_source("crates/bench/benches/fig4.rs", "fn f() { x().unwrap(); }\n").is_empty()
        );
        assert_eq!(
            check_source("crates/rpc/src/codec.rs", "fn f() { x().unwrap(); }\n").len(),
            1
        );
    }

    #[test]
    fn hierarchy_is_shared_with_the_runtime_tracker() {
        assert!(LOCK_HIERARCHY.contains(&"board"));
        assert!(LOCK_HIERARCHY.contains(&"series"));
    }

    #[test]
    fn json_report_shape_is_stable() {
        let report = Report {
            diagnostics: vec![Diagnostic {
                rule: "panic",
                file: "crates/x/src/lib.rs".into(),
                line: 3,
                message: "m".into(),
            }],
            files_scanned: 7,
        };
        let v = report.to_json();
        assert_eq!(v["ok"], false);
        assert_eq!(v["files_scanned"], 7u64);
        assert_eq!(v["violations"][0]["rule"], "panic");
        assert_eq!(v["violations"][0]["line"], 3u64);
    }
}
