//! bf-flow: workspace symbol table, approximate call graph, and
//! reachability-based interprocedural hot-path passes.
//!
//! The per-file rules in [`crate::rules`] cannot see a blocking lock, an
//! unbounded allocation, or a panic path *three calls deep* behind an
//! event loop. bf-flow closes that gap without any rustc plumbing: it
//! extracts every function, impl block, trait, and struct-field type from
//! the masked source model, resolves call sites with name/receiver
//! heuristics (field types, parameter types, `let`-binding types,
//! trait-impl fan-out as may-call edges), and walks the resulting graph
//! from annotated hot-path roots:
//!
//! ```text
//! // bf-flow: entry(poller)
//! pub fn poll(&mut self, timeout: Option<Duration>) -> PollEvent {
//! ```
//!
//! Four passes run over everything reachable from an entry:
//!
//! | rule | meaning |
//! |---|---|
//! | `hot_blocking` | no condvar wait / sleep / blocking recv / syscall, and no lock ranked *outside* the entry class's floor |
//! | `hot_alloc` | no unbounded `push`/`insert`/`extend`/`to_vec`/`resize` without a justified bound |
//! | `hot_panic` | no `panic!`-family macro, `unwrap`/`expect`, or indexing-without-`get` (supersedes the per-file `panic` rule on these paths) |
//! | `error_drop` | no discarded `Result` whose error type carries `Backpressure`/`Overloaded`/`HandlerError` |
//!
//! Every finding carries a call-chain **witness** (entry → … → offending
//! call, file:line per hop) so a CI failure is a reproduction recipe, not
//! a guess. Sites opt out with a justified `bf-flow` allow directive;
//! for `hot_alloc` the justification must state the bound.
//!
//! Known approximation classes (documented in ARCHITECTURE.md §11):
//! resolution is name-based, so calls through trait objects fan out to
//! *every* impl (may-call over-approximation), while calls whose receiver
//! type cannot be inferred fall back to unique-method-name matching and
//! are dropped when ambiguous (false negatives). The bf-race sync facade
//! (`crates/race`) is excluded from the model: primitive operations
//! (`.lock()`, `.wait()`) are treated as leaves at the *call site*, where
//! the lock name and rank are visible.

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::rules::{
    find_all, find_keyword, ident_before, tracked_lock_name, Diagnostic, Hop, Unit,
};

/// Interprocedural rule identifiers, as they appear in `bf-flow` allow
/// directives, JSON output, and baseline keys.
pub const FLOW_RULES: &[&str] = &["hot_blocking", "hot_alloc", "hot_panic", "error_drop"];

/// Entry classes and their lock-rank floor: paths from an entry of a given
/// class may only acquire locks ranked at or inside (≥) the named lock.
/// The floor is the outermost lock the loop legitimately owns.
pub const ENTRY_CLASSES: &[(&str, &str)] = &[
    ("poller", "frames"),
    ("devmgr_events", "board"),
    ("remote_reactor", "pending"),
    ("batcher", "functions"),
    ("shm", "segment"),
    ("gatherer", "registry"),
];

/// Crates excluded from the call-graph model: the bf-race facade *is* the
/// synchronization layer (its internals are the primitives the passes
/// treat as leaves at the call site), and the linter itself is tooling.
pub(crate) const EXCLUDED_PREFIXES: &[&str] = &["crates/race/", "crates/lint/"];

/// One resolved `// bf-flow: entry(<class>)` annotation.
#[derive(Debug, Clone)]
pub struct EntryPoint {
    /// The entry class (a name from [`ENTRY_CLASSES`]).
    pub class: String,
    /// Qualified name of the annotated function (`Type::method` or free).
    pub function: String,
    /// Workspace-relative path of the annotation.
    pub file: String,
    /// 1-based line of the annotated function's signature.
    pub line: usize,
}

// ---------------------------------------------------------------------------
// Symbol model
// ---------------------------------------------------------------------------

#[derive(Debug)]
pub(crate) struct FnDef {
    pub(crate) name: String,
    pub(crate) qualified: String,
    pub(crate) owner: Option<String>,
    pub(crate) krate: String,
    pub(crate) unit_idx: usize,
    /// 1-based line of the `fn` keyword.
    pub(crate) line: usize,
    /// 1-based inclusive line range of the signature + body; `None` for
    /// bodyless trait declarations.
    pub(crate) body: Option<(usize, usize)>,
    pub(crate) params: Vec<(String, String)>,
    pub(crate) ret: String,
}

/// One struct's field table: (defining crate, field name → base type).
type FieldTable = (String, HashMap<String, String>);

/// Parsed signature parts: (name, params as (name, base type), return type).
type ParsedSignature = (String, Vec<(String, String)>, String);

#[derive(Default)]
pub(crate) struct Model {
    pub(crate) fns: Vec<FnDef>,
    /// (type, method) → defining fns (same name can exist per crate).
    methods: HashMap<(String, String), Vec<usize>>,
    /// method name → defining fns across all types.
    methods_by_name: HashMap<String, Vec<usize>>,
    /// free function name → defining fns.
    free_fns: HashMap<String, Vec<usize>>,
    /// type name → (crate, field → base type).
    fields: HashMap<String, Vec<FieldTable>>,
    traits: HashSet<String>,
    /// trait → implementing types.
    impls_of: HashMap<String, Vec<String>>,
    /// trait → declared method names.
    trait_methods: HashMap<String, HashSet<String>>,
    type_names: HashSet<String>,
}

fn crate_of(path: &str) -> String {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("workspace")
        .to_string()
}

/// Words that look like calls but are control flow or definitions.
pub(crate) fn is_keyword(word: &str) -> bool {
    matches!(
        word,
        "if" | "while"
            | "for"
            | "match"
            | "return"
            | "fn"
            | "loop"
            | "else"
            | "in"
            | "as"
            | "move"
            | "let"
            | "ref"
            | "mut"
            | "pub"
            | "use"
            | "impl"
            | "where"
            | "struct"
            | "enum"
            | "trait"
            | "type"
            | "const"
            | "static"
            | "crate"
            | "super"
            | "dyn"
            | "box"
            | "unsafe"
            | "break"
            | "continue"
    )
}

/// Strips reference/smart-pointer/cell wrappers down to the base type
/// ident: `&Arc<Mutex<Vec<u8>>>` → `Vec`, `&'a dyn BatchHandler` →
/// `BatchHandler`, `Option<ShmSegment>` → `ShmSegment`.
pub(crate) fn base_type(raw: &str) -> Option<String> {
    let mut t = raw.trim();
    loop {
        let before = t;
        t = t.trim_start_matches('&').trim();
        for prefix in ["mut ", "dyn "] {
            if let Some(rest) = t.strip_prefix(prefix) {
                t = rest.trim();
            }
        }
        if t.starts_with('\'') {
            // Lifetime: skip the token.
            t = t.split_once(' ').map(|(_, rest)| rest).unwrap_or("").trim();
        }
        let mut unwrapped = false;
        for wrapper in [
            "Arc<", "Box<", "Rc<", "Weak<", "Option<", "Mutex<", "RwLock<",
        ] {
            if let Some(rest) = t.strip_prefix(wrapper) {
                t = rest.trim_end().trim_end_matches('>').trim();
                unwrapped = true;
                break;
            }
        }
        if !unwrapped && t == before {
            break;
        }
    }
    let t = t.split('<').next().unwrap_or(t);
    let t = t.split('(').next().unwrap_or(t);
    let t = t.rsplit("::").next().unwrap_or(t).trim();
    let ident: String = t
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!ident.is_empty()).then_some(ident)
}

/// Splits `text` on top-level commas (ignoring nesting in `()`, `[]`,
/// `<>`; `->` does not close an angle bracket).
pub(crate) fn split_top_level(text: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0i64;
    let mut start = 0usize;
    let bytes = text.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'(' | b'[' | b'<' => depth += 1,
            b')' | b']' => depth -= 1,
            b'>' if i == 0 || bytes[i - 1] != b'-' => depth -= 1,
            b',' if depth == 0 => {
                out.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&text[start..]);
    out
}

/// Parses an accumulated `fn` signature into (name, params, return type).
fn parse_signature(sig: &str) -> Option<ParsedSignature> {
    let fn_pos = find_keyword(sig, "fn").into_iter().next()?;
    let after = sig[fn_pos + 2..].trim_start();
    let name: String = after
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        return None;
    }
    let mut rest = after[name.len()..].trim_start();
    // Skip a generics list, tolerating `->` inside `Fn(..) -> ..` bounds.
    if rest.starts_with('<') {
        let bytes = rest.as_bytes();
        let mut depth = 0i64;
        let mut end = None;
        for (i, &b) in bytes.iter().enumerate() {
            match b {
                b'<' => depth += 1,
                b'>' if i > 0 && bytes[i - 1] == b'-' => {}
                b'>' => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(i);
                        break;
                    }
                }
                _ => {}
            }
        }
        rest = &rest[end? + 1..];
    }
    let open = rest.find('(')?;
    let bytes = rest.as_bytes();
    let mut depth = 0i64;
    let mut close = None;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    close = Some(i);
                    break;
                }
            }
            _ => {}
        }
    }
    let close = close?;
    let mut params = Vec::new();
    for part in split_top_level(&rest[open + 1..close]) {
        let part = part.trim();
        if part.is_empty() || part.ends_with("self") || part.contains("self,") {
            continue;
        }
        let Some(colon) = part.find(':') else {
            continue;
        };
        let name = part[..colon].trim().trim_start_matches("mut ").trim();
        if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
            continue; // pattern parameters: not resolvable by name
        }
        if let Some(ty) = base_type(&part[colon + 1..]) {
            params.push((name.to_string(), ty));
        }
    }
    let tail = &rest[close + 1..];
    let ret = match tail.find("->") {
        Some(arrow) => {
            let r = &tail[arrow + 2..];
            let stop = find_keyword(r, "where").first().copied().unwrap_or(r.len());
            r[..stop].trim().to_string()
        }
        None => String::new(),
    };
    Some((name, params, ret))
}

/// Parses the type (and optional trait) out of an `impl` header.
fn parse_impl_header(sig: &str) -> (Option<String>, Option<String>) {
    let Some(pos) = find_keyword(sig, "impl").into_iter().next() else {
        return (None, None);
    };
    let mut rest = sig[pos + 4..].trim_start();
    if rest.starts_with('<') {
        let bytes = rest.as_bytes();
        let mut depth = 0i64;
        let mut end = 0usize;
        for (i, &b) in bytes.iter().enumerate() {
            match b {
                b'<' => depth += 1,
                b'>' if i > 0 && bytes[i - 1] == b'-' => {}
                b'>' => {
                    depth -= 1;
                    if depth == 0 {
                        end = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        rest = rest[end..].trim_start();
    }
    let stop = rest
        .find('{')
        .min(find_keyword(rest, "where").first().copied())
        .unwrap_or(rest.len());
    let head = &rest[..stop];
    if let Some(for_pos) = find_keyword(head, "for").into_iter().next() {
        let trait_ty = base_type(&head[..for_pos]);
        let self_ty = base_type(&head[for_pos + 3..]);
        (self_ty, trait_ty)
    } else {
        (base_type(head), None)
    }
}

/// First `{` or `;` at top-level bracket depth in an accumulated item
/// header — a `;` inside an array type (`[u64; 3]`) or a `{` inside a
/// parenthesized default must not terminate the header early.
fn header_terminator(sig: &str) -> (Option<usize>, Option<usize>) {
    let mut depth = 0i64;
    for (i, b) in sig.bytes().enumerate() {
        match b {
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth -= 1,
            b'{' if depth <= 0 => return (Some(i), None),
            b';' if depth <= 0 => return (None, Some(i)),
            _ => {}
        }
    }
    (None, None)
}

/// The identifier following `keyword` on `code`, if any.
fn ident_after_keyword(code: &str, keyword: &str) -> Option<String> {
    let pos = find_keyword(code, keyword).into_iter().next()?;
    let rest = code[pos + keyword.len()..].trim_start();
    let ident: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!ident.is_empty()).then_some(ident)
}

enum CtxKind {
    Impl { ty: String },
    Trait { name: String },
    Struct { ty: String },
    Fn { idx: usize },
}

struct Ctx {
    kind: CtxKind,
    enter_depth: i64,
}

enum PendingKind {
    Fn,
    Impl,
    Trait,
    Struct,
}

struct Pending {
    kind: PendingKind,
    sig: String,
    line: usize,
}

pub(crate) fn build_model(units: &[Unit]) -> Model {
    let mut model = Model::default();
    for (unit_idx, unit) in units.iter().enumerate() {
        let file = &unit.file;
        if EXCLUDED_PREFIXES.iter().any(|p| file.path.starts_with(p)) {
            continue;
        }
        let krate = crate_of(&file.path);
        let mut stack: Vec<Ctx> = Vec::new();
        let mut depth: i64 = 0;
        let mut pending: Option<Pending> = None;

        for (idx, line) in file.lines.iter().enumerate() {
            let code = &line.code;
            let lineno = idx + 1;

            if let Some(p) = pending.as_mut() {
                p.sig.push(' ');
                p.sig.push_str(code);
            } else if !line.in_test {
                // Detect the earliest item header on the line. Struct-field
                // lines are handled below and never contain these keywords.
                let header = [
                    ("impl", PendingKind::Impl),
                    ("trait", PendingKind::Trait),
                    ("struct", PendingKind::Struct),
                    ("fn", PendingKind::Fn),
                ]
                .into_iter()
                .filter_map(|(kw, kind)| {
                    find_keyword(code, kw)
                        .into_iter()
                        .next()
                        .map(|pos| (pos, kw, kind))
                })
                .min_by_key(|&(pos, _, _)| pos);
                if let Some((pos, kw, kind)) = header {
                    // `fn(` is a function-pointer type, not a definition;
                    // require an identifier after `fn`/`struct`/`trait`.
                    let named = match kind {
                        PendingKind::Impl => true,
                        _ => ident_after_keyword(&code[pos..], kw).is_some(),
                    };
                    if named {
                        pending = Some(Pending {
                            kind,
                            sig: code[pos..].to_string(),
                            line: lineno,
                        });
                    }
                }
                // Struct-field declarations at the top level of a struct
                // block feed the receiver-type resolution table.
                if pending.is_none() {
                    if let Some(Ctx {
                        kind: CtxKind::Struct { ty },
                        enter_depth,
                    }) = stack.last()
                    {
                        if depth == enter_depth + 1 {
                            record_field(&mut model, &krate, ty, code);
                        }
                    }
                }
            }

            // A complete pending header either opens a block on this line
            // or terminates bodyless with `;` (trait method declarations).
            if let Some(p) = pending.take() {
                match header_terminator(&p.sig) {
                    (Some(_), _) => {
                        // Opens a block: the `{` lives on the current line.
                        let brace_col = code.find('{').unwrap_or(0);
                        let before = &code[..brace_col];
                        let opens = before.bytes().filter(|&b| b == b'{').count() as i64;
                        let closes = before.bytes().filter(|&b| b == b'}').count() as i64;
                        let enter_depth = depth + opens - closes;
                        let kind = open_item(&mut model, &krate, unit_idx, &p, &stack);
                        if let Some(kind) = kind {
                            stack.push(Ctx { kind, enter_depth });
                        }
                    }
                    (_, Some(_)) => {
                        // Bodyless: record trait method declarations so the
                        // fan-out heuristic knows the trait's surface.
                        if let PendingKind::Fn = p.kind {
                            declare_bodyless_fn(&mut model, &krate, unit_idx, &p, &stack);
                        }
                    }
                    _ => pending = Some(p), // still accumulating
                }
            }

            depth += line.brace_delta();
            while let Some(ctx) = stack.last() {
                if depth <= ctx.enter_depth {
                    if let CtxKind::Fn { idx } = ctx.kind {
                        if let Some((start, _)) = model.fns[idx].body {
                            model.fns[idx].body = Some((start, lineno));
                        }
                    }
                    stack.pop();
                } else {
                    break;
                }
            }
        }
    }
    model
}

fn record_field(model: &mut Model, krate: &str, ty: &str, code: &str) {
    let trimmed = code.trim();
    let trimmed = trimmed.strip_prefix("pub").map_or(trimmed, |rest| {
        rest.trim_start_matches(|c: char| c == '(' || c == ')' || c.is_alphanumeric())
            .trim_start()
    });
    let Some(colon) = trimmed.find(':') else {
        return;
    };
    if trimmed.as_bytes().get(colon + 1) == Some(&b':') {
        return;
    }
    let name = trimmed[..colon].trim();
    if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return;
    }
    let ty_text = trimmed[colon + 1..].trim().trim_end_matches(',');
    let Some(field_ty) = base_type(ty_text) else {
        return;
    };
    let entry = model.fields.entry(ty.to_string()).or_default();
    if let Some((_, map)) = entry.iter_mut().find(|(k, _)| k == krate) {
        map.insert(name.to_string(), field_ty);
    } else {
        let mut map = HashMap::new();
        map.insert(name.to_string(), field_ty);
        entry.push((krate.to_string(), map));
    }
}

fn owner_of(stack: &[Ctx]) -> Option<String> {
    stack.iter().rev().find_map(|ctx| match &ctx.kind {
        CtxKind::Impl { ty } => Some(ty.clone()),
        CtxKind::Trait { name } => Some(name.clone()),
        _ => None,
    })
}

fn register_fn(model: &mut Model, def: FnDef) -> usize {
    let idx = model.fns.len();
    if let Some(owner) = def.owner.clone() {
        model
            .methods
            .entry((owner, def.name.clone()))
            .or_default()
            .push(idx);
        model
            .methods_by_name
            .entry(def.name.clone())
            .or_default()
            .push(idx);
    } else {
        model
            .free_fns
            .entry(def.name.clone())
            .or_default()
            .push(idx);
    }
    model.fns.push(def);
    idx
}

fn open_item(
    model: &mut Model,
    krate: &str,
    unit_idx: usize,
    p: &Pending,
    stack: &[Ctx],
) -> Option<CtxKind> {
    match p.kind {
        PendingKind::Impl => {
            let (ty, trait_name) = parse_impl_header(&p.sig);
            let ty = ty?;
            model.type_names.insert(ty.clone());
            if let Some(t) = trait_name {
                model.impls_of.entry(t).or_default().push(ty.clone());
            }
            Some(CtxKind::Impl { ty })
        }
        PendingKind::Trait => {
            let name = ident_after_keyword(&p.sig, "trait")?;
            model.traits.insert(name.clone());
            model.type_names.insert(name.clone());
            Some(CtxKind::Trait { name })
        }
        PendingKind::Struct => {
            let ty = ident_after_keyword(&p.sig, "struct")?;
            model.type_names.insert(ty.clone());
            Some(CtxKind::Struct { ty })
        }
        PendingKind::Fn => {
            let (name, params, ret) = parse_signature(&p.sig)?;
            let owner = owner_of(stack);
            if let Some(Ctx {
                kind: CtxKind::Trait { name: t },
                ..
            }) = stack.last()
            {
                model
                    .trait_methods
                    .entry(t.clone())
                    .or_default()
                    .insert(name.clone());
            }
            let qualified = match &owner {
                Some(o) => format!("{o}::{name}"),
                None => name.clone(),
            };
            let idx = register_fn(
                model,
                FnDef {
                    name,
                    qualified,
                    owner,
                    krate: krate.to_string(),
                    unit_idx,
                    line: p.line,
                    body: Some((p.line, p.line)),
                    params,
                    ret,
                },
            );
            Some(CtxKind::Fn { idx })
        }
    }
}

fn declare_bodyless_fn(
    model: &mut Model,
    krate: &str,
    unit_idx: usize,
    p: &Pending,
    stack: &[Ctx],
) {
    let Some((name, params, ret)) = parse_signature(&p.sig) else {
        return;
    };
    if let Some(Ctx {
        kind: CtxKind::Trait { name: t },
        ..
    }) = stack.last()
    {
        model
            .trait_methods
            .entry(t.clone())
            .or_default()
            .insert(name.clone());
    }
    let owner = owner_of(stack);
    let qualified = match &owner {
        Some(o) => format!("{o}::{name}"),
        None => name.clone(),
    };
    register_fn(
        model,
        FnDef {
            name,
            qualified,
            owner,
            krate: krate.to_string(),
            unit_idx,
            line: p.line,
            body: None,
            params,
            ret,
        },
    );
}

// ---------------------------------------------------------------------------
// Call extraction and resolution
// ---------------------------------------------------------------------------

const WAIT_METHODS: &[&str] = &["wait", "wait_for", "wait_while", "wait_until"];
const RECV_METHODS: &[&str] = &["recv", "recv_timeout"];
const ALLOC_METHODS: &[&str] = &[
    "push",
    "push_back",
    "push_front",
    "insert",
    "extend",
    "extend_from_slice",
    "append",
    "to_vec",
    "resize",
];
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];
/// Error types whose variants carry backpressure / overload / handler
/// failures: discarding a `Result` with one of these is an `error_drop`.
const RISKY_ERRORS: &[&str] = &[
    "TransportError",
    "GatewayError",
    "SubmitError",
    "HandlerError",
];
/// Methods on the bounded transport that report `Backpressure` even when
/// their receiver type cannot be resolved.
const RISKY_METHOD_FALLBACK: &[&str] = &["try_send", "try_push"];

/// Method names that are always primitive leaves, never call-graph edges.
fn is_primitive_method(name: &str) -> bool {
    name == "lock"
        || WAIT_METHODS.contains(&name)
        || RECV_METHODS.contains(&name)
        || ALLOC_METHODS.contains(&name)
        || PANIC_METHODS.contains(&name)
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum OffenseKind {
    /// Acquiring the named ranked lock.
    Lock {
        name: String,
        rank: usize,
    },
    CondvarWait,
    BlockingRecv,
    Sleep,
    Syscall {
        what: String,
    },
    Alloc {
        method: String,
    },
    Panic {
        what: String,
    },
    Indexing,
    /// Discarding a risky `Result` (callee, error type).
    DropResult {
        callee: String,
        error: String,
    },
}

#[derive(Debug, Clone)]
pub(crate) struct Offense {
    pub(crate) kind: OffenseKind,
    pub(crate) line: usize,
    pub(crate) column: usize,
    /// Line-stable token for baseline keys.
    pub(crate) token: String,
}

#[derive(Debug)]
pub(crate) struct CallSite {
    pub(crate) name: String,
    /// Receiver chain for method calls (`self.shared.board.program(..)` →
    /// `["self", "shared", "board"]`); empty when unknown.
    pub(crate) chain: Vec<String>,
    /// Path segments for `a::B::call(..)` forms (without the call name).
    pub(crate) path: Vec<String>,
    pub(crate) kind: CallKind,
    pub(crate) line: usize,
    pub(crate) column: usize,
    /// Whether the result is discarded via `let _ =` or a terminal `.ok()`.
    pub(crate) discarded: bool,
}

#[derive(Debug, PartialEq)]
pub(crate) enum CallKind {
    Method,
    Path,
    Free,
}

/// Per-function facts extracted in one pass over the body.
pub(crate) struct FnFacts {
    pub(crate) calls: Vec<CallSite>,
    pub(crate) offenses: Vec<Offense>,
    /// `let`-bound locals with inferable types.
    pub(crate) locals: HashMap<String, String>,
    /// Locals bound from `with_capacity(..)`: pushes into them are
    /// pre-sized, not unbounded growth.
    pub(crate) bounded_locals: HashSet<String>,
}

fn receiver_chain(code: &str, mut end: usize) -> Vec<String> {
    // `end` points at the `.` before the method name; walk segments back.
    let mut chain = Vec::new();
    let bytes = code.as_bytes();
    loop {
        let Some(ident) = ident_before(code, end) else {
            return Vec::new(); // `)`/`]`/`?` receiver: unknown root
        };
        chain.push(ident.to_string());
        let start = end - ident.len();
        if start > 0 && bytes[start - 1] == b'.' {
            end = start - 1;
        } else {
            chain.reverse();
            return chain;
        }
    }
}

fn path_segments(code: &str, mut end: usize) -> Vec<String> {
    let mut segs = Vec::new();
    let bytes = code.as_bytes();
    while let Some(ident) = ident_before(code, end) {
        segs.push(ident.to_string());
        let start = end - ident.len();
        if start >= 2 && bytes[start - 1] == b':' && bytes[start - 2] == b':' {
            end = start - 2;
        } else {
            break;
        }
    }
    segs.reverse();
    segs
}

pub(crate) fn extract_fn_facts(unit: &Unit, def: &FnDef) -> FnFacts {
    let mut facts = FnFacts {
        calls: Vec::new(),
        offenses: Vec::new(),
        locals: HashMap::new(),
        bounded_locals: HashSet::new(),
    };
    let Some((start, end)) = def.body else {
        return facts;
    };
    for lineno in start..=end.min(unit.file.lines.len()) {
        let line = &unit.file.lines[lineno - 1];
        if line.in_test {
            continue;
        }
        let code = &line.code;
        let trimmed = code.trim_start();
        let discarded = trimmed.starts_with("let _ =") || code.trim_end().ends_with(".ok();");

        // Local type bindings and pre-sized containers.
        if let Some(rest) = trimmed.strip_prefix("let ") {
            let rest = rest.strip_prefix("mut ").unwrap_or(rest);
            let name: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                let after = rest[name.len()..].trim_start();
                if let Some(ty_text) = after.strip_prefix(':') {
                    let stop = ty_text.find('=').unwrap_or(ty_text.len());
                    if let Some(ty) = base_type(&ty_text[..stop]) {
                        facts.locals.insert(name.clone(), ty);
                    }
                } else if let Some(rhs) = after.strip_prefix('=') {
                    // `let x = Type::...` — the first uppercase path
                    // segment is the binding's type.
                    let rhs = rhs.trim_start();
                    if let Some(sep) = rhs.find("::") {
                        let seg = &rhs[..sep];
                        if seg.chars().next().is_some_and(char::is_uppercase)
                            && seg.chars().all(|c| c.is_alphanumeric() || c == '_')
                        {
                            facts.locals.insert(name.clone(), seg.to_string());
                        }
                    }
                }
                if code.contains("with_capacity(") {
                    facts.bounded_locals.insert(name.clone());
                }
            }
        }

        // An explicit `x.reserve(n)` bounds later pushes into `x` the same
        // way a `with_capacity` binding does.
        for pos in crate::rules::find_all(code, ".reserve(") {
            if let Some(recv) = crate::rules::ident_before(code, pos) {
                facts.bounded_locals.insert(recv.to_string());
            }
        }

        // Tracked acquisitions: the lock name lives in the raw string.
        if let Some(pos) = code.find("tracked(") {
            if let Some(name) = tracked_lock_name(&line.raw, crate::LOCK_HIERARCHY) {
                let rank = crate::LOCK_HIERARCHY
                    .iter()
                    .position(|&h| h == name)
                    .unwrap_or(usize::MAX);
                facts.offenses.push(Offense {
                    kind: OffenseKind::Lock {
                        name: name.to_string(),
                        rank,
                    },
                    line: lineno,
                    column: pos + 1,
                    token: format!("lock:{name}"),
                });
            }
        }

        // Indexing without `get`: `ident[...]` or `)[...]` outside
        // attribute lines can panic (slicing included).
        if !trimmed.starts_with('#') {
            for (i, b) in code.bytes().enumerate() {
                if b != b'[' || i == 0 {
                    continue;
                }
                let prev = code.as_bytes()[i - 1];
                if prev.is_ascii_alphanumeric() || prev == b'_' || prev == b')' || prev == b']' {
                    facts.offenses.push(Offense {
                        kind: OffenseKind::Indexing,
                        line: lineno,
                        column: i + 1,
                        token: "index".to_string(),
                    });
                }
            }
        }

        // Call sites: every `ident(` with its receiver/path context.
        for pos in find_all(code, "(") {
            // Macro invocations: the `!` sits between the name and `(`.
            if pos >= 1 && code.as_bytes()[pos - 1] == b'!' {
                if let Some(name) = ident_before(code, pos - 1) {
                    if PANIC_MACROS.contains(&name) {
                        facts.offenses.push(Offense {
                            kind: OffenseKind::Panic {
                                what: format!("{name}!"),
                            },
                            line: lineno,
                            column: pos - name.len(),
                            token: format!("{name}!"),
                        });
                    }
                }
                continue;
            }
            let Some(name) = ident_before(code, pos) else {
                continue;
            };
            if is_keyword(name) {
                continue;
            }
            let start_pos = pos - name.len();
            let before = &code[..start_pos];
            let prev = before.bytes().last();
            if before.trim_end().ends_with("fn") {
                continue; // the function's own definition
            }
            match prev {
                Some(b'.') => facts.calls.push(CallSite {
                    name: name.to_string(),
                    chain: receiver_chain(code, start_pos - 1),
                    path: Vec::new(),
                    kind: CallKind::Method,
                    line: lineno,
                    column: start_pos + 1,
                    discarded,
                }),
                Some(b':') if start_pos >= 2 && code.as_bytes()[start_pos - 2] == b':' => {
                    facts.calls.push(CallSite {
                        name: name.to_string(),
                        chain: Vec::new(),
                        path: path_segments(code, start_pos - 2),
                        kind: CallKind::Path,
                        line: lineno,
                        column: start_pos + 1,
                        discarded,
                    });
                }
                _ => {
                    if name.chars().next().is_some_and(char::is_lowercase) {
                        facts.calls.push(CallSite {
                            name: name.to_string(),
                            chain: Vec::new(),
                            path: Vec::new(),
                            kind: CallKind::Free,
                            line: lineno,
                            column: start_pos + 1,
                            discarded,
                        });
                    }
                }
            }
        }
    }
    facts
}

impl Model {
    /// Resolves a receiver chain to a type name, if the heuristics can.
    fn chain_type(&self, def: &FnDef, facts: &FnFacts, chain: &[String]) -> Option<String> {
        let root = chain.first()?;
        let mut ty = if root == "self" {
            def.owner.clone()?
        } else if let Some((_, t)) = def.params.iter().find(|(n, _)| n == root) {
            t.clone()
        } else if let Some(t) = facts.locals.get(root) {
            t.clone()
        } else {
            // Receiver-name heuristic: `session` → `Session`, `board` →
            // `Board` — accepted only when the match is unique.
            let lowered = root.trim_matches('_').to_lowercase();
            let mut matches = self
                .type_names
                .iter()
                .filter(|t| t.to_lowercase() == lowered);
            let first = matches.next()?.clone();
            if matches.next().is_some() {
                return None;
            }
            first
        };
        for seg in &chain[1..] {
            ty = self.field_type(&def.krate, &ty, seg)?;
        }
        Some(ty)
    }

    fn field_type(&self, krate: &str, ty: &str, field: &str) -> Option<String> {
        let entries = self.fields.get(ty)?;
        entries
            .iter()
            .find(|(k, _)| k == krate)
            .or_else(|| entries.first())
            .and_then(|(_, map)| map.get(field))
            .cloned()
    }

    /// Picks the best definition among candidates: same crate first.
    fn pick(&self, krate: &str, candidates: &[usize]) -> Option<usize> {
        match candidates {
            [] => None,
            [one] => Some(*one),
            many => {
                let same: Vec<usize> = many
                    .iter()
                    .copied()
                    .filter(|&i| self.fns[i].krate == krate)
                    .collect();
                match same.as_slice() {
                    [one] => Some(*one),
                    _ => None, // ambiguous: drop the edge (documented)
                }
            }
        }
    }

    /// Resolves a type's method, fanning out across trait impls.
    fn resolve_on_type(&self, krate: &str, ty: &str, method: &str) -> Vec<usize> {
        if self.traits.contains(ty) {
            // May-call over-approximation: a call through the trait can
            // land in any impl, plus a default-bodied trait method.
            let mut out = Vec::new();
            for impl_ty in self.impls_of.get(ty).into_iter().flatten() {
                if let Some(c) = self.methods.get(&(impl_ty.clone(), method.to_string())) {
                    out.extend(c.iter().copied());
                }
            }
            if let Some(c) = self.methods.get(&(ty.to_string(), method.to_string())) {
                out.extend(c.iter().copied().filter(|&i| self.fns[i].body.is_some()));
            }
            out.sort_unstable();
            out.dedup();
            return out;
        }
        if let Some(c) = self.methods.get(&(ty.to_string(), method.to_string())) {
            if let Some(idx) = self.pick(krate, c) {
                return vec![idx];
            }
            return c.clone();
        }
        Vec::new()
    }

    /// Resolves one call site to zero or more target functions, or to a
    /// primitive offense.
    pub(crate) fn resolve(
        &self,
        def: &FnDef,
        facts: &FnFacts,
        call: &CallSite,
    ) -> (Vec<usize>, Option<OffenseKind>) {
        match call.kind {
            CallKind::Method => {
                let m = call.name.as_str();
                // Primitive leaves: classified at the call site, where the
                // receiver (lock name, container) is visible.
                if is_primitive_method(m) {
                    return (Vec::new(), self.primitive_offense(facts, call));
                }
                let ty = self.chain_type(def, facts, &call.chain);
                if let Some(ty) = &ty {
                    let targets = self.resolve_on_type(&def.krate, ty, m);
                    if !targets.is_empty() {
                        return (targets, None);
                    }
                    // A known workspace type without this method would be a
                    // compile error — the receiver is external (std, Bytes,
                    // iterators): no edge, nothing to flag.
                    if self.type_names.contains(ty) {
                        return (Vec::new(), None);
                    }
                }
                // Unknown receiver: trait-surface fan-out, then the
                // unique-method-name fallback.
                for (t, methods) in &self.trait_methods {
                    if methods.contains(m) {
                        let targets = self.resolve_on_type(&def.krate, t, m);
                        if !targets.is_empty() {
                            return (targets, None);
                        }
                    }
                }
                let candidates = self.methods_by_name.get(m).cloned().unwrap_or_default();
                match self.pick(&def.krate, &candidates) {
                    Some(idx) => (vec![idx], None),
                    None => (Vec::new(), None),
                }
            }
            CallKind::Path => {
                let joined = call.path.join("::");
                if joined.ends_with("thread") && call.name == "sleep" {
                    return (Vec::new(), Some(OffenseKind::Sleep));
                }
                if (joined.contains("fs") && !joined.contains("fsm"))
                    || call.path.last().is_some_and(|s| s == "File")
                    || joined.contains("net")
                    || joined.contains("process")
                {
                    return (
                        Vec::new(),
                        Some(OffenseKind::Syscall {
                            what: format!("{joined}::{}", call.name),
                        }),
                    );
                }
                let last = call.path.last().map(String::as_str);
                let ty = match last {
                    Some("Self") => def.owner.clone(),
                    Some(seg) if seg.chars().next().is_some_and(char::is_uppercase) => {
                        Some(seg.to_string())
                    }
                    _ => None,
                };
                if let Some(ty) = ty {
                    if self.type_names.contains(&ty) {
                        return (self.resolve_on_type(&def.krate, &ty, &call.name), None);
                    }
                    return (Vec::new(), None); // external type (Vec, Bytes…)
                }
                // `module::free_fn(..)`.
                let candidates = self.free_fns.get(&call.name).cloned().unwrap_or_default();
                match self.pick(&def.krate, &candidates) {
                    Some(idx) => (vec![idx], None),
                    None => (Vec::new(), None),
                }
            }
            CallKind::Free => {
                if call.name == "sleep" {
                    return (Vec::new(), Some(OffenseKind::Sleep));
                }
                let candidates = self.free_fns.get(&call.name).cloned().unwrap_or_default();
                match self.pick(&def.krate, &candidates) {
                    Some(idx) => (vec![idx], None),
                    None => (Vec::new(), None),
                }
            }
        }
    }

    fn primitive_offense(&self, facts: &FnFacts, call: &CallSite) -> Option<OffenseKind> {
        let m = call.name.as_str();
        if m == "lock" {
            let name = call.chain.last()?.clone();
            let rank = crate::LOCK_HIERARCHY.iter().position(|&h| h == name)?;
            return Some(OffenseKind::Lock { name, rank });
        }
        if WAIT_METHODS.contains(&m) {
            return Some(OffenseKind::CondvarWait);
        }
        if RECV_METHODS.contains(&m) {
            return Some(OffenseKind::BlockingRecv);
        }
        if ALLOC_METHODS.contains(&m) {
            if call.chain.len() == 1 && facts.bounded_locals.contains(&call.chain[0]) {
                return None; // pre-sized with with_capacity in this fn
            }
            return Some(OffenseKind::Alloc {
                method: m.to_string(),
            });
        }
        if PANIC_METHODS.contains(&m) {
            return Some(OffenseKind::Panic {
                what: format!(".{m}()"),
            });
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Entry annotations and the reachability passes
// ---------------------------------------------------------------------------

const ENTRY_MARKER: &str = "bf-flow: entry(";

fn collect_entries(
    units: &[Unit],
    model: &Model,
    out: &mut Vec<Diagnostic>,
) -> Vec<(EntryPoint, usize)> {
    let mut entries = Vec::new();
    for (unit_idx, unit) in units.iter().enumerate() {
        let file = &unit.file;
        if EXCLUDED_PREFIXES.iter().any(|p| file.path.starts_with(p)) {
            continue; // tooling hosts no hot paths — and its docs quote the syntax
        }
        for (idx, line) in file.lines.iter().enumerate() {
            let Some(pos) = line.comment.find(ENTRY_MARKER) else {
                continue;
            };
            if pos > 0 && line.comment.as_bytes()[pos - 1] == b'`' {
                continue;
            }
            let rest = &line.comment[pos + ENTRY_MARKER.len()..];
            let Some(close) = rest.find(')') else {
                out.push(
                    Diagnostic::new(
                        "directive",
                        &file.path,
                        idx + 1,
                        "malformed bf-flow entry annotation: missing `)`".to_string(),
                    )
                    .at_column(pos + 1),
                );
                continue;
            };
            let class = rest[..close].trim().to_string();
            if !ENTRY_CLASSES.iter().any(|(c, _)| *c == class) {
                let known: Vec<&str> = ENTRY_CLASSES.iter().map(|(c, _)| *c).collect();
                out.push(
                    Diagnostic::new(
                        "directive",
                        &file.path,
                        idx + 1,
                        format!("unknown bf-flow entry class {class:?}; known classes: {known:?}"),
                    )
                    .at_column(pos + 1),
                );
                continue;
            }
            // The annotation binds to the next function defined in this
            // file — it must exist, and close by.
            let target = model
                .fns
                .iter()
                .enumerate()
                .filter(|(_, f)| f.unit_idx == unit_idx && f.line > idx + 1)
                .min_by_key(|(_, f)| f.line);
            match target {
                Some((fn_idx, f)) if f.line <= idx + 1 + 8 => {
                    entries.push((
                        EntryPoint {
                            class,
                            function: f.qualified.clone(),
                            file: file.path.clone(),
                            line: f.line,
                        },
                        fn_idx,
                    ));
                }
                _ => out.push(
                    Diagnostic::new(
                        "directive",
                        &file.path,
                        idx + 1,
                        format!(
                            "bf-flow entry({class}) does not resolve to a function: \
                             the annotation must immediately precede a `fn` definition"
                        ),
                    )
                    .at_column(pos + 1),
                ),
            }
        }
    }
    entries
}

/// The lock-rank floor of an entry class (index into the hierarchy).
fn class_floor(class: &str, hierarchy: &[&str]) -> usize {
    ENTRY_CLASSES
        .iter()
        .find(|(c, _)| *c == class)
        .and_then(|(_, lock)| hierarchy.iter().position(|h| h == lock))
        .unwrap_or(0)
}

/// Breadth-first reachability from `start`, returning parent links for
/// witness reconstruction.
fn reachable_from(start: usize, adj: &[Vec<usize>]) -> HashMap<usize, usize> {
    let mut parent: HashMap<usize, usize> = HashMap::new();
    parent.insert(start, start);
    let mut queue = std::collections::VecDeque::from([start]);
    while let Some(node) = queue.pop_front() {
        for &next in &adj[node] {
            if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(next) {
                e.insert(node);
                queue.push_back(next);
            }
        }
    }
    parent
}

/// Runs the bf-flow analysis over the workspace: builds the model, binds
/// entry annotations, and evaluates the four passes on every function
/// reachable from an entry. Returns the resolved entry points.
pub fn check(units: &[Unit], hierarchy: &[&str], out: &mut Vec<Diagnostic>) -> Vec<EntryPoint> {
    let model = build_model(units);
    let entries = collect_entries(units, &model, out);

    // Per-function facts + the adjacency list, extracted once.
    let mut all_facts: Vec<FnFacts> = Vec::with_capacity(model.fns.len());
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); model.fns.len()];
    for (idx, def) in model.fns.iter().enumerate() {
        let unit = &units[def.unit_idx];
        let mut facts = extract_fn_facts(unit, def);
        let mut resolved_offenses = Vec::new();
        for call in &facts.calls {
            let (targets, offense) = model.resolve(def, &facts, call);
            for t in targets {
                if t != idx && !adj[idx].contains(&t) {
                    adj[idx].push(t);
                }
            }
            if let Some(kind) = offense {
                let token = match &kind {
                    OffenseKind::Lock { name, .. } => format!("lock:{name}"),
                    OffenseKind::CondvarWait => "wait".to_string(),
                    OffenseKind::BlockingRecv => "recv".to_string(),
                    OffenseKind::Sleep => "sleep".to_string(),
                    OffenseKind::Syscall { what } => format!("syscall:{what}"),
                    OffenseKind::Alloc { method } => format!(".{method}("),
                    OffenseKind::Panic { what } => what.clone(),
                    OffenseKind::Indexing => "index".to_string(),
                    OffenseKind::DropResult { .. } => "let _ =".to_string(),
                };
                resolved_offenses.push(Offense {
                    kind,
                    line: call.line,
                    column: call.column,
                    token,
                });
            }
            // Discarded risky Results: signature-resolved error types, with
            // a textual fallback for the bounded-transport methods.
            if call.discarded {
                let (targets, _) = model.resolve(def, &facts, call);
                let risky = targets
                    .iter()
                    .filter_map(|&t| {
                        RISKY_ERRORS
                            .iter()
                            .find(|e| model.fns[t].ret.contains(*e))
                            .map(|e| (model.fns[t].qualified.clone(), e.to_string()))
                    })
                    .next()
                    .or_else(|| {
                        RISKY_METHOD_FALLBACK
                            .contains(&call.name.as_str())
                            .then(|| (call.name.clone(), "TransportError".to_string()))
                    });
                if let Some((callee, error)) = risky {
                    resolved_offenses.push(Offense {
                        kind: OffenseKind::DropResult { callee, error },
                        line: call.line,
                        column: call.column,
                        token: "let _ =".to_string(),
                    });
                }
            }
        }
        facts.offenses.append(&mut resolved_offenses);
        all_facts.push(facts);
    }

    // Reachability per entry, in annotation order (deterministic: units
    // are path-sorted).
    let reach: Vec<HashMap<usize, usize>> = entries
        .iter()
        .map(|&(_, fn_idx)| reachable_from(fn_idx, &adj))
        .collect();

    let witness = |entry_idx: usize, target: usize| -> Vec<Hop> {
        let parents = &reach[entry_idx];
        let mut chain = vec![target];
        let mut node = target;
        while parents[&node] != node {
            node = parents[&node];
            chain.push(node);
        }
        chain.reverse();
        chain
            .into_iter()
            .map(|i| {
                let f = &model.fns[i];
                Hop {
                    function: f.qualified.clone(),
                    file: units[f.unit_idx].file.path.clone(),
                    line: f.line,
                }
            })
            .collect()
    };

    // Evaluate offenses, deduplicated by site, in function order.
    let mut seen: HashSet<(String, String, usize, String)> = HashSet::new();
    let mut fn_order: Vec<usize> = (0..model.fns.len()).collect();
    fn_order.sort_by_key(|&i| (model.fns[i].unit_idx, model.fns[i].line));
    for fn_idx in fn_order {
        let def = &model.fns[fn_idx];
        let unit = &units[def.unit_idx];
        let path = &unit.file.path;
        for offense in &all_facts[fn_idx].offenses {
            // Which entry convicts this offense (first in annotation order)?
            let mut conviction: Option<(usize, &'static str, String)> = None;
            for (entry_idx, (entry, _)) in entries.iter().enumerate() {
                if !reach[entry_idx].contains_key(&fn_idx) {
                    continue;
                }
                let verdict: Option<(&'static str, String)> = match &offense.kind {
                    OffenseKind::Lock { name, rank } => {
                        let floor = class_floor(&entry.class, hierarchy);
                        (*rank < floor).then(|| {
                            (
                                "hot_blocking",
                                format!(
                                    "lock `{name}` (rank {rank}) acquired on hot path \
                                 `{}`: paths from this entry may only take locks \
                                 ranked ≥ {floor} (`{}`) — move the acquisition off \
                                 the hot path or justify with \
                                 `// bf-flow: allow(hot_blocking): ...`",
                                    entry.class,
                                    hierarchy.get(floor).copied().unwrap_or("?"),
                                ),
                            )
                        })
                    }
                    OffenseKind::CondvarWait => Some((
                        "hot_blocking",
                        format!(
                            "condvar wait reachable from hot entry `{}`: the only \
                             sanctioned park point is the poller's notify hub — \
                             justify a designed park with \
                             `// bf-flow: allow(hot_blocking): ...`",
                            entry.class
                        ),
                    )),
                    OffenseKind::BlockingRecv => Some((
                        "hot_blocking",
                        format!(
                            "blocking recv reachable from hot entry `{}`: use \
                             try_recv + poller readiness instead",
                            entry.class
                        ),
                    )),
                    OffenseKind::Sleep => Some((
                        "hot_blocking",
                        format!(
                            "thread sleep reachable from hot entry `{}`: hot loops \
                             park on the poller, never on the scheduler clock",
                            entry.class
                        ),
                    )),
                    OffenseKind::Syscall { what } => Some((
                        "hot_blocking",
                        format!(
                            "syscall `{what}` reachable from hot entry `{}`: I/O \
                             belongs off the event loop",
                            entry.class
                        ),
                    )),
                    OffenseKind::Alloc { method } => Some((
                        "hot_alloc",
                        format!(
                            "unbounded `.{method}(..)` on hot path `{}`: pre-size \
                             with `with_capacity`, enforce an explicit cap, or \
                             state the bound with \
                             `// bf-flow: allow(hot_alloc): <bound>`",
                            entry.class
                        ),
                    )),
                    OffenseKind::Panic { what } => Some((
                        "hot_panic",
                        format!(
                            "{what} reachable from hot entry `{}`: a panic here \
                             takes down the shared event loop — return a typed \
                             error instead",
                            entry.class
                        ),
                    )),
                    OffenseKind::Indexing => Some((
                        "hot_panic",
                        format!(
                            "indexing without `get` reachable from hot entry `{}`: \
                             an out-of-range index panics the shared event loop — \
                             use `.get(..)` or justify the invariant with \
                             `// bf-flow: allow(hot_panic): ...`",
                            entry.class
                        ),
                    )),
                    OffenseKind::DropResult { callee, error } => Some((
                        "error_drop",
                        format!(
                            "discarded Result from `{callee}` (error type \
                             `{error}`) on hot path `{}`: backpressure and \
                             overload must be handled or propagated, never \
                             silently dropped",
                            entry.class
                        ),
                    )),
                };
                if let Some((rule, message)) = verdict {
                    conviction = Some((entry_idx, rule, message));
                    break;
                }
            }
            let Some((entry_idx, rule, message)) = conviction else {
                continue;
            };
            // Allow directives: bf-flow always; the per-file `panic`
            // exemptions keep covering unwrap/expect on these paths (the
            // justification already argues the panic is impossible).
            if unit.dirs.flow.permits(offense.line, rule) {
                continue;
            }
            let panic_equivalent = matches!(
                &offense.kind,
                OffenseKind::Panic { what } if what.starts_with('.')
            );
            if rule == "hot_panic"
                && panic_equivalent
                && unit.dirs.lint.permits(offense.line, "panic")
            {
                continue;
            }
            let key = format!("{rule}|{path}|{}|{}", def.qualified, offense.token);
            if !seen.insert((
                rule.to_string(),
                path.clone(),
                offense.line,
                offense.token.clone(),
            )) {
                continue;
            }
            let mut chain = witness(entry_idx, fn_idx);
            chain.push(Hop {
                function: format!("{} [{}]", def.qualified, offense.token),
                file: path.clone(),
                line: offense.line,
            });
            let mut diag =
                Diagnostic::new(rule, path, offense.line, message).at_column(offense.column);
            diag.witness = chain;
            diag.key = key;
            out.push(diag);
        }
    }

    entries.into_iter().map(|(e, _)| e).collect()
}

/// Every function the symbol model extracted, as
/// `(qualified_name, file, line)` triples in definition order — used by
/// conformance tests to assert the model sees what the tree declares.
pub fn functions(units: &[Unit]) -> Vec<(String, String, usize)> {
    let model = build_model(units);
    model
        .fns
        .iter()
        .map(|f| {
            (
                f.qualified.clone(),
                units[f.unit_idx].file.path.clone(),
                f.line,
            )
        })
        .collect()
}

/// The resolved call graph as sorted `caller → callee` pairs of qualified
/// names — the shape pinned by the golden test.
pub fn call_graph(units: &[Unit]) -> Vec<(String, String)> {
    let model = build_model(units);
    let mut edges: BTreeMap<(String, String), ()> = BTreeMap::new();
    for def in &model.fns {
        let facts = extract_fn_facts(&units[def.unit_idx], def);
        for call in &facts.calls {
            let (targets, _) = model.resolve(def, &facts, call);
            for t in targets {
                if model.fns[t].qualified != def.qualified {
                    edges.insert((def.qualified.clone(), model.fns[t].qualified.clone()), ());
                }
            }
        }
    }
    edges.into_keys().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::parse;

    fn units_of(sources: &[(&str, &str)]) -> Vec<Unit> {
        sources
            .iter()
            .map(|(path, src)| Unit::analyze(parse(path, src, false), &mut Vec::new()))
            .collect()
    }

    fn flow_check(sources: &[(&str, &str)]) -> (Vec<Diagnostic>, Vec<EntryPoint>) {
        let units = units_of(sources);
        let mut out = Vec::new();
        let entries = check(&units, crate::LOCK_HIERARCHY, &mut out);
        (out, entries)
    }

    // -- call graph golden test over a small multi-crate fixture --

    #[test]
    fn call_graph_golden_multi_crate_fixture() {
        let rpc = "pub struct Hub { gen: u64 }\n\
                   impl Hub {\n\
                       pub fn bump(&self) { self.note(); }\n\
                       fn note(&self) {}\n\
                   }\n\
                   pub fn free_helper() {}\n";
        let devmgr = "use bf_rpc::Hub;\n\
                      pub trait Handler {\n\
                          fn handle(&self);\n\
                      }\n\
                      pub struct Loop { hub: Hub }\n\
                      impl Loop {\n\
                          pub fn run(&self, h: &dyn Handler) {\n\
                              self.hub.bump();\n\
                              h.handle();\n\
                              free_helper();\n\
                          }\n\
                      }\n\
                      pub struct Echo;\n\
                      impl Handler for Echo {\n\
                          fn handle(&self) { helper_local(); }\n\
                      }\n\
                      fn helper_local() {}\n";
        let units = units_of(&[
            ("crates/rpc/src/lib.rs", rpc),
            ("crates/devmgr/src/lib.rs", devmgr),
        ]);
        let graph = call_graph(&units);
        let rendered: Vec<String> = graph.iter().map(|(a, b)| format!("{a} -> {b}")).collect();
        assert_eq!(
            rendered,
            vec![
                "Echo::handle -> helper_local",
                "Hub::bump -> Hub::note",
                "Loop::run -> Echo::handle", // trait fan-out: may-call edge
                "Loop::run -> Hub::bump",    // field-type receiver resolution
                "Loop::run -> free_helper",  // cross-crate free fn
            ],
            "golden call graph drifted: {rendered:#?}"
        );
    }

    // -- hot_blocking --

    #[test]
    fn hot_blocking_flags_a_cross_file_lock_with_a_witness_chain() {
        // The reactor (floor: `pending`, rank 7) reaches a `functions`
        // (rank 0) lock two calls deep, across files.
        let reactor = "pub struct Reactor { helper: Helper }\n\
                       impl Reactor {\n\
                           // bf-flow: entry(remote_reactor)\n\
                           pub fn reactor_thread(&self) {\n\
                               self.helper.step();\n\
                           }\n\
                       }\n";
        let helper = "pub struct Helper { registry: Registry }\n\
                      impl Helper {\n\
                          pub fn step(&self) { self.registry.update(); }\n\
                      }\n\
                      pub struct Registry { functions: Mutex<u32> }\n\
                      impl Registry {\n\
                          pub fn update(&self) {\n\
                              let g = self.functions.lock();\n\
                          }\n\
                      }\n";
        let (out, entries) = flow_check(&[
            ("crates/remote/src/reactor.rs", reactor),
            ("crates/remote/src/helper.rs", helper),
        ]);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].class, "remote_reactor");
        assert_eq!(entries[0].function, "Reactor::reactor_thread");
        let hits: Vec<_> = out.iter().filter(|d| d.rule == "hot_blocking").collect();
        assert_eq!(hits.len(), 1, "{out:#?}");
        let d = hits[0];
        assert_eq!(d.file, "crates/remote/src/helper.rs");
        assert!(d.message.contains("`functions`"), "{}", d.message);
        // entry → step → update → the lock: a multi-hop witness.
        assert!(d.witness.len() >= 4, "{:#?}", d.witness);
        assert_eq!(d.witness[0].function, "Reactor::reactor_thread");
        assert_eq!(d.witness[1].function, "Helper::step");
        assert_eq!(d.witness[2].function, "Registry::update");
    }

    #[test]
    fn hot_blocking_respects_the_rank_floor_and_allows() {
        // `frames` (rank 15) is at/inside the poller floor: clean.
        let ok = "pub struct P { frames: Mutex<u32> }\n\
                  impl P {\n\
                      // bf-flow: entry(poller)\n\
                      pub fn poll(&self) { let g = self.frames.lock(); }\n\
                  }\n";
        let (out, _) = flow_check(&[("crates/rpc/src/poller.rs", ok)]);
        assert!(out.iter().all(|d| d.rule != "hot_blocking"), "{out:#?}");
        // A condvar wait on the hot path fires — unless justified.
        let wait = "pub struct P { cv: Condvar }\n\
                    impl P {\n\
                        // bf-flow: entry(poller)\n\
                        pub fn poll(&self) { self.cv.wait(1); }\n\
                    }\n";
        let (out, _) = flow_check(&[("crates/rpc/src/poller.rs", wait)]);
        assert_eq!(
            out.iter().filter(|d| d.rule == "hot_blocking").count(),
            1,
            "{out:#?}"
        );
        let allowed = "pub struct P { cv: Condvar }\n\
                       impl P {\n\
                           // bf-flow: entry(poller)\n\
                           pub fn poll(&self) {\n\
                               // bf-flow: allow(hot_blocking): designated park point\n\
                               self.cv.wait(1);\n\
                           }\n\
                       }\n";
        let (out, _) = flow_check(&[("crates/rpc/src/poller.rs", allowed)]);
        assert!(out.is_empty(), "{out:#?}");
    }

    // -- hot_alloc --

    #[test]
    fn hot_alloc_flags_unbounded_growth_but_not_presized_buffers() {
        let src = "pub struct L { q: Vec<u32> }\n\
                   impl L {\n\
                       // bf-flow: entry(devmgr_events)\n\
                       pub fn run_event_loop(&mut self) {\n\
                           self.collect_dead();\n\
                       }\n\
                       fn collect_dead(&mut self) {\n\
                           let mut dead = Vec::new();\n\
                           dead.push(1);\n\
                           let mut sized = Vec::with_capacity(4);\n\
                           sized.push(1);\n\
                       }\n\
                   }\n";
        let (out, _) = flow_check(&[("crates/devmgr/src/event_loop.rs", src)]);
        let hits: Vec<_> = out.iter().filter(|d| d.rule == "hot_alloc").collect();
        assert_eq!(hits.len(), 1, "{out:#?}");
        assert_eq!(hits[0].line, 9, "only the unsized push fires");
        assert!(hits[0].witness.len() >= 2, "cross-function witness");
        // A justified bound silences the site. (`\n\` continuations strip
        // leading whitespace, so the fixture lines have no indentation.)
        let allowed = src.replace(
            "dead.push(1);\n",
            "// bf-flow: allow(hot_alloc): bounded by registered sessions\n\
             dead.push(1);\n",
        );
        assert_ne!(allowed, src, "replacement must take effect");
        let (out, _) = flow_check(&[("crates/devmgr/src/event_loop.rs", &allowed)]);
        assert!(out.iter().all(|d| d.rule != "hot_alloc"), "{out:#?}");
    }

    #[test]
    fn functions_unreachable_from_entries_are_not_flagged() {
        let src = "pub struct L;\n\
                   impl L {\n\
                       // bf-flow: entry(devmgr_events)\n\
                       pub fn run_event_loop(&self) {}\n\
                       pub fn cold_admin(&self, v: &mut Vec<u32>) { v.push(1); }\n\
                   }\n";
        let (out, _) = flow_check(&[("crates/devmgr/src/event_loop.rs", src)]);
        assert!(out.is_empty(), "{out:#?}");
    }

    // -- hot_panic --

    #[test]
    fn hot_panic_flags_unwrap_indexing_and_macros_interprocedurally() {
        let a = "pub struct S { t: Helper }\n\
                 impl S {\n\
                     // bf-flow: entry(devmgr_events)\n\
                     pub fn run_event_loop(&self) { self.t.deep(3); }\n\
                 }\n";
        let b = "pub struct Helper { names: Vec<String> }\n\
                 impl Helper {\n\
                     pub fn deep(&self, k: usize) {\n\
                         let n = self.names[k].clone();\n\
                         self.decode().unwrap();\n\
                         panic!();\n\
                     }\n\
                     fn decode(&self) -> Option<u32> { None }\n\
                 }\n";
        let (out, _) = flow_check(&[
            ("crates/devmgr/src/event_loop.rs", a),
            ("crates/devmgr/src/helper.rs", b),
        ]);
        let rules: Vec<&str> = out
            .iter()
            .filter(|d| d.rule == "hot_panic")
            .map(|d| d.witness.last().unwrap().function.as_str())
            .collect();
        assert_eq!(
            out.iter().filter(|d| d.rule == "hot_panic").count(),
            3,
            "{out:#?} {rules:?}"
        );
        // Cross-file witnesses all route through the entry.
        for d in out.iter().filter(|d| d.rule == "hot_panic") {
            assert_eq!(d.witness[0].function, "S::run_event_loop", "{d:#?}");
        }
    }

    #[test]
    fn hot_panic_honours_existing_panic_allow_directives() {
        let src = "pub struct S;\n\
                   impl S {\n\
                       // bf-flow: entry(devmgr_events)\n\
                       pub fn run_event_loop(&self) {\n\
                           // bf-lint: allow(panic): freshly inserted above\n\
                           self.find().unwrap();\n\
                       }\n\
                       fn find(&self) -> Option<u32> { Some(1) }\n\
                   }\n";
        let (out, _) = flow_check(&[("crates/devmgr/src/event_loop.rs", src)]);
        assert!(out.iter().all(|d| d.rule != "hot_panic"), "{out:#?}");
    }

    // -- error_drop --

    #[test]
    fn error_drop_flags_discarded_backpressure_results() {
        let src = "pub struct Tx;\n\
                   impl Tx {\n\
                       pub fn try_send(&self, v: u32) -> Result<(), TransportError> { Ok(()) }\n\
                   }\n\
                   pub struct Pump { tx: Tx }\n\
                   impl Pump {\n\
                       // bf-flow: entry(batcher)\n\
                       pub fn pump(&self) {\n\
                           let _ = self.tx.try_send(1);\n\
                       }\n\
                       pub fn pump_checked(&self) -> Result<(), TransportError> {\n\
                           self.tx.try_send(2)\n\
                       }\n\
                   }\n";
        let (out, _) = flow_check(&[("crates/serverless/src/gateway.rs", src)]);
        let hits: Vec<_> = out.iter().filter(|d| d.rule == "error_drop").collect();
        assert_eq!(hits.len(), 1, "{out:#?}");
        assert_eq!(hits[0].line, 9, "only the discarded call fires");
        // Justified coalescing is the sanctioned form.
        let allowed = src.replace(
            "let _ = self.tx.try_send(1);\n",
            "// bf-flow: allow(error_drop): wake coalescing, Full is fine\n\
             let _ = self.tx.try_send(1);\n",
        );
        assert_ne!(allowed, src, "replacement must take effect");
        let (out, _) = flow_check(&[("crates/serverless/src/gateway.rs", &allowed)]);
        assert!(out.is_empty(), "{out:#?}");
    }

    // -- entry annotation handling --

    #[test]
    fn unknown_entry_class_reports_the_annotation_site() {
        let src = "// bf-flow: entry(warp_core)\npub fn f() {}\n";
        let (out, entries) = flow_check(&[("crates/rpc/src/lib.rs", src)]);
        assert!(entries.is_empty());
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, "directive");
        assert_eq!(out[0].line, 1, "reported at the annotation, not the fn");
        assert!(out[0].message.contains("warp_core"));
    }

    #[test]
    fn dangling_entry_annotation_is_reported() {
        let src = "pub fn f() {}\n// bf-flow: entry(poller)\n";
        let (out, entries) = flow_check(&[("crates/rpc/src/lib.rs", src)]);
        assert!(entries.is_empty());
        assert_eq!(out.len(), 1, "{out:#?}");
        assert!(out[0].message.contains("does not resolve"), "{out:#?}");
    }

    #[test]
    fn array_types_in_signatures_do_not_truncate_the_model() {
        // `[u64; 3]` holds a `;` — the header scanner must not read it as
        // a bodyless-declaration terminator and drop the function.
        let src = "pub struct S { v: u32 }\n\
                   impl S {\n\
                       // bf-flow: entry(devmgr_events)\n\
                       pub fn run_event_loop(&self) { dispatch(&self.v, [0u64; 3]); }\n\
                   }\n\
                   fn dispatch(\n\
                       v: &u32,\n\
                       work: [u64; 3],\n\
                   ) -> u32 {\n\
                       let mut out = Vec::new();\n\
                       out.push(1);\n\
                       work[0] as u32\n\
                   }\n";
        let units = units_of(&[("crates/devmgr/src/event_loop.rs", src)]);
        let fns: Vec<String> = functions(&units).into_iter().map(|(q, _, _)| q).collect();
        assert!(fns.contains(&"dispatch".to_string()), "{fns:?}");
        let (out, _) = flow_check(&[("crates/devmgr/src/event_loop.rs", src)]);
        assert_eq!(
            out.iter().filter(|d| d.rule == "hot_alloc").count(),
            1,
            "dispatch is reachable: {out:#?}"
        );
        assert_eq!(
            out.iter().filter(|d| d.rule == "hot_panic").count(),
            1,
            "the work[0] indexing fires: {out:#?}"
        );
    }

    #[test]
    fn entry_classes_all_map_to_hierarchy_locks() {
        for (class, lock) in ENTRY_CLASSES {
            assert!(
                crate::LOCK_HIERARCHY.contains(lock),
                "entry class {class} floor {lock} is not a ranked lock"
            );
        }
    }
}
