//! CNN inference through the PipeCNN-style layer pipeline.
//!
//! Runs a small CNN functionally — layer by layer, the way PipeCNN's host
//! code drives its kernels — through a shared device, verifying every
//! intermediate against the host reference, and then shows why AlexNet's
//! per-layer synchronization makes the remote path pay ~30 control round
//! trips per inference (paper Table IV).
//!
//! Run with: `cargo run --example cnn_inference`

use std::error::Error;
use std::sync::Arc;

use blastfunction::prelude::*;
use blastfunction::workloads::pipecnn::{CnnNetwork, LAYER_KERNEL};
use parking_lot::Mutex;

fn main() -> Result<(), Box<dyn Error>> {
    let network = CnnNetwork::tiny();
    println!(
        "PipeCNN-style inference: {} ({} layers, input {:?})\n",
        network.name,
        network.layers.len(),
        network.input
    );

    let mut catalog = BitstreamCatalog::new();
    catalog.register(network.bitstream());
    let board = Arc::new(Mutex::new(Board::new(
        BoardSpec::de5a_net(),
        *node_b().pcie(),
    )));
    let manager = DeviceManager::new(
        DeviceManagerConfig::standalone("fpga-b"),
        node_b(),
        board,
        catalog,
    );
    let mut router = Router::new();
    router.add_manager(manager);
    let clock = VirtualClock::new();
    let device = router.connect(0, "cnn-fn", PathCosts::local_shm(), clock.clone())?;

    let ctx = device.create_context()?;
    let program = ctx.build_program(&format!("pipecnn-{}", network.name))?;
    let kernel = program.create_kernel(LAYER_KERNEL)?;
    let queue = ctx.create_queue()?;

    // One device buffer per layer boundary, like PipeCNN's ping-pong
    // global buffers.
    let mut boundaries = vec![ctx.create_buffer(network.input_bytes())?];
    for idx in 0..network.layers.len() {
        boundaries.push(ctx.create_buffer(network.layer_output_bytes(idx))?);
    }

    // The input image.
    let input: Vec<f32> = (0..network.input_bytes() / 4)
        .map(|i| ((i % 31) as f32 - 15.0) / 15.0)
        .collect();
    let input_bytes: Vec<u8> = input.iter().flat_map(|v| v.to_le_bytes()).collect();
    queue.write(&boundaries[0], input_bytes)?;

    // PipeCNN's host loop: launch each layer's kernel and synchronize —
    // the per-layer sync is what multiplies remote control overhead.
    let t0 = clock.now();
    for (idx, _layer) in network.layers.iter().enumerate() {
        kernel.set_arg_buffer(0, &boundaries[idx])?;
        kernel.set_arg_buffer(1, &boundaries[idx + 1])?;
        kernel.set_arg(2, ArgValue::U32(idx as u32))?;
        let elems = network.layer_output_bytes(idx) / 4;
        queue.launch(&kernel, NdRange::d1(elems))?;
        queue.finish()?; // per-layer synchronization, as in PipeCNN
        println!("  layer {idx:>2} done at {}", clock.now() - t0);
    }
    let raw = queue.read_vec(boundaries.last().expect("output boundary"))?;
    let device_out: Vec<f32> = raw
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    let total = clock.now() - t0;

    // Verify against the host reference forward pass.
    let expected = network.reference_forward(&input);
    assert_eq!(device_out.len(), expected.len());
    for (i, (d, e)) in device_out.iter().zip(&expected).enumerate() {
        assert!((d - e).abs() < 1e-4, "class {i}: device {d} vs host {e}");
    }
    let best = device_out
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite scores"))
        .expect("non-empty output");
    println!("\nInference verified against the host reference.");
    println!(
        "Top class: {} (score {:.4}); total remote inference time {total}\n",
        best.0, best.1
    );

    // Why Table IV's remote latency gap exists:
    let alexnet = CnnNetwork::alexnet();
    println!(
        "AlexNet: {} kernel invocations/inference, device-busy {:.1} ms.",
        alexnet.kernel_invocations(),
        alexnet.inference_busy_time().as_millis_f64()
    );
    println!(
        "With ~1 ms of control RTT per synchronized invocation, BlastFunction adds\n\
         ~{} ms over native — the paper measures 132.89 ms vs 94.29 ms (Table IV).",
        alexnet.kernel_invocations() + 2
    );
    Ok(())
}
