//! Autoscaling: the Gateway responsibility the paper delegates to OpenFaaS
//! ("forwards the requests to the functions and handles autoscaling"),
//! closed over the Accelerators Registry.
//!
//! A Sobel function starts with one replica. As observed load rises, the
//! autoscaler creates replicas through the cluster — each one passes the
//! registry's admission hook, so each replica gets its own device
//! allocation (Algorithm 1) and lands co-located with its board. When load
//! falls, replicas are removed (with hysteresis) and their bindings are
//! released.
//!
//! Run with: `cargo run --example autoscaling`

use std::error::Error;
use std::sync::Arc;

use blastfunction::prelude::*;
use blastfunction::registry::ENV_DEVICE_MANAGER;
use blastfunction::serverless::{AutoscalePolicy, Autoscaler, LoadSignal};
use blastfunction::workloads::sobel;
use parking_lot::Mutex;

fn main() -> Result<(), Box<dyn Error>> {
    // Control plane: three boards, registry wired into the cluster.
    let mut catalog = BitstreamCatalog::new();
    catalog.register(sobel::bitstream());
    let cluster = Cluster::new(paper_cluster());
    let registry = Registry::new(AllocationPolicy::paper());
    for node in paper_cluster() {
        let device_id = format!("fpga-{}", node.id().as_str().to_lowercase());
        let board = Arc::new(Mutex::new(Board::new(BoardSpec::de5a_net(), *node.pcie())));
        registry.register_device(DeviceManager::new(
            DeviceManagerConfig::standalone(&device_id),
            node,
            board,
            catalog.clone(),
        ));
    }
    // The typed placement API: admission and release go through
    // `dyn PlacementService`, the same surface a sharded federation
    // implements.
    attach_placement(&cluster, Arc::new(registry.clone()));
    registry.register_function(
        "sobel",
        DeviceQuery::for_accelerator(sobel::SOBEL_BITSTREAM),
    );

    // One replica can absorb ~25 rq/s of 1080p Sobel (Table II's shape).
    let scaler = Autoscaler::new(cluster.clone());
    scaler.set_policy(
        "sobel",
        AutoscalePolicy::new()
            .with_target_rps_per_replica(25.0)
            .with_bounds(1, 3),
    );

    println!("Autoscaling a Sobel function against a rising and falling load:\n");
    println!(
        "{:>12} {:>9} {:>9}  placements",
        "load (rq/s)", "replicas", "change"
    );
    for observed in [5.0, 20.0, 40.0, 70.0, 70.0, 30.0, 12.0, 4.0] {
        let action = scaler.reconcile("sobel", &LoadSignal::from_rps(observed))?;
        let placements: Vec<String> = cluster
            .instances()
            .iter()
            .map(|i| {
                format!(
                    "{}@{}",
                    i.env
                        .get(ENV_DEVICE_MANAGER)
                        .map(String::as_str)
                        .unwrap_or("?"),
                    i.node.as_ref().map(NodeId::as_str).unwrap_or("?")
                )
            })
            .collect();
        let change = if action.created.is_empty() && action.deleted.is_empty() {
            "steady".to_string()
        } else if !action.created.is_empty() {
            format!("+{}", action.created.len())
        } else {
            format!("-{}", action.deleted.len())
        };
        println!(
            "{observed:>12.0} {:>9} {:>9}  {}",
            scaler.replicas("sobel"),
            change,
            placements.join(", ")
        );
    }

    println!("\nEvery replica passed the registry's admission: it was bound to a");
    println!("device by Algorithm 1 and pinned to that device's node (shared");
    println!("memory requires co-location). Scale-down kept one replica (min)");
    println!("and released the other bindings for future allocations.");
    Ok(())
}
