//! Quickstart: the paper's transparency claim in one file.
//!
//! The *same* OpenCL host code runs a Sobel edge detection first on a
//! directly attached board (Native) and then through BlastFunction's
//! Remote OpenCL Library against a shared board — producing bit-identical
//! results, with the remote path adding only the expected ~2 ms of control
//! overhead plus one shared-memory copy.
//!
//! Run with: `cargo run --example quickstart`

use std::error::Error;
use std::sync::Arc;

use blastfunction::ocl::{Buffer, Context, Kernel, Queue};
use blastfunction::prelude::*;
use blastfunction::workloads::sobel;
use parking_lot::Mutex;

/// One deployed Sobel pipeline: context, program, kernel, buffers, queue.
struct SobelPipeline {
    kernel: Kernel,
    input: Buffer,
    output: Buffer,
    queue: Queue,
    width: u32,
    height: u32,
}

impl SobelPipeline {
    /// Ordinary OpenCL setup code — identical for every backend. Includes
    /// `clBuildProgram`, which programs the board (seconds of
    /// reconfiguration time), so services do it once at start-up.
    fn deploy(device: &Device, width: u32, height: u32) -> ClResult<(Context, Self)> {
        let ctx = device.create_context()?;
        let program = ctx.build_program(sobel::SOBEL_BITSTREAM)?;
        let kernel = program.create_kernel(sobel::SOBEL_KERNEL)?;
        let bytes = sobel::frame_bytes(width, height);
        let input = ctx.create_buffer(bytes)?;
        let output = ctx.create_buffer(bytes)?;
        let queue = ctx.create_queue()?;
        Ok((
            ctx.clone(),
            SobelPipeline {
                kernel,
                input,
                output,
                queue,
                width,
                height,
            },
        ))
    }

    /// Ordinary OpenCL per-request code — identical for every backend.
    fn run(&self, pixels: &[u32]) -> ClResult<Vec<u32>> {
        self.queue.write(&self.input, sobel::pack_pixels(pixels))?;
        self.kernel.set_arg_buffer(0, &self.input)?;
        self.kernel.set_arg_buffer(1, &self.output)?;
        self.kernel.set_arg(2, ArgValue::U32(self.width))?;
        self.kernel.set_arg(3, ArgValue::U32(self.height))?;
        self.queue.launch(
            &self.kernel,
            NdRange::d2(u64::from(self.width), u64::from(self.height)),
        )?;
        self.queue.finish()?;
        Ok(sobel::unpack_pixels(&self.queue.read_vec(&self.output)?))
    }
}

fn fresh_board() -> Arc<Mutex<Board>> {
    Arc::new(Mutex::new(Board::new(
        BoardSpec::de5a_net(),
        *node_b().pcie(),
    )))
}

fn catalog() -> BitstreamCatalog {
    let mut catalog = BitstreamCatalog::new();
    catalog.register(sobel::bitstream());
    catalog
}

fn main() -> Result<(), Box<dyn Error>> {
    let (width, height) = (64u32, 48u32);
    // A synthetic test card: vertical bars.
    let pixels: Vec<u32> = (0..width * height)
        .map(|i| {
            if (i % width) / 8 % 2 == 0 {
                0xff20_2020
            } else {
                0xffe0_e0e0
            }
        })
        .collect();

    println!("BlastFunction quickstart — Sobel on a {width}x{height} frame\n");

    // --- Native: direct PCIe access -----------------------------------
    let native_clock = VirtualClock::new();
    let native = Device::new(Arc::new(NativeBackend::new(
        node_b(),
        fresh_board(),
        catalog(),
        native_clock.clone(),
        "quickstart",
    )));
    let (_ctx, pipeline) = SobelPipeline::deploy(&native, width, height)?;
    let t0 = native_clock.now();
    let native_result = pipeline.run(&pixels)?;
    let native_rtt = native_clock.now() - t0;
    println!("Native            : {native_rtt:>10} per request");

    // --- BlastFunction: shared board behind a Device Manager ----------
    for (label, costs) in [
        ("BlastFunction shm", PathCosts::local_shm()),
        ("BlastFunction gRPC", PathCosts::local_grpc()),
    ] {
        let manager = DeviceManager::new(
            DeviceManagerConfig::standalone("fpga-b"),
            node_b(),
            fresh_board(),
            catalog(),
        );
        let mut router = Router::new();
        router.add_manager(manager);
        let clock = VirtualClock::new();
        let device = router.connect(0, "quickstart-fn", costs, clock.clone())?;
        let (_ctx, pipeline) = SobelPipeline::deploy(&device, width, height)?;
        let t0 = clock.now();
        let remote_result = pipeline.run(&pixels)?;
        let rtt = clock.now() - t0;
        assert_eq!(
            remote_result, native_result,
            "transparency: results must be identical"
        );
        println!("{label:<18}: {rtt:>10} per request (bit-identical output)");
    }

    println!(
        "\nEvery backend produced the same {} output pixels.",
        native_result.len()
    );
    println!("The host code never changed — that is the paper's transparency claim.");
    Ok(())
}
