//! The full BlastFunction stack: cluster, registry, device managers,
//! allocation, and the multi-tenant cluster simulation.
//!
//! Part 1 wires the control plane together the way the paper's Fig. 1
//! shows: three nodes with one Device Manager each, the Accelerators
//! Registry intercepting Kubernetes pod creation to run Algorithm 1, patch
//! the pod (device address, shm volume, forced host) and keep bindings.
//!
//! Part 2 replays Table II's medium-load Sobel experiment in the
//! discrete-event cluster simulation and prints the paper-style table.
//!
//! Run with: `cargo run --example serverless_cluster`

use std::error::Error;
use std::sync::Arc;

use blastfunction::prelude::*;
use blastfunction::workloads::sobel;
use parking_lot::Mutex;

fn main() -> Result<(), Box<dyn Error>> {
    // ---- Part 1: control plane -----------------------------------------
    println!("== Part 1: allocation through the Accelerators Registry ==\n");

    let mut catalog = BitstreamCatalog::new();
    catalog.register(sobel::bitstream());

    let cluster = Cluster::new(paper_cluster());
    let registry = Registry::new(AllocationPolicy::paper());
    for node in paper_cluster() {
        let device_id = format!("fpga-{}", node.id().as_str().to_lowercase());
        let board = Arc::new(Mutex::new(Board::new(BoardSpec::de5a_net(), *node.pcie())));
        let manager = DeviceManager::new(
            DeviceManagerConfig::standalone(&device_id),
            node,
            board,
            catalog.clone(),
        );
        registry.register_device(manager);
    }
    // Wire the cluster through the typed placement API: the admission
    // hook and deletion watcher see only `dyn PlacementService`, so a
    // ShardedRegistry federation drops in without touching this file.
    attach_placement(&cluster, Arc::new(registry.clone()));

    // Deploy five Sobel functions; the admission hook runs Algorithm 1.
    for i in 1..=5 {
        let name = format!("sobel-{i}");
        registry.register_function(&name, DeviceQuery::for_accelerator(sobel::SOBEL_BITSTREAM));
        let instance = cluster.create_instance(InstanceTemplate::new(&name))?;
        println!(
            "  {name}: pod {} -> device {} on node {} (volumes: {:?})",
            instance.id,
            instance.env["DEVICE_MANAGER_ADDRESS"],
            instance.node.as_ref().map(|n| n.as_str()).unwrap_or("?"),
            instance.volumes,
        );
    }

    // Each instance now dials its manager and issues one real request.
    println!("\n  Driving one warm-up request through each placed instance:");
    for instance in cluster.instances() {
        let device_id = instance.env["DEVICE_MANAGER_ADDRESS"].clone();
        let manager = registry.manager(&device_id).expect("bound manager exists");
        let mut router = Router::new();
        router.add_manager(manager);
        let clock = VirtualClock::new();
        let device = router.connect(
            0,
            &instance.id.to_string(),
            PathCosts::local_shm(),
            clock.clone(),
        )?;
        let ctx = device.create_context()?;
        let program = ctx.build_program(sobel::SOBEL_BITSTREAM)?;
        let kernel = program.create_kernel(sobel::SOBEL_KERNEL)?;
        let (w, h) = (32u32, 32u32);
        let input = ctx.create_buffer(sobel::frame_bytes(w, h))?;
        let output = ctx.create_buffer(sobel::frame_bytes(w, h))?;
        let queue = ctx.create_queue()?;
        let frame = vec![0xff80_8080u32; (w * h) as usize];
        let t0 = clock.now();
        queue.write(&input, sobel::pack_pixels(&frame))?;
        kernel.set_arg_buffer(0, &input)?;
        kernel.set_arg_buffer(1, &output)?;
        kernel.set_arg(2, ArgValue::U32(w))?;
        kernel.set_arg(3, ArgValue::U32(h))?;
        queue.launch(&kernel, NdRange::d2(w.into(), h.into()))?;
        queue.finish()?;
        let _edges = queue.read_vec(&output)?;
        println!(
            "    {} on {device_id}: request served in {}",
            instance.id,
            clock.now() - t0
        );
    }

    // ---- Part 2: Table II medium load, simulated ------------------------
    println!("\n== Part 2: Table II (Sobel, medium load) via the cluster DES ==\n");
    for deployment in [
        Deployment::BlastFunction {
            data_path: DataPathKind::SharedMemory,
        },
        Deployment::Native,
    ] {
        let result = run_scenario(&ScenarioConfig::new(
            UseCase::Sobel,
            LoadLevel::Medium,
            deployment,
        ));
        print!("{}", result.render_per_function());
        println!(
            "  aggregate: {:.2}% utilization (max 300%), {:.2} ms mean latency\n",
            result.aggregate.utilization_pct, result.aggregate.mean_latency_ms
        );
    }
    println!("BlastFunction runs five functions on three boards; Native only three.");
    Ok(())
}
