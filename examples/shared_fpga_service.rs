//! Multi-tenant sharing on one board: three concurrent clients time-share
//! a single FPGA through one Device Manager.
//!
//! Demonstrates the paper's §III-B machinery end to end: isolated
//! per-client sessions, multi-operation tasks executing atomically through
//! the central FIFO queue, per-tenant utilization attribution, and the
//! Prometheus scrape the Accelerators Registry would consume.
//!
//! Run with: `cargo run --example shared_fpga_service`

use std::error::Error;
use std::sync::Arc;

use blastfunction::prelude::*;
use blastfunction::workloads::mm;
use parking_lot::Mutex;

fn main() -> Result<(), Box<dyn Error>> {
    let mut catalog = BitstreamCatalog::new();
    catalog.register(mm::bitstream());
    let board = Arc::new(Mutex::new(Board::new(
        BoardSpec::de5a_net(),
        *node_b().pcie(),
    )));
    let manager = DeviceManager::new(
        DeviceManagerConfig::standalone("fpga-b"),
        node_b(),
        board,
        catalog,
    );
    // The registry programs boards ahead of time; tenants then find the
    // accelerator already configured (no reconfiguration in their path).
    manager
        .program(mm::MM_BITSTREAM)
        .expect("bitstream registered");

    println!("Three tenants sharing one FPGA through a Device Manager\n");

    let n: u32 = 24;
    let mut handles = Vec::new();
    for tenant in 1..=3u32 {
        let manager = manager.clone();
        handles.push(std::thread::spawn(move || -> Result<(), ClError> {
            let mut router = Router::new();
            router.add_manager(manager);
            let clock = VirtualClock::new();
            let device = router.connect(
                0,
                &format!("tenant-{tenant}"),
                PathCosts::local_shm(),
                clock,
            )?;

            let ctx = device.create_context()?;
            let program = ctx.build_program(mm::MM_BITSTREAM)?;
            let kernel = program.create_kernel(mm::MM_KERNEL)?;
            let bytes = mm::matrix_bytes(n);
            let a_buf = ctx.create_buffer(bytes)?;
            let b_buf = ctx.create_buffer(bytes)?;
            let c_buf = ctx.create_buffer(bytes)?;
            let queue = ctx.create_queue()?;

            // Each tenant multiplies its own matrices many times; task
            // atomicity guarantees no cross-tenant interleaving corrupts
            // the results even though all three hammer the same board.
            let a: Vec<f32> = (0..n * n).map(|i| ((i + tenant) % 7) as f32).collect();
            let b: Vec<f32> = (0..n * n).map(|i| ((i * tenant) % 5) as f32).collect();
            let expected = mm::reference(&a, &b, n);
            for round in 0..20 {
                queue.write(&a_buf, mm::pack_f32(&a))?;
                queue.write(&b_buf, mm::pack_f32(&b))?;
                kernel.set_arg_buffer(0, &a_buf)?;
                kernel.set_arg_buffer(1, &b_buf)?;
                kernel.set_arg_buffer(2, &c_buf)?;
                kernel.set_arg(3, ArgValue::U32(n))?;
                queue.launch(&kernel, NdRange::d2(u64::from(n), u64::from(n)))?;
                queue.finish()?;
                let got = mm::unpack_f32(&queue.read_vec(&c_buf)?);
                assert_eq!(
                    got, expected,
                    "tenant {tenant} round {round}: wrong product"
                );
            }
            Ok(())
        }));
    }
    for h in handles {
        h.join().expect("tenant thread")?;
    }

    println!("All 60 multiplications (3 tenants x 20 rounds) verified against the host GEMM.\n");

    // Per-tenant utilization attribution, as the Registry would see it.
    let board = manager.board().lock();
    let horizon = board.available_at();
    let tracker = board.busy_tracker();
    println!("FPGA time utilization by tenant (virtual horizon {horizon}):");
    let mut owners: Vec<&str> = tracker.owners().collect();
    owners.sort_unstable();
    for owner in owners {
        let busy = tracker.busy_of(owner);
        println!(
            "  {owner:<12} {:>10}  ({:.1}% of the board's timeline)",
            busy,
            100.0 * busy.as_secs_f64() / horizon.as_secs_f64()
        );
    }
    drop(board);

    println!("\nPrometheus scrape (what the Metrics Gatherer reads):");
    for line in manager.scrape().lines().take(6) {
        println!("  {line}");
    }
    Ok(())
}
